"""Serving throughput benchmark: concurrent clients vs per-request ``mc_predict``.

Eight client threads each fire four 16-row prediction requests at a
:class:`~repro.serve.server.PredictionServer` and wait for their futures --
the aggregate wall-clock time of all 32 requests is the throughput metric.
The baseline is the same 32 requests executed sequentially through standalone
``mc_predict`` calls, i.e. what callers did before the serving front-end
existed (each call paying its own stream-bank construction and epsilon
generation).

Three serving modes are timed against that baseline at two generator
strides:

* ``inline`` -- tiles execute on the dispatcher thread (single process);
* ``pool2`` -- tiles shard round-robin across two replica worker processes;
* ``stride256`` is the library-default sampling configuration, where
  per-request epsilon generation dominates and the server's cached replay
  shines; ``stride1`` is the hardware-faithful sliding-window mode with far
  cheaper generation, the conservative end of the speedup.

Every mode returns bit-identical answers (asserted here per round and
property-tested in ``tests/integration/test_serving_equivalence.py``);
``benchmarks/emit_results.py`` turns a ``--benchmark-json`` dump of this
module into the ``BENCH_serving.json`` serving-speedup report.

``test_bench_serving_fused`` isolates the tile-fusion win itself: one
executor tile of four pooled same-config requests, measured with fusion on
(``REPRO_FUSED=auto``, one folded forward, gated by the row-stability
proof) against fusion off (``REPRO_FUSED=0``, four per-request forwards --
the PR 3 execution shape).  Both legs assert byte-equality against
standalone ``mc_predict`` every run; ``emit_results.py --tag
serving_fused`` derives the fused-vs-unfused speedup with a >= 1.3x
acceptance bound at the library-default stride 256.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.bnn import mc_predict
from repro.core import stability
from repro.models import ReplicaSpec, get_model
from repro.serve import PredictionServer, SamplingConfig, ServerConfig
from repro.serve.executor import TileExecutor

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 4
ROWS_PER_REQUEST = 16
N_SAMPLES = 8

#: mode -> worker count (None marks the sequential mc_predict baseline)
SERVING_MODES: dict[str, int | None] = {
    "sequential": None,
    "inline": 0,
    "pool2": 2,
}


def _workload():
    spec = get_model("B-MLP", reduced=True)
    model = spec.build_bayesian(seed=42)
    rng = np.random.default_rng(7)
    requests = [
        [
            rng.normal(size=(ROWS_PER_REQUEST, 196))
            for _ in range(REQUESTS_PER_CLIENT)
        ]
        for _ in range(N_CLIENTS)
    ]
    return spec, model, requests


@pytest.mark.parametrize("mode", list(SERVING_MODES))
@pytest.mark.parametrize("stride", [1, 256])
def test_bench_serving(benchmark, stride, mode):
    # recorded into the --benchmark-json dump so emit_results.py derives
    # requests/s from the true request count instead of hardcoding it
    benchmark.extra_info["n_requests"] = N_CLIENTS * REQUESTS_PER_CLIENT
    spec, model, requests = _workload()
    sampling = SamplingConfig(n_samples=N_SAMPLES, seed=0, grng_stride=stride)
    reference = mc_predict(
        model,
        requests[0][0],
        n_samples=N_SAMPLES,
        seed=0,
        grng_stride=stride,
    ).sample_probabilities
    n_workers = SERVING_MODES[mode]

    if n_workers is None:

        def run():
            outputs = [
                mc_predict(
                    model, x, n_samples=N_SAMPLES, seed=0, grng_stride=stride
                )
                for group in requests
                for x in group
            ]
            return outputs[0].sample_probabilities

        probabilities = benchmark.pedantic(run, rounds=7, iterations=1, warmup_rounds=1)
        assert np.array_equal(probabilities, reference)
        return

    config = ServerConfig(
        n_workers=n_workers,
        max_batch_rows=64,
        max_wait_ms=2.0,
        max_pending_rows=N_CLIENTS * REQUESTS_PER_CLIENT * ROWS_PER_REQUEST,
    )
    with PredictionServer(ReplicaSpec.capture(spec, model), config) as server:

        def run():
            head: list[np.ndarray] = []

            def client(index: int) -> None:
                futures = [server.submit(x, sampling) for x in requests[index]]
                results = [future.result(timeout=300.0) for future in futures]
                if index == 0:
                    head.append(results[0].sample_probabilities)

            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(N_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return head[0]

        probabilities = benchmark.pedantic(
            run, rounds=7, iterations=1, warmup_rounds=1
        )
        # throughput must never cost bit-exactness vs standalone mc_predict
        assert np.array_equal(probabilities, reference)
        snapshot = server.stats()
    assert snapshot.requests_completed >= N_CLIENTS * REQUESTS_PER_CLIENT
    assert snapshot.mean_batch_occupancy is not None
    assert snapshot.mean_batch_occupancy > 1.0  # pooling actually happened


#: pooled same-config requests in the fused-vs-unfused tile
FUSED_TILE_REQUESTS = 4


@pytest.mark.parametrize("mode", ["fused", "unfused"])
@pytest.mark.parametrize("stride", [1, 256])
def test_bench_serving_fused(benchmark, stride, mode, monkeypatch):
    monkeypatch.setenv("REPRO_FUSED", "auto" if mode == "fused" else "0")
    if mode == "fused" and not stability.probe.verdict().ok:
        # pragma: no cover - platform guard; the fallback leg still runs
        pytest.skip("this BLAS fails the row-stability verdict; fusion is off")
    spec = get_model("B-MLP", reduced=True)
    model = spec.build_bayesian(seed=42)
    rng = np.random.default_rng(7)
    xs = [
        rng.normal(size=(ROWS_PER_REQUEST, 196))
        for _ in range(FUSED_TILE_REQUESTS)
    ]
    sampling = SamplingConfig(n_samples=N_SAMPLES, seed=0, grng_stride=stride)
    executor = TileExecutor(model)
    requests = [(x, sampling) for x in xs]
    benchmark.extra_info["n_requests"] = FUSED_TILE_REQUESTS

    def run():
        return [probabilities for probabilities, _ in executor.execute(requests)]

    results = benchmark.pedantic(run, rounds=7, iterations=1, warmup_rounds=1)
    events = executor.consume_fusion_events()
    if mode == "fused":
        # the proof passed, so every round must genuinely have fused
        assert events["fused_tiles"] >= 1 and events["fallback_requests"] == 0
    else:
        # the forced fallback is counted, never silent
        assert events["fused_tiles"] == 0 and events["fallback_disabled"] >= 1
    # BOTH legs serve bytes identical to standalone mc_predict
    for x, probabilities in zip(xs, results):
        reference = mc_predict(
            model, x, n_samples=N_SAMPLES, seed=0, grng_stride=stride
        )
        assert (
            probabilities.tobytes() == reference.sample_probabilities.tobytes()
        )
