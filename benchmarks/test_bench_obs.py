"""Observability overhead benchmark: traced vs untraced steady soak.

PR 9's acceptance bound: full tracing (span trees on every request, metrics
collectors bound, ``X-Request-Id`` on every response) must cost at most 5%
of steady-profile p99 request latency.  Because ``REPRO_OBS`` is resolved at
component *construction* time, the two legs run against two gateways in the
same process -- one built with observability on (the default), one built
under ``REPRO_OBS=0`` -- and every client thread *interleaves* requests
between the two, so scheduler jitter, GC pauses, and thundering-herd tails
land on both legs symmetrically instead of biasing whichever leg ran when
the machine hiccuped.  Per-request wall-clock latencies are recorded per
round; the acceptance statistic is the *median across rounds of the
within-round p99 ratio* -- pairing the legs inside each round cancels
between-round environmental drift that a pooled ratio would read as
overhead.  ``emit_results.py --tag obs`` enforces the ratio <= 1.05.

Both legs assert the usual soak invariants (zero sheds, zero drops,
bit-exact bodies against standalone ``mc_predict``), so the comparison can
never quietly measure two different workloads.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.bnn import mc_predict
from repro.models import (
    ActivationSpec,
    DenseSpec,
    ModelSpec,
    ReplicaSpec,
)
from repro.serve import (
    GatewayClient,
    ModelRegistry,
    ServerConfig,
    ServingGateway,
)

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 40  # alternating legs: 20 traced + 20 untraced each
ROWS_PER_REQUEST = 8
N_FEATURES = 16
# realistic BNN serving work per request (not a near-empty echo): the
# overhead ratio must be measured against real MC-sampling compute,
# otherwise fixed microsecond costs read as percent-level "overhead"
SAMPLING = {"n_samples": 16, "seed": 5, "grng_stride": 64}

SERVER_KWARGS = dict(
    max_batch_rows=64,
    max_wait_ms=2.0,
    # 4x the worst-case in-flight rows: the steady profile must absorb the
    # whole burst -- a shed would abort the soak, not skew it
    max_pending_rows=4 * N_CLIENTS * ROWS_PER_REQUEST,
)


def _spec() -> ModelSpec:
    return ModelSpec(
        name="obs-soak-mlp",
        input_shape=(1, 4, 4),
        num_classes=3,
        dataset="benchmark",
        flatten_input=True,
        layers=(
            DenseSpec("fc1", 8),
            ActivationSpec("relu1"),
            DenseSpec("fc2", 3),
        ),
    )


def _registry(spec: ModelSpec) -> ModelRegistry:
    registry = ModelRegistry()
    registry.register("v1", ReplicaSpec.capture(spec, spec.build_bayesian(seed=11)))
    registry.deploy("v1")
    return registry


def _soak(legs: dict, inputs, references, latencies: dict, counters: dict):
    """One interleaved soak: every client alternates traced <-> untraced."""
    lock = threading.Lock()
    order = list(legs)

    def client(index: int) -> None:
        input_index = index % len(inputs)
        # a small retry budget (same for both legs) absorbs a one-off shed
        # under external machine load without skewing the comparison
        sdks = {
            leg: GatewayClient(url, tenant=f"tenant-{index % 4}", max_retries=2)
            for leg, url in legs.items()
        }
        try:
            for request in range(REQUESTS_PER_CLIENT):
                # half the clients start traced, half untraced
                leg = order[(request + index) % 2]
                start = time.monotonic()
                try:
                    body = sdks[leg].predict(inputs[input_index], sampling=SAMPLING)
                except Exception as exc:
                    with lock:
                        counters[leg]["dropped"] += 1
                        counters[leg].setdefault("errors", []).append(repr(exc))
                    continue
                elapsed_ms = (time.monotonic() - start) * 1e3
                served = np.asarray(body["sample_probabilities"], dtype=np.float64)
                with lock:
                    if np.array_equal(served, references[input_index]):
                        counters[leg]["served"] += 1
                        latencies[leg].append(elapsed_ms)
                    else:  # pragma: no cover - would be a real bug
                        counters[leg]["dropped"] += 1
        finally:
            for sdk in sdks.values():
                sdk.close()

    threads = [
        threading.Thread(target=client, args=(index,)) for index in range(N_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


@pytest.mark.parametrize("profile", ["steady"])
def test_bench_obs(benchmark, monkeypatch, profile):
    spec = _spec()
    model = spec.build_bayesian(seed=11)

    rng = np.random.default_rng(7)
    inputs = [rng.normal(size=(ROWS_PER_REQUEST, N_FEATURES)) for _ in range(4)]
    references = [
        mc_predict(
            model,
            x,
            n_samples=SAMPLING["n_samples"],
            seed=SAMPLING["seed"],
            grng_stride=SAMPLING["grng_stride"],
        ).sample_probabilities
        for x in inputs
    ]

    rounds: list[dict] = []
    counters = {
        "traced": {"served": 0, "dropped": 0},
        "untraced": {"served": 0, "dropped": 0},
    }
    monkeypatch.delenv("REPRO_OBS", raising=False)
    traced_gateway = ServingGateway(_registry(spec), ServerConfig(**SERVER_KWARGS))
    monkeypatch.setenv("REPRO_OBS", "0")
    untraced_gateway = ServingGateway(_registry(spec), ServerConfig(**SERVER_KWARGS))
    monkeypatch.delenv("REPRO_OBS")
    traced_gateway.start()
    untraced_gateway.start()
    try:
        legs = {
            "traced": traced_gateway.url,
            "untraced": untraced_gateway.url,
        }

        def run():
            round_latencies = {"traced": [], "untraced": []}
            _soak(legs, inputs, references, round_latencies, counters)
            rounds.append(round_latencies)

        # 14 measured rounds: the within-round p99 (~160 requests/leg/round)
        # is a noisy order statistic, and its median needs this many rounds
        # to sit ~2 sigma below the 1.05 acceptance bound (measured sd of
        # the 14-round median is ~0.025 against a mean of ~1.00)
        benchmark.pedantic(run, rounds=14, iterations=1, warmup_rounds=1)
        assert traced_gateway.tracer.recorded_count > 0
        assert traced_gateway.tracer.open_count == 0
        assert untraced_gateway.tracer.recorded_count == 0
    finally:
        traced_gateway.close(drain=False)
        untraced_gateway.close(drain=False)

    # rounds[0] is the pedantic warmup round: cold interpreter, first
    # keep-alive dials -- keep its requests out of the statistics
    warm = rounds[1:]
    extra = {}
    for leg in ("traced", "untraced"):
        assert counters[leg]["dropped"] == 0, counters
        assert counters[leg]["served"] == sum(len(rnd[leg]) for rnd in rounds)
        pooled = [value for rnd in warm for value in rnd[leg]]
        assert pooled
        p50, p95, p99 = np.percentile(pooled, [50.0, 95.0, 99.0])
        extra[f"latency_p50_ms_{leg}"] = round(float(p50), 3)
        extra[f"latency_p95_ms_{leg}"] = round(float(p95), 3)
        extra[f"latency_p99_ms_{leg}"] = round(float(p99), 3)
        extra[f"n_requests_{leg}"] = counters[leg]["served"]
    # paired within-round ratios: both legs of a round share the machine
    # state that produced the round's tail, so the ratio isolates tracing
    ratios_p99 = [
        float(np.percentile(rnd["traced"], 99.0))
        / float(np.percentile(rnd["untraced"], 99.0))
        for rnd in warm
    ]
    ratios_p50 = [
        float(np.percentile(rnd["traced"], 50.0))
        / float(np.percentile(rnd["untraced"], 50.0))
        for rnd in warm
    ]
    extra["obs_overhead_ratio"] = round(float(np.median(ratios_p99)), 4)
    extra["obs_overhead_ratio_p50"] = round(float(np.median(ratios_p50)), 4)
    extra["obs_overhead_ratios_per_round"] = [round(r, 4) for r in ratios_p99]
    benchmark.extra_info.update(n_clients=N_CLIENTS, **extra)
