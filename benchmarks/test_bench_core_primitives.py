"""Micro-benchmarks of the core primitives behind the headline results.

These quantify the software cost of the mechanisms the paper implements in
hardware: LFSR pattern generation, Gaussian conversion, reversed retrieval,
weight sampling, and a full training step under both epsilon policies (the
Shift-BNN step must not be slower than the stored-epsilon step, mirroring the
claim that retrieval replaces storage at no algorithmic cost).
"""

from __future__ import annotations

import numpy as np

from repro.bnn import BaselineBNNTrainer, ShiftBNNTrainer, TrainerConfig
from repro.core import FibonacciLFSR, GrngBank, LfsrArray, LfsrGaussianRNG, StreamBank
from repro.datasets import BatchLoader, synthetic_mnist
from repro.models import get_model
from repro.nn import functional as F

BLOCK = 50_000
BANK_ROWS = 16


def test_bench_lfsr_bit_generation(benchmark):
    lfsr = FibonacciLFSR(256, seed=0xDEADBEEF)
    bits = benchmark(lambda: lfsr.generate_bits(BLOCK))
    assert bits.size == BLOCK


def test_bench_lfsr_reverse_generation(benchmark):
    lfsr = FibonacciLFSR(256, seed=0xDEADBEEF)
    lfsr.generate_bits(BLOCK)

    def roundtrip():
        lfsr.generate_bits_reverse(BLOCK)
        return lfsr.generate_bits(BLOCK)

    bits = benchmark(roundtrip)
    assert bits.size == BLOCK


def test_bench_grng_epsilon_block(benchmark):
    grng = LfsrGaussianRNG(256, seed_index=1, stride=1)
    values = benchmark(lambda: grng.epsilon_block(BLOCK))
    assert values.size == BLOCK


def test_bench_grng_epsilon_block_decorrelated(benchmark):
    grng = LfsrGaussianRNG(256, seed_index=1, stride=256)
    values = benchmark(lambda: grng.epsilon_block(4096))
    assert values.size == 4096


def test_bench_lfsr_array_bit_generation(benchmark):
    # The packed multi-register engine: BANK_ROWS independent 256-bit LFSRs
    # producing BLOCK bits each, in lockstep.
    array = LfsrArray.from_seed_indices(256, range(BANK_ROWS))
    bits = benchmark(lambda: array.generate_bits(BLOCK))
    assert bits.shape == (BANK_ROWS, BLOCK)


def test_bench_grng_bank_epsilon_blocks(benchmark):
    # The batched multi-stream epsilon path: one call generates BLOCK
    # variables for each of BANK_ROWS Monte-Carlo sample streams.  Per-stream
    # cost must beat the scalar epsilon_block benchmark above by a wide
    # margin (the acceptance bar for this engine was >= 5x).
    bank = GrngBank(n_rows=BANK_ROWS, n_bits=256, stride=1)
    values = benchmark(lambda: bank.epsilon_blocks(BLOCK))
    assert values.shape == (BANK_ROWS, BLOCK)


def test_bench_grng_bank_reverse_retrieval(benchmark):
    bank = GrngBank(n_rows=BANK_ROWS, n_bits=256, stride=1)
    bank.epsilon_blocks(BLOCK)

    def roundtrip():
        bank.epsilon_blocks_reverse(BLOCK)
        return bank.epsilon_blocks(BLOCK)

    values = benchmark(roundtrip)
    assert values.shape == (BANK_ROWS, BLOCK)


def test_bench_stream_bank_lockstep_iteration(benchmark):
    # A full generate + checkpoint-replay iteration over 8 reversible sample
    # streams; lockstep speculation serves all samples from batched kernel
    # calls even though each sampler is driven one at a time.
    bank = StreamBank(8, policy="reversible", seed=0, grng_stride=16)
    shape = (64, 64)

    def iteration():
        for sampler in bank:
            block = sampler.stream.forward_block(shape)
            sampler.stream.retrieve_block(shape)
        bank.finish_iteration()
        return block

    block = benchmark(iteration)
    assert block.shape == shape


def test_bench_weight_sampling_and_retrieval(benchmark):
    bank = StreamBank(1, policy="reversible", seed=0, grng_stride=16)
    sampler = bank.sampler(0)
    mu = np.zeros((256, 64))
    sigma = np.full((256, 64), 0.05)

    def sample_and_retrieve():
        sampler.sample(mu, sigma)
        return sampler.resample(mu, sigma)

    result = benchmark(sample_and_retrieve)
    assert result.weights.shape == (256, 64)


def test_bench_conv2d_forward(benchmark):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(8, 16, 16, 16))
    weights = rng.normal(size=(32, 16, 3, 3))
    out, _ = benchmark(lambda: F.conv2d_forward(x, weights, None, 1, 1))
    assert out.shape == (8, 32, 16, 16)


def _training_step_time(policy_cls, batches, spec):
    trainer = policy_cls(
        spec.build_bayesian(seed=1),
        TrainerConfig(n_samples=2, learning_rate=5e-3, seed=3, grng_stride=32),
    )
    x, y = batches[0]

    def step():
        return trainer.train_step(x, y, kl_weight=0.01)

    return trainer, step


def test_bench_training_step_stored_epsilons(benchmark):
    spec = get_model("B-MLP", reduced=True)
    train, _ = synthetic_mnist(64, 32, image_size=14, seed=1)
    batches = BatchLoader(train, batch_size=32, flatten=True).batches()
    _, step = _training_step_time(BaselineBNNTrainer, batches, spec)
    report = benchmark(step)
    assert np.isfinite(report.total)


def test_bench_training_step_shift_bnn(benchmark):
    spec = get_model("B-MLP", reduced=True)
    train, _ = synthetic_mnist(64, 32, image_size=14, seed=1)
    batches = BatchLoader(train, batch_size=32, flatten=True).batches()
    _, step = _training_step_time(ShiftBNNTrainer, batches, spec)
    report = benchmark(step)
    assert np.isfinite(report.total)


def test_bench_accelerator_simulation_sweep(benchmark):
    from repro.accel import simulate_training_iteration, standard_comparison_set
    from repro.models import paper_models

    models = paper_models()

    def sweep():
        return [
            simulate_training_iteration(accel, spec, 16).energy_joules
            for accel in standard_comparison_set()
            for spec in models.values()
        ]

    energies = benchmark(sweep)
    assert len(energies) == 20
    assert all(value > 0 for value in energies)
