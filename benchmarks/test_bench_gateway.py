"""Gateway soak benchmark: concurrent tenants against the HTTP front door.

Unlike ``test_bench_serving`` (which times the in-process serving stack),
this module soaks the full wire path: real sockets, the ``/v1`` JSON API,
admission control and load shedding.  ``N_CLIENTS`` concurrent clients --
each a :class:`~repro.serve.client.GatewayClient` on its own keep-alive
connection -- fire ``REQUESTS_PER_CLIENT`` predictions each and record
per-request wall-clock latency; the aggregate burst is the benchmark round.

Two profiles are soaked:

* ``steady`` -- the row budget comfortably fits the burst: every request
  must be admitted (zero sheds) and answered bit-identically to standalone
  ``mc_predict``;
* ``overload`` -- the budget is one tile deep, so most of the burst must be
  shed with ``429`` + ``Retry-After``.  Sheds are the *correct* outcome
  here; the invariants are that nothing blocks indefinitely, nothing is
  dropped (a response that is neither a 200 nor a shed), and every 200 that
  does get through still serves exact bytes.

``benchmark.extra_info`` records the p50/p95/p99 request latency and the
admitted/shed/dropped counters; ``emit_results.py --tag gateway`` turns a
``--benchmark-json`` dump into ``BENCH_gateway.json`` with a p99 latency
bound on the steady profile and a zero-dropped acceptance over both.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.bnn import mc_predict
from repro.models import (
    ActivationSpec,
    DenseSpec,
    ModelSpec,
    ReplicaSpec,
)
from repro.serve import (
    GatewayClient,
    GatewayShedError,
    ModelRegistry,
    ServerConfig,
    ServingGateway,
)

N_CLIENTS = 96
REQUESTS_PER_CLIENT = 3
ROWS_PER_REQUEST = 4
N_FEATURES = 16
SAMPLING = {"n_samples": 4, "seed": 5, "grng_stride": 64}

#: profile -> ServerConfig kwargs; ``steady`` absorbs the whole burst,
#: ``overload`` holds one 16-row tile so most of the burst must shed
PROFILES: dict[str, dict] = {
    "steady": dict(
        max_batch_rows=64,
        max_wait_ms=2.0,
        max_pending_rows=N_CLIENTS * ROWS_PER_REQUEST,
    ),
    "overload": dict(max_batch_rows=16, max_wait_ms=2.0, max_pending_rows=16),
}


def _spec() -> ModelSpec:
    return ModelSpec(
        name="gateway-soak-mlp",
        input_shape=(1, 4, 4),
        num_classes=3,
        dataset="benchmark",
        flatten_input=True,
        layers=(
            DenseSpec("fc1", 8),
            ActivationSpec("relu1"),
            DenseSpec("fc2", 3),
        ),
    )


@pytest.mark.parametrize("profile", list(PROFILES))
def test_bench_gateway(benchmark, profile):
    spec = _spec()
    model = spec.build_bayesian(seed=11)
    registry = ModelRegistry()
    registry.register("v1", ReplicaSpec.capture(spec, model))
    registry.deploy("v1")

    rng = np.random.default_rng(7)
    inputs = [
        rng.normal(size=(ROWS_PER_REQUEST, N_FEATURES)) for _ in range(4)
    ]
    references = [
        mc_predict(
            model,
            x,
            n_samples=SAMPLING["n_samples"],
            seed=SAMPLING["seed"],
            grng_stride=SAMPLING["grng_stride"],
        ).sample_probabilities
        for x in inputs
    ]

    latencies_ms: list[float] = []
    counters = {"admitted": 0, "shed": 0, "dropped": 0}
    lock = threading.Lock()

    with ServingGateway(registry, ServerConfig(**PROFILES[profile])) as gateway:
        url = gateway.url

        def client(index: int) -> None:
            import time

            input_index = index % len(inputs)
            with GatewayClient(url, tenant=f"tenant-{index % 8}",
                               max_retries=0) as sdk:
                for _ in range(REQUESTS_PER_CLIENT):
                    start = time.monotonic()
                    try:
                        body = sdk.predict(
                            inputs[input_index], sampling=SAMPLING
                        )
                    except GatewayShedError:
                        with lock:
                            counters["shed"] += 1
                        continue
                    except Exception:
                        with lock:
                            counters["dropped"] += 1
                        continue
                    elapsed_ms = (time.monotonic() - start) * 1e3
                    served = np.asarray(
                        body["sample_probabilities"], dtype=np.float64
                    )
                    exact = np.array_equal(served, references[input_index])
                    with lock:
                        if exact:
                            counters["admitted"] += 1
                            latencies_ms.append(elapsed_ms)
                        else:  # pragma: no cover - would be a real bug
                            counters["dropped"] += 1

        def run():
            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(N_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
        stats = gateway.prediction_server.stats()

    # soak invariants: nothing is lost, and the profile behaves as designed
    assert counters["dropped"] == 0
    if profile == "steady":
        assert counters["shed"] == 0, f"steady profile shed: {counters}"
    else:
        assert counters["shed"] > 0, f"overload profile never shed: {counters}"
    assert counters["admitted"] == len(latencies_ms) > 0
    assert stats.requests_failed == 0

    window = np.asarray(latencies_ms, dtype=np.float64)
    p50, p95, p99 = np.percentile(window, [50.0, 95.0, 99.0])
    benchmark.extra_info.update(
        n_clients=N_CLIENTS,
        n_requests=N_CLIENTS * REQUESTS_PER_CLIENT,
        admitted=counters["admitted"],
        shed=counters["shed"],
        dropped=counters["dropped"],
        latency_p50_ms=round(float(p50), 3),
        latency_p95_ms=round(float(p95), 3),
        latency_p99_ms=round(float(p99), 3),
    )
