"""Distributed training benchmark: sharded ``fit`` vs the single-process engine.

A short training schedule (4 steps of the reduced B-MLP at ``S = 8``) runs
through three bit-identical execution modes:

* ``single`` -- the single-process batched pipeline (PR 2's engine, the
  baseline);
* ``inline2`` -- the distributed coordinator's sharded code path with two
  shards executed inline (no processes): measures the pure
  shard/reduce/state-shipping overhead;
* ``pool2`` -- two worker processes: adds the real IPC cost of shipping
  parameters out and per-sample gradient stacks back every step.

On this repo's 1-CPU reference container the pool cannot run shards in
parallel, so ``pool2`` measures distribution *overhead*, not speedup -- the
number to watch is the ratio staying within a small constant of the
baseline (the per-step payloads are O(model) and the arithmetic is
unchanged).  On multi-core hardware the same code path shards the dominant
FW/BW/GC work across cores.  Every mode's parameter trajectory is asserted
bit-identical per round; ``benchmarks/emit_results.py`` turns a
``--benchmark-json`` dump of this module into the ``BENCH_distrib.json``
distributed-training report.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bnn import BNNTrainer, TrainerConfig
from repro.datasets import BatchLoader, synthetic_mnist
from repro.distrib import DistributedBackend
from repro.models import ReplicaSpec, get_model

N_SAMPLES = 8
STEPS = 4
#: Library-default strided GRNG by default; the nightly CI run also exercises
#: the hardware-faithful stride (``BENCH_GRNG_STRIDE=1``).
_BENCH_STRIDE = int(os.environ.get("BENCH_GRNG_STRIDE", "256"))

#: mode -> (n_workers, n_shards); None marks the single-process baseline
DISTRIB_MODES: dict[str, tuple[int, int] | None] = {
    "single": None,
    "inline2": (0, 2),
    "pool2": (2, 2),
}


def _workload():
    spec = get_model("B-MLP", reduced=True)
    train, _ = synthetic_mnist(n_train=64, n_test=16, image_size=14, seed=3)
    batches = BatchLoader(train, batch_size=16, flatten=True).batches()[:STEPS]
    return spec, batches


def _reference_parameters(spec, batches, config):
    trainer = BNNTrainer(spec.build_bayesian(seed=42), config, policy="reversible")
    trainer.fit(batches, epochs=1)
    return [parameter.value.copy() for parameter in trainer.model.parameters()]


@pytest.mark.parametrize("mode", list(DISTRIB_MODES))
def test_bench_distrib(benchmark, mode):
    benchmark.extra_info["n_steps"] = STEPS
    spec, batches = _workload()
    config = TrainerConfig(
        n_samples=N_SAMPLES, learning_rate=5e-3, seed=11, grng_stride=_BENCH_STRIDE
    )
    reference = _reference_parameters(spec, batches, config)
    workers = DISTRIB_MODES[mode]

    if workers is None:

        def run():
            trainer = BNNTrainer(
                spec.build_bayesian(seed=42), config, policy="reversible"
            )
            trainer.fit(batches, epochs=1)
            return trainer

        trainer = benchmark(run)
    else:
        n_workers, n_shards = workers
        backend = DistributedBackend(
            ReplicaSpec.structural(spec, build_seed=42),
            n_workers=n_workers,
            n_shards=n_shards,
        )
        trainer = None
        try:

            def run():
                nonlocal trainer
                trainer = BNNTrainer(
                    spec.build_bayesian(seed=42),
                    config,
                    policy="reversible",
                    backend=backend,
                )
                trainer.fit(batches, epochs=1)
                return trainer

            trainer = benchmark(run)
        finally:
            backend.close()

    # distribution must never change the bits, no matter the timing
    for parameter, expected in zip(trainer.model.parameters(), reference):
        assert np.array_equal(parameter.value, expected), parameter.name
