"""Benchmarks for the functional training experiments (Fig. 9 and Table 1)
and for the batched Monte-Carlo execution engine.

These actually train the reduced Bayesian models on synthetic data, so they
run once per benchmark (``pedantic`` mode) and use CPU-scale settings.  The
regenerated tables are printed alongside the timing.

The ``mc_predict`` / ``train_step`` cases time the three execution modes of
the S-sample FW/BW/GC pipeline at the hardware-faithful ``grng_stride=1``:

* ``sequential`` -- one Monte-Carlo sample at a time, each sample generating
  its epsilons through its own per-row GRNG view (no cross-sample
  speculation; the plain S-times Python loop);
* ``lockstep`` -- the same per-sample loop served by the bank's speculative
  cross-sample prefetching (PR 1's engine);
* ``batched`` -- the whole ``(S, batch, ...)`` pipeline in one pass.

All three produce bit-identical results (enforced by the equivalence tests);
``benchmarks/emit_results.py`` converts a ``--benchmark-json`` dump of this
module into ``BENCH_engine.json`` with the derived speedups.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bnn import BNNTrainer, TrainerConfig, mc_predict
from repro.datasets import synthetic_cifar10, synthetic_mnist
from repro.experiments import run_fig9, run_table1
from repro.models import get_model

#: Execution-mode knobs shared by the mc_predict and train_step cases.
EXECUTION_MODES = {
    "sequential": dict(batched=False, lockstep=False),
    "lockstep": dict(batched=False, lockstep=True),
    "batched": dict(batched=True, lockstep=True),
}

#: Hardware-faithful sliding-window GRNG mode by default; the nightly CI run
#: overrides this (``BENCH_GRNG_STRIDE=256``) to also track the
#: library-default strided configuration.
_BENCH_STRIDE = int(os.environ.get("BENCH_GRNG_STRIDE", "1"))


def _dense_setup(batch_size: int = 64):
    spec = get_model("B-MLP", reduced=True)
    model = spec.build_bayesian(seed=42)
    train, _ = synthetic_mnist(n_train=max(batch_size, 40), n_test=40, image_size=14, seed=7)
    x = train.flatten_images()[:batch_size]
    y = train.labels[:batch_size]
    return spec, model, x, y


def _conv_setup(batch_size: int = 32):
    spec = get_model("B-LeNet", reduced=True)
    model = spec.build_bayesian(seed=42)
    train, _ = synthetic_cifar10(n_train=max(batch_size, 40), n_test=40, image_size=16, seed=7)
    x = train.images[:batch_size]
    y = train.labels[:batch_size]
    return spec, model, x, y


@pytest.mark.parametrize("mode", list(EXECUTION_MODES))
@pytest.mark.parametrize("n_samples", [4, 8, 16])
@pytest.mark.parametrize("arch", ["dense", "conv"])
def test_bench_mc_predict(benchmark, arch, n_samples, mode):
    _, model, x, _ = _dense_setup() if arch == "dense" else _conv_setup()
    knobs = EXECUTION_MODES[mode]

    def run():
        return mc_predict(
            model,
            x,
            n_samples=n_samples,
            grng_stride=_BENCH_STRIDE,
            **knobs,
        )

    result = benchmark.pedantic(run, rounds=15, iterations=1, warmup_rounds=3)
    assert result.sample_probabilities.shape[0] == n_samples
    assert np.all(np.isfinite(result.mean_probabilities))


@pytest.mark.parametrize("mode", list(EXECUTION_MODES))
@pytest.mark.parametrize("n_samples", [4, 8, 16])
@pytest.mark.parametrize("arch", ["dense", "conv"])
def test_bench_train_step(benchmark, arch, n_samples, mode):
    spec, _, x, y = _dense_setup() if arch == "dense" else _conv_setup()
    knobs = EXECUTION_MODES[mode]
    config = TrainerConfig(
        n_samples=n_samples,
        learning_rate=1e-3,
        seed=1,
        grng_stride=_BENCH_STRIDE,
        **knobs,
    )
    trainer = BNNTrainer(spec.build_bayesian(seed=9), config, policy="reversible")

    def run():
        return trainer.train_step(x, y, kl_weight=1e-3)

    report = benchmark.pedantic(run, rounds=15, iterations=1, warmup_rounds=3)
    assert np.isfinite(report.total)


def test_bench_fig9_training_equivalence(benchmark):
    def run():
        outcome = run_fig9(
            epochs=3, n_train=128, n_test=64, n_samples=2, batch_size=32, grng_stride=64
        )
        print()
        print(outcome.result.to_table())
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    # the reproduction's equivalence is bit-exact
    assert outcome.max_loss_difference == 0.0
    assert outcome.max_parameter_difference == 0.0


def test_bench_table1_precision_study(benchmark):
    def run():
        result = run_table1(
            model_names=("B-MLP", "B-LeNet"),
            bit_widths=(8, 16, 32),
            epochs=4,
            n_train=160,
            n_test=64,
            n_samples=2,
            grng_stride=64,
        )
        print()
        print(result.to_table())
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.rows) == 2
    for row in result.rows:
        values = dict(zip(result.headers, row))
        assert values["val_acc_32b"] >= values["val_acc_8b"] - 1e-9
