"""Benchmarks for the functional training experiments (Fig. 9 and Table 1).

These actually train the reduced Bayesian models on synthetic data, so they
run once per benchmark (``pedantic`` mode) and use CPU-scale settings.  The
regenerated tables are printed alongside the timing.
"""

from __future__ import annotations

from repro.experiments import run_fig9, run_table1


def test_bench_fig9_training_equivalence(benchmark):
    def run():
        outcome = run_fig9(
            epochs=3, n_train=128, n_test=64, n_samples=2, batch_size=32, grng_stride=64
        )
        print()
        print(outcome.result.to_table())
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    # the reproduction's equivalence is bit-exact
    assert outcome.max_loss_difference == 0.0
    assert outcome.max_parameter_difference == 0.0


def test_bench_table1_precision_study(benchmark):
    def run():
        result = run_table1(
            model_names=("B-MLP", "B-LeNet"),
            bit_widths=(8, 16, 32),
            epochs=4,
            n_train=160,
            n_test=64,
            n_samples=2,
            grng_stride=64,
        )
        print()
        print(result.to_table())
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.rows) == 2
    for row in result.rows:
        values = dict(zip(result.headers, row))
        assert values["val_acc_32b"] >= values["val_acc_8b"] - 1e-9
