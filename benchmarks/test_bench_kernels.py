"""Per-kernel microbenchmarks of the backend dispatch layer (PR 6).

Every hot kernel behind :mod:`repro.core.backend` is timed once per
registered backend on one representative hot-path workload, plus an ``auto``
case that exercises the default selection chain.  All backends of a kernel
are bit-identical by the conformance gate, so these cases measure *only*
wall-clock -- the acceptance criterion (evaluated by
``benchmarks/emit_results.py --tag kernels``) is that the auto-selected
backend is at least as fast as the reference oracle within noise.

Backends that are unavailable in this environment (e.g. the optional numba
JIT) self-skip; workloads are chosen inside every remaining backend's support
domain so a forced selection can never silently fall back to the oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.backend as backend
from repro.core import MAXIMAL_TAPS, normalise_taps

ROWS = 16
N_BITS = 256
STEP_COUNT = 1 << 14
POPCOUNT_COUNT = 1 << 16  # bits per row; stride 256 -> 256 variables/row
CLT_SIZE = 1 << 20
MATMUL_SHAPE = (8, 192, 192)
IM2COL_SHAPE = (8, 16, 28, 28)

_OFFSETS = normalise_taps(N_BITS, MAXIMAL_TAPS[N_BITS])


def _state_words() -> np.ndarray:
    rng = np.random.default_rng(7)
    words = rng.integers(0, 1 << 64, size=(ROWS, N_BITS // 64), dtype=np.uint64)
    words[:, 0] |= np.uint64(1)  # never the all-zero register
    return words


def _workload(kernel: str):
    """Build ``(args, kwargs)`` for one representative hot-path call."""
    rng = np.random.default_rng(11)
    if kernel == "lfsr_step_block":
        return (_state_words(), N_BITS, STEP_COUNT, _OFFSETS, False), {}
    if kernel == "window_popcounts":
        seq_words, _ = backend.registry.call(
            "lfsr_step_block", _state_words(), N_BITS, POPCOUNT_COUNT, _OFFSETS, False
        )
        # stride 256 keeps the workload inside packed_bitcount's domain
        return (seq_words, N_BITS, POPCOUNT_COUNT, N_BITS), {}
    if kernel == "clt_standardise":
        popcounts = rng.integers(96, 161, size=CLT_SIZE, dtype=np.int64)
        return (popcounts, 128.0, 8.0), {}
    if kernel == "sample_matmul":
        s, m, k = MATMUL_SHAPE
        a = rng.standard_normal((s, m, k))
        b = rng.standard_normal((s, k, m))
        out = np.empty((s, m, m), dtype=np.float64)
        return (a, b, out), {}
    if kernel == "im2col":
        x = rng.standard_normal(IM2COL_SHAPE)
        return (x, 3, 1, 0), {}
    if kernel == "fused_sample_matmul":
        # a pooled serving tile: 4 requests of 16 rows each, MLP-sized layer
        s, k, n = 8, 196, 128
        splits = (16, 16, 16, 16)
        a = rng.standard_normal((s, sum(splits), k))
        b = rng.standard_normal((s, k, n))
        out = np.empty((s, sum(splits), n), dtype=np.float64)
        return (a, b, out, splits), {}
    if kernel == "fused_im2col":
        x = rng.standard_normal(IM2COL_SHAPE)
        return (x, 3, 1, 0, (2, 2, 2, 2)), {}
    raise AssertionError(f"no benchmark workload defined for kernel {kernel!r}")


def _cases() -> list:
    cases = []
    for kernel in sorted(backend.kernel_names()):
        for name in ("auto", *backend.registry.backend_names(kernel)):
            cases.append(pytest.param(kernel, name, id=f"{kernel}-{name}"))
    return cases


@pytest.mark.parametrize(("kernel", "which"), _cases())
def test_bench_kernel(benchmark, kernel: str, which: str):
    if which != "auto":
        info = next(
            entry
            for entry in backend.list_backends()
            if entry["kernel"] == kernel
        )
        impl = next(b for b in info["backends"] if b["name"] == which)
        if not impl["available"]:
            pytest.skip(f"backend {kernel}/{which} unavailable here")
        # force the gate now so its one-off cost never lands inside a round
        backend.verify_backend(kernel, which)
    args, kwargs = _workload(kernel)
    benchmark.extra_info["kernel"] = kernel
    benchmark.extra_info["backend"] = which

    if which == "auto":
        result = benchmark(lambda: backend.registry.call(kernel, *args, **kwargs))
    else:
        with backend.using(kernel, which):
            result = benchmark(lambda: backend.registry.call(kernel, *args, **kwargs))
    assert result is not None
