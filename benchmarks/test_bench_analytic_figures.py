"""Benchmarks that regenerate every analytic figure of the paper's evaluation.

Each benchmark runs the corresponding experiment module end to end (all five
models on the analytic simulator), reports its wall-clock cost through
pytest-benchmark, and prints the regenerated table so a benchmark run doubles
as a reproduction run:

* Fig. 2  -- BNN vs DNN training cost versus sample count
* Fig. 3  -- off-chip traffic breakdown by tensor class
* Fig. 10 -- normalised training energy of the four accelerators
* Fig. 11 -- speedup of the four accelerators
* Fig. 12 -- energy efficiency including the P100 GPU reference
* Fig. 13 -- scalability with the Monte-Carlo sample count
* Fig. 14 -- DRAM accesses and memory footprint
* Table 2 -- per-SPU FPGA resources
* DSE     -- the mapping design-space exploration of Section 5
"""

from __future__ import annotations

from repro.experiments import (
    run_dse,
    run_fig2,
    run_fig3,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_table2,
)


def _run_and_print(experiment):
    result = experiment()
    print()
    print(result.to_table())
    return result


def test_bench_fig2_bnn_vs_dnn(benchmark):
    result = benchmark.pedantic(lambda: _run_and_print(run_fig2), rounds=1, iterations=1)
    assert len(result.rows) == 25  # 5 models x 5 sample counts


def test_bench_fig3_traffic_breakdown(benchmark):
    result = benchmark(lambda: run_fig3())
    assert len(result.rows) == 5
    print()
    print(result.to_table())


def test_bench_fig10_energy(benchmark):
    result = benchmark.pedantic(lambda: _run_and_print(run_fig10), rounds=1, iterations=1)
    assert len(result.rows) == 5


def test_bench_fig11_speedup(benchmark):
    result = benchmark.pedantic(lambda: _run_and_print(run_fig11), rounds=1, iterations=1)
    assert len(result.rows) == 5


def test_bench_fig12_efficiency(benchmark):
    result = benchmark.pedantic(lambda: _run_and_print(run_fig12), rounds=1, iterations=1)
    assert len(result.rows) == 5


def test_bench_fig13_scalability(benchmark):
    result = benchmark.pedantic(lambda: _run_and_print(run_fig13), rounds=1, iterations=1)
    assert len(result.rows) == 18  # 3 models x 6 sample counts


def test_bench_fig14_dram_footprint(benchmark):
    result = benchmark.pedantic(lambda: _run_and_print(run_fig14), rounds=1, iterations=1)
    assert len(result.rows) == 20  # 5 models x 4 accelerators


def test_bench_table2_resources(benchmark):
    result = benchmark(lambda: run_table2())
    assert len(result.rows) == 5
    print()
    print(result.to_table())


def test_bench_dse_mappings(benchmark):
    result = benchmark.pedantic(lambda: _run_and_print(run_dse), rounds=1, iterations=1)
    assert len(result.rows) == 4
