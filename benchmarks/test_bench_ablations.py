"""Benchmarks for the design-choice ablations called out in DESIGN.md.

Each ablation sweeps one knob the paper fixes by construction (GRNG width and
stride, SPU count, DRAM bandwidth) and prints its table next to the timing.
"""

from __future__ import annotations

from repro.experiments import (
    run_bandwidth_sensitivity_ablation,
    run_grng_quality_ablation,
    run_spu_scaling_ablation,
)


def test_bench_ablation_grng_quality(benchmark):
    def run():
        result = run_grng_quality_ablation(sample_count=4096)
        print()
        print(result.to_table())
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.rows) == 12  # 4 widths x 3 strides


def test_bench_ablation_spu_scaling(benchmark):
    def run():
        result = run_spu_scaling_ablation()
        print()
        print(result.to_table())
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.rows) == 5


def test_bench_ablation_bandwidth_sensitivity(benchmark):
    def run():
        result = run_bandwidth_sensitivity_ablation()
        print()
        print(result.to_table())
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.rows) == 4
