"""Convert a pytest-benchmark JSON dump into the machine-readable BENCH file.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_functional_training.py \
        -q --benchmark-json bench_raw.json
    python benchmarks/emit_results.py --input bench_raw.json --output BENCH_PR2.json

The emitted file records, per benchmark case, the mean/stddev wall-clock time
and, for every ``(workload, arch, S)`` combination of the execution-engine
benchmarks, the speedup of the batched Monte-Carlo pipeline over the two
per-sample baselines:

* ``vs_sequential`` -- against the plain S-times per-sample loop with fully
  independent per-row epsilon generation (no cross-sample speculation);
* ``vs_lockstep`` -- against the per-sample loop served by the bank's
  speculative cross-sample prefetching.

All compared modes produce bit-identical results (see
``tests/integration/test_batched_equivalence.py``); the file exists so CI can
track the performance trajectory from PR 2 onward.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

#: The acceptance headline of PR 2: batched mc_predict at S=8 on the dense
#: model must be at least this much faster than the sequential per-sample path.
ACCEPTANCE_THRESHOLD = 3.0
ACCEPTANCE_CASE = ("mc_predict", "dense", 8)

_CASE_PATTERN = re.compile(
    r"test_bench_(?P<workload>mc_predict|train_step)\["
    r"(?P<arch>dense|conv)-(?P<n_samples>\d+)-(?P<mode>\w+)\]"
)


def parse_cases(raw: dict) -> dict:
    """Extract {(workload, arch, S, mode): stats} from pytest-benchmark JSON."""
    cases = {}
    for bench in raw.get("benchmarks", []):
        match = _CASE_PATTERN.search(bench["name"])
        if not match:
            continue
        key = (
            match.group("workload"),
            match.group("arch"),
            int(match.group("n_samples")),
            match.group("mode"),
        )
        stats = bench["stats"]
        cases[key] = {
            "mean_ms": stats["mean"] * 1e3,
            "median_ms": stats["median"] * 1e3,
            "stddev_ms": stats["stddev"] * 1e3,
            "min_ms": stats["min"] * 1e3,
            "rounds": stats["rounds"],
        }
    return cases


def build_report(raw: dict) -> dict:
    cases = parse_cases(raw)
    report: dict = {
        "schema": "shift-bnn-bench/1",
        "source": "benchmarks/test_bench_functional_training.py",
        "machine": raw.get("machine_info", {}).get("cpu", {}).get("brand_raw")
        or raw.get("machine_info", {}).get("machine"),
        "datetime": raw.get("datetime"),
        "cases": {},
        "speedups": {},
    }
    for (workload, arch, n_samples, mode), stats in sorted(cases.items()):
        report["cases"][f"{workload}[{arch}-S{n_samples}-{mode}]"] = stats
    combos = sorted({key[:3] for key in cases})
    for workload, arch, n_samples in combos:
        batched = cases.get((workload, arch, n_samples, "batched"))
        if not batched:
            continue
        entry = {}
        for baseline in ("sequential", "lockstep"):
            base = cases.get((workload, arch, n_samples, baseline))
            if base:
                # medians: robust against the occasional GC / scheduler
                # outlier round that skews per-call means at this time scale
                entry[f"vs_{baseline}"] = round(
                    base["median_ms"] / batched["median_ms"], 3
                )
        report["speedups"][f"{workload}[{arch}-S{n_samples}]"] = entry
    acceptance_key = "{}[{}-S{}]".format(*ACCEPTANCE_CASE)
    acceptance = report["speedups"].get(acceptance_key, {}).get("vs_sequential")
    report["acceptance"] = {
        "metric": f"batched {acceptance_key} speedup vs the sequential "
        "(per-sample, no cross-sample speculation) path",
        "threshold": ACCEPTANCE_THRESHOLD,
        "measured": acceptance,
        "pass": acceptance is not None and acceptance >= ACCEPTANCE_THRESHOLD,
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--input", required=True, type=Path, help="pytest-benchmark JSON dump"
    )
    parser.add_argument(
        "--output", default=Path("BENCH_PR2.json"), type=Path, help="report path"
    )
    parser.add_argument(
        "--enforce",
        action="store_true",
        help="exit non-zero when the acceptance speedup misses the threshold "
        "(off by default: shared CI runners are too noisy to gate on "
        "wall-clock ratios, so CI records the trajectory as an artifact)",
    )
    args = parser.parse_args(argv)
    raw = json.loads(args.input.read_text())
    report = build_report(raw)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    acceptance = report["acceptance"]
    print(
        f"wrote {args.output}: {len(report['cases'])} cases, "
        f"acceptance {acceptance['measured']}x "
        f"(threshold {acceptance['threshold']}x, "
        f"{'PASS' if acceptance['pass'] else 'FAIL'})"
    )
    if args.enforce and not acceptance["pass"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
