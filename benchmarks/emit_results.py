"""Convert a pytest-benchmark JSON dump into the machine-readable BENCH file.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_functional_training.py \
        benchmarks/test_bench_serving.py -q --benchmark-json bench_raw.json
    python benchmarks/emit_results.py --input bench_raw.json --tag engine

``--tag NAME`` names the report ``BENCH_<NAME>.json`` (CI uses ``engine`` /
``serving`` / ``distrib`` per job, so artifacts are named after what was
measured rather than after the PR that introduced the job); ``--output``
overrides the path explicitly.

Two benchmark families are recognised (either or both may be present in the
input; CI runs them in separate jobs and emits one report each):

* the **execution-engine** cases (``test_bench_mc_predict`` /
  ``test_bench_train_step``): per ``(workload, arch, S)`` combination the
  speedup of the batched Monte-Carlo pipeline over the two per-sample
  baselines (``vs_sequential``: the plain S-times loop with independent
  per-row generation; ``vs_lockstep``: the per-sample loop served by the
  bank's speculative prefetching);
* the **serving** cases (``test_bench_serving``): per generator stride, the
  aggregate-throughput speedup of the micro-batching server (``inline`` and
  ``pool2`` worker modes, 8 concurrent clients x 4 requests) over the same
  requests issued sequentially through per-request ``mc_predict``;
* the **fused-tile** cases (``test_bench_serving_fused``): per generator
  stride, one executor tile of four pooled same-config requests with tile
  fusion on (``REPRO_FUSED=auto``, the probe-gated folded forward) vs off
  (``REPRO_FUSED=0``, per-request forwards).  Acceptance: fused must beat
  unfused by ``SERVING_FUSED_THRESHOLD`` at stride 256 (both legs assert
  byte-equality against standalone ``mc_predict``);
* the **per-kernel dispatch** cases (``test_bench_kernel``): per (kernel,
  backend) pair the speed of every registered backend relative to the
  always-available NumPy reference oracle, plus an ``auto`` case measuring
  the default selection chain.  Acceptance: the auto-selected backend of
  every dispatch point stays at least ``KERNELS_THRESHOLD`` of reference
  speed (all backends are bit-identical by the conformance gate, so this is
  purely a wall-clock check);
* the **gateway soak** cases (``test_bench_gateway``): the full HTTP wire
  path under ``N_CLIENTS`` concurrent tenants, per load profile (``steady``:
  the burst fits the row budget; ``overload``: a one-tile budget so most of
  the burst sheds with 429 + ``Retry-After``).  Each case records the
  p50/p95/p99 per-request latency and the admitted/shed/dropped counters.
  Acceptance: the steady-profile p99 stays under ``GATEWAY_P99_MS`` and
  zero requests are *dropped* (neither served exactly nor shed) across all
  profiles;
* the **observability overhead** cases (``test_bench_obs``): the steady
  soak run against two gateways in one process -- full tracing on vs
  ``REPRO_OBS=0`` -- with every client interleaving requests between the
  legs.  Acceptance: the median across rounds of the within-round traced
  vs untraced p99 ratio stays at or under ``OBS_OVERHEAD_RATIO`` (tracing
  is a side channel, never a tax);
* the **distributed-training** cases (``test_bench_distrib``): the sharded
  training engine (``inline2``: two shards in-process; ``pool2``: two worker
  processes) against the single-process batched baseline over the same
  4-step schedule.  On a 1-CPU runner these ratios measure distribution
  *overhead* (a parallel speedup needs cores); the acceptance bound asserts
  the sharded code path stays within a small constant of the baseline;
* the **delta-shipping** cases (``test_bench_distrib_elastic``): the same
  12-step dense fit through the coordinator's content-fingerprinted delta
  transport (``delta``) and the ship-everything baseline (``full``), both
  asserting final parameters bit-identical to the single-process run.
  Acceptance gates on the exact bytes-shipped counters: the delta leg must
  move at most ``1/DISTRIB_ELASTIC_THRESHOLD`` of the baseline's bytes,
  and both legs must report zero drifting parameters.

All compared modes produce bit-identical results (see
``tests/integration/test_batched_equivalence.py`` and
``tests/integration/test_serving_equivalence.py``); the report exists so CI
can track the performance trajectory from PR 2 onward.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

#: The acceptance headline of PR 2: batched mc_predict at S=8 on the dense
#: model must be at least this much faster than the sequential per-sample path.
ENGINE_THRESHOLD = 3.0
ENGINE_CASE = ("mc_predict", "dense", 8)

#: The acceptance headline of PR 3: at the library-default stride the serving
#: front-end must deliver at least 2x the aggregate throughput of sequential
#: per-request mc_predict at 8 concurrent clients.
SERVING_THRESHOLD = 2.0
SERVING_STRIDE = 256
SERVING_MODE = "inline"

#: The acceptance headline of PR 7: when the row-stability proof passes, a
#: fused tile of pooled same-config requests must beat the per-request
#: fallback path by at least this factor at the library-default stride.
SERVING_FUSED_THRESHOLD = 1.3
SERVING_FUSED_STRIDE = 256

_ENGINE_PATTERN = re.compile(
    r"test_bench_(?P<workload>mc_predict|train_step)\["
    r"(?P<arch>dense|conv)-(?P<n_samples>\d+)-(?P<mode>\w+)\]"
)
_SERVING_PATTERN = re.compile(
    r"test_bench_serving\[(?P<stride>\d+)-(?P<mode>\w+)\]"
)
_SERVING_FUSED_PATTERN = re.compile(
    r"test_bench_serving_fused\[(?P<stride>\d+)-(?P<mode>\w+)\]"
)
_DISTRIB_PATTERN = re.compile(r"test_bench_distrib\[(?P<mode>\w+)\]")
_DISTRIB_ELASTIC_PATTERN = re.compile(
    r"test_bench_distrib_elastic\[(?P<mode>\w+)\]"
)
_GATEWAY_PATTERN = re.compile(r"test_bench_gateway\[(?P<profile>\w+)\]")
_OBS_PATTERN = re.compile(r"test_bench_obs\[(?P<profile>\w+)\]")
_KERNEL_PATTERN = re.compile(
    r"test_bench_kernel\[(?P<kernel>[a-z0-9_]+)-(?P<backend>\w+)\]"
)

#: The acceptance bound of PR 6: for every dispatch point the auto-selected
#: backend must be at least this fraction of the reference oracle's speed
#: (i.e. never slower than reference beyond benchmark noise; >1 means the
#: selected backend is genuinely faster).
KERNELS_THRESHOLD = 0.8

#: The acceptance bound of PR 4: the sharded-inline training path must keep
#: at least this fraction of the single-process baseline's throughput (the
#: shard/reduce/state-shipping machinery is bounded overhead, not a cliff).
DISTRIB_THRESHOLD = 0.3
DISTRIB_MODE = "inline2"

#: The acceptance bound of PR 10: over the 12-step dense fit (4 sample
#: shards x 2 row blocks), delta shipping must move at most 1/5 of the
#: bytes the full-shipment baseline moves.  Measured ~8.1x on the reference
#: container; the byte counters are exact functions of the schedule, so
#: this bound is runner-independent, unlike the wall-clock ratios.
DISTRIB_ELASTIC_THRESHOLD = 5.0

#: The acceptance bound of PR 8: the steady-profile gateway soak (the full
#: HTTP path, admission control on, no shedding expected) must keep its p99
#: request latency under this bound on a shared CI runner.
GATEWAY_P99_MS = 2500.0
GATEWAY_STEADY_PROFILE = "steady"

#: The acceptance bound of PR 9: with full tracing on (sample rate 1.0,
#: span trees assembled across the worker boundary, metrics collectors
#: bound) the steady-soak p99 request latency may cost at most 5% over the
#: identical soak with ``REPRO_OBS=0``.
OBS_OVERHEAD_RATIO = 1.05
OBS_STEADY_PROFILE = "steady"


def _stats(bench: dict) -> dict:
    stats = bench["stats"]
    return {
        "mean_ms": stats["mean"] * 1e3,
        "median_ms": stats["median"] * 1e3,
        "stddev_ms": stats["stddev"] * 1e3,
        "min_ms": stats["min"] * 1e3,
        "rounds": stats["rounds"],
    }


def parse_engine_cases(raw: dict) -> dict:
    """Extract {(workload, arch, S, mode): stats} from pytest-benchmark JSON."""
    cases = {}
    for bench in raw.get("benchmarks", []):
        match = _ENGINE_PATTERN.search(bench["name"])
        if not match:
            continue
        key = (
            match.group("workload"),
            match.group("arch"),
            int(match.group("n_samples")),
            match.group("mode"),
        )
        cases[key] = _stats(bench)
    return cases


def parse_serving_cases(raw: dict) -> dict:
    """Extract {(stride, mode): stats} from the serving benchmark cases."""
    cases = {}
    for bench in raw.get("benchmarks", []):
        match = _SERVING_PATTERN.search(bench["name"])
        if not match:
            continue
        stats = _stats(bench)
        # recorded by the benchmark itself (benchmark.extra_info), so the
        # derived requests/s can never drift from the workload definition
        stats["n_requests"] = bench.get("extra_info", {}).get("n_requests")
        cases[(int(match.group("stride")), match.group("mode"))] = stats
    return cases


def parse_serving_fused_cases(raw: dict) -> dict:
    """Extract {(stride, mode): stats} from the fused-tile benchmark cases."""
    cases = {}
    for bench in raw.get("benchmarks", []):
        match = _SERVING_FUSED_PATTERN.search(bench["name"])
        if not match:
            continue
        stats = _stats(bench)
        stats["n_requests"] = bench.get("extra_info", {}).get("n_requests")
        cases[(int(match.group("stride")), match.group("mode"))] = stats
    return cases


def parse_distrib_cases(raw: dict) -> dict:
    """Extract {mode: stats} from the distributed-training benchmark cases."""
    cases = {}
    for bench in raw.get("benchmarks", []):
        match = _DISTRIB_PATTERN.search(bench["name"])
        if not match:
            continue
        stats = _stats(bench)
        stats["n_steps"] = bench.get("extra_info", {}).get("n_steps")
        cases[match.group("mode")] = stats
    return cases


def parse_distrib_elastic_cases(raw: dict) -> dict:
    """Extract {mode: stats} from the delta-shipping benchmark cases.

    The acceptance material lives in ``benchmark.extra_info``: the
    coordinator's exact bytes-shipped counters and the per-leg bit-drift
    parameter count (asserted zero inside the benchmark as well).
    """
    cases = {}
    for bench in raw.get("benchmarks", []):
        match = _DISTRIB_ELASTIC_PATTERN.search(bench["name"])
        if not match:
            continue
        stats = _stats(bench)
        extra = bench.get("extra_info", {})
        for key in (
            "n_steps",
            "n_shards",
            "n_row_blocks",
            "bytes_shipped",
            "bytes_full_equivalent",
            "resyncs",
            "bit_drift_params",
        ):
            stats[key] = extra.get(key)
        cases[match.group("mode")] = stats
    return cases


def parse_gateway_cases(raw: dict) -> dict:
    """Extract {profile: stats} from the gateway soak benchmark cases.

    The latency percentiles and admitted/shed/dropped counters come from
    ``benchmark.extra_info`` (measured per request inside the soak, across
    every round), not from the per-round wall-clock stats.
    """
    cases = {}
    for bench in raw.get("benchmarks", []):
        match = _GATEWAY_PATTERN.search(bench["name"])
        if not match:
            continue
        stats = _stats(bench)
        extra = bench.get("extra_info", {})
        for key in (
            "n_clients",
            "n_requests",
            "admitted",
            "shed",
            "dropped",
            "latency_p50_ms",
            "latency_p95_ms",
            "latency_p99_ms",
        ):
            stats[key] = extra.get(key)
        cases[match.group("profile")] = stats
    return cases


def parse_obs_cases(raw: dict) -> dict:
    """Extract {profile: stats} from the observability overhead cases.

    Everything of interest lives in ``benchmark.extra_info``: the pooled
    per-leg latency percentiles, the per-round paired p99 ratios, and the
    acceptance statistic ``obs_overhead_ratio`` (median of the per-round
    ratios, computed inside the benchmark where the raw samples live).
    """
    cases = {}
    for bench in raw.get("benchmarks", []):
        match = _OBS_PATTERN.search(bench["name"])
        if not match:
            continue
        stats = _stats(bench)
        extra = bench.get("extra_info", {})
        for key in (
            "n_clients",
            "n_requests_traced",
            "n_requests_untraced",
            "latency_p50_ms_traced",
            "latency_p50_ms_untraced",
            "latency_p99_ms_traced",
            "latency_p99_ms_untraced",
            "obs_overhead_ratio",
            "obs_overhead_ratio_p50",
            "obs_overhead_ratios_per_round",
        ):
            stats[key] = extra.get(key)
        cases[match.group("profile")] = stats
    return cases


def parse_kernel_cases(raw: dict) -> dict:
    """Extract {(kernel, backend): stats} from the per-kernel bench cases.

    ``backend`` is a registered backend name or ``auto`` (the default
    selection chain, i.e. whatever the dispatch layer actually runs in
    production).  Self-skipped backends simply do not appear.
    """
    cases = {}
    for bench in raw.get("benchmarks", []):
        match = _KERNEL_PATTERN.search(bench["name"])
        if not match:
            continue
        cases[(match.group("kernel"), match.group("backend"))] = _stats(bench)
    return cases


def _kernel_report(cases: dict, report: dict) -> None:
    kernels: dict = {"cases": {}, "speedup_vs_reference": {}}
    for (kernel, backend), stats in sorted(cases.items()):
        kernels["cases"][f"kernel[{kernel}-{backend}]"] = stats
    for kernel in sorted({key[0] for key in cases}):
        reference = cases.get((kernel, "reference"))
        if not reference:
            continue
        entry = {}
        for backend in sorted({k[1] for k in cases if k[0] == kernel}):
            if backend == "reference":
                continue
            entry[backend] = round(
                reference["median_ms"] / cases[(kernel, backend)]["median_ms"], 3
            )
        kernels["speedup_vs_reference"][kernel] = entry
    report["kernels"] = kernels


def _engine_report(cases: dict, report: dict) -> None:
    for (workload, arch, n_samples, mode), stats in sorted(cases.items()):
        report["cases"][f"{workload}[{arch}-S{n_samples}-{mode}]"] = stats
    combos = sorted({key[:3] for key in cases})
    for workload, arch, n_samples in combos:
        batched = cases.get((workload, arch, n_samples, "batched"))
        if not batched:
            continue
        entry = {}
        for baseline in ("sequential", "lockstep"):
            base = cases.get((workload, arch, n_samples, baseline))
            if base:
                # medians: robust against the occasional GC / scheduler
                # outlier round that skews per-call means at this time scale
                entry[f"vs_{baseline}"] = round(
                    base["median_ms"] / batched["median_ms"], 3
                )
        report["speedups"][f"{workload}[{arch}-S{n_samples}]"] = entry


def _serving_report(cases: dict, report: dict) -> None:
    serving: dict = {"cases": {}, "speedups": {}}
    for (stride, mode), stats in sorted(cases.items()):
        stats = dict(stats)
        if stats["n_requests"]:
            stats["throughput_rps"] = round(
                stats["n_requests"] / (stats["median_ms"] / 1e3), 1
            )
        serving["cases"][f"serving[stride{stride}-{mode}]"] = stats
    for stride in sorted({key[0] for key in cases}):
        baseline = cases.get((stride, "sequential"))
        if not baseline:
            continue
        entry = {}
        for mode in sorted({key[1] for key in cases if key[0] == stride}):
            if mode == "sequential":
                continue
            served = cases[(stride, mode)]
            entry[f"{mode}_vs_sequential"] = round(
                baseline["median_ms"] / served["median_ms"], 3
            )
        serving["speedups"][f"stride{stride}"] = entry
    report["serving"] = serving


def _serving_fused_report(cases: dict, report: dict) -> None:
    fused: dict = {"cases": {}, "speedups": {}}
    for (stride, mode), stats in sorted(cases.items()):
        fused["cases"][f"serving_fused[stride{stride}-{mode}]"] = stats
    for stride in sorted({key[0] for key in cases}):
        baseline = cases.get((stride, "unfused"))
        measured = cases.get((stride, "fused"))
        if baseline and measured:
            # the fused-tile win proper: one probe-gated folded forward
            # against the per-request forwards over the same pooled tile
            fused["speedups"][f"stride{stride}"] = {
                "fused_vs_unfused": round(
                    baseline["median_ms"] / measured["median_ms"], 3
                )
            }
    report["serving_fused"] = fused


def _gateway_report(cases: dict, report: dict) -> None:
    gateway: dict = {"cases": {}}
    for profile, stats in sorted(cases.items()):
        gateway["cases"][f"gateway[{profile}]"] = stats
    report["gateway"] = gateway


def _obs_report(cases: dict, report: dict) -> None:
    obs: dict = {"cases": {}}
    for profile, stats in sorted(cases.items()):
        obs["cases"][f"obs[{profile}]"] = stats
    report["obs"] = obs


def _distrib_report(cases: dict, report: dict) -> None:
    distrib: dict = {"cases": {}, "throughput_ratios": {}}
    for mode, stats in sorted(cases.items()):
        distrib["cases"][f"distrib[{mode}]"] = stats
    baseline = cases.get("single")
    if baseline:
        for mode, stats in sorted(cases.items()):
            if mode == "single":
                continue
            # >1 means the sharded mode was faster; on a 1-CPU runner expect
            # <1 -- the ratio quantifies the distribution overhead
            distrib["throughput_ratios"][f"{mode}_vs_single"] = round(
                baseline["median_ms"] / stats["median_ms"], 3
            )
    report["distrib"] = distrib


def _distrib_elastic_report(cases: dict, report: dict) -> None:
    elastic: dict = {"cases": {}}
    for mode, stats in sorted(cases.items()):
        elastic["cases"][f"distrib_elastic[{mode}]"] = stats
    delta = cases.get("delta")
    if delta and delta.get("bytes_shipped"):
        # prefer the measured full leg; the delta leg's full-equivalent
        # counter is the same number computed on the other side of the wire
        full = cases.get("full", {})
        baseline_bytes = (
            full.get("bytes_shipped") or delta.get("bytes_full_equivalent")
        )
        if baseline_bytes:
            elastic["bytes_reduction"] = round(
                baseline_bytes / delta["bytes_shipped"], 3
            )
    report["distrib_elastic"] = elastic


def build_report(raw: dict) -> dict:
    engine_cases = parse_engine_cases(raw)
    serving_cases = parse_serving_cases(raw)
    serving_fused_cases = parse_serving_fused_cases(raw)
    distrib_cases = parse_distrib_cases(raw)
    distrib_elastic_cases = parse_distrib_elastic_cases(raw)
    gateway_cases = parse_gateway_cases(raw)
    obs_cases = parse_obs_cases(raw)
    kernel_cases = parse_kernel_cases(raw)
    report: dict = {
        "schema": "shift-bnn-bench/2",
        "source": "benchmarks/test_bench_functional_training.py + "
        "benchmarks/test_bench_serving.py + benchmarks/test_bench_distrib.py "
        "+ benchmarks/test_bench_distrib_elastic.py "
        "+ benchmarks/test_bench_kernels.py + benchmarks/test_bench_gateway.py "
        "+ benchmarks/test_bench_obs.py",
        "machine": raw.get("machine_info", {}).get("cpu", {}).get("brand_raw")
        or raw.get("machine_info", {}).get("machine"),
        "datetime": raw.get("datetime"),
        "cases": {},
        "speedups": {},
        "acceptance": [],
    }
    _engine_report(engine_cases, report)
    if serving_cases:
        _serving_report(serving_cases, report)
    if serving_fused_cases:
        _serving_fused_report(serving_fused_cases, report)
    if distrib_cases:
        _distrib_report(distrib_cases, report)
    if distrib_elastic_cases:
        _distrib_elastic_report(distrib_elastic_cases, report)
    if gateway_cases:
        _gateway_report(gateway_cases, report)
    if obs_cases:
        _obs_report(obs_cases, report)
    if kernel_cases:
        _kernel_report(kernel_cases, report)
    if any(key[:3] == ENGINE_CASE for key in engine_cases):
        key = "{}[{}-S{}]".format(*ENGINE_CASE)
        measured = report["speedups"].get(key, {}).get("vs_sequential")
        report["acceptance"].append(
            {
                "metric": f"batched {key} speedup vs the sequential "
                "(per-sample, no cross-sample speculation) path",
                "threshold": ENGINE_THRESHOLD,
                "measured": measured,
                "pass": measured is not None and measured >= ENGINE_THRESHOLD,
            }
        )
    if serving_cases:
        measured = (
            report["serving"]["speedups"]
            .get(f"stride{SERVING_STRIDE}", {})
            .get(f"{SERVING_MODE}_vs_sequential")
        )
        report["acceptance"].append(
            {
                "metric": f"serving ({SERVING_MODE}, 8 concurrent clients, "
                f"stride {SERVING_STRIDE}) aggregate throughput vs sequential "
                "per-request mc_predict",
                "threshold": SERVING_THRESHOLD,
                "measured": measured,
                "pass": measured is not None and measured >= SERVING_THRESHOLD,
            }
        )
    if serving_fused_cases:
        measured = (
            report["serving_fused"]["speedups"]
            .get(f"stride{SERVING_FUSED_STRIDE}", {})
            .get("fused_vs_unfused")
        )
        report["acceptance"].append(
            {
                "metric": "fused tile (4 pooled same-config requests, stride "
                f"{SERVING_FUSED_STRIDE}) vs the per-request fallback path "
                "(byte-equality to mc_predict asserted in both legs)",
                "threshold": SERVING_FUSED_THRESHOLD,
                "measured": measured,
                "pass": measured is not None
                and measured >= SERVING_FUSED_THRESHOLD,
            }
        )
    if distrib_cases:
        measured = report["distrib"]["throughput_ratios"].get(
            f"{DISTRIB_MODE}_vs_single"
        )
        report["acceptance"].append(
            {
                "metric": f"distributed training ({DISTRIB_MODE}, 2 shards, "
                "4-step schedule) throughput vs the single-process batched "
                "engine (bounded-overhead check; bit-exactness is asserted "
                "by the test suite)",
                "threshold": DISTRIB_THRESHOLD,
                "measured": measured,
                "pass": measured is not None and measured >= DISTRIB_THRESHOLD,
            }
        )
    if distrib_elastic_cases:
        measured = report["distrib_elastic"].get("bytes_reduction")
        delta = distrib_elastic_cases.get("delta", {})
        report["acceptance"].append(
            {
                "metric": "delta shipping: state bytes on the wire, full "
                f"baseline vs delta transport ({delta.get('n_steps', '?')}-"
                f"step dense fit, {delta.get('n_shards', '?')} shards x "
                f"{delta.get('n_row_blocks', '?')} row blocks)",
                "threshold": DISTRIB_ELASTIC_THRESHOLD,
                "measured": measured,
                "pass": measured is not None
                and measured >= DISTRIB_ELASTIC_THRESHOLD,
            }
        )
        drift = sum(
            stats.get("bit_drift_params") or 0
            for stats in distrib_elastic_cases.values()
        )
        accounted = all(
            stats.get("bit_drift_params") is not None
            for stats in distrib_elastic_cases.values()
        )
        report["acceptance"].append(
            {
                "metric": "delta shipping: parameters drifting from the "
                "single-process trajectory, delta and full legs combined",
                "threshold": 0,
                "measured": drift if accounted else None,
                "pass": accounted and drift == 0,
            }
        )
    if gateway_cases:
        steady = gateway_cases.get(GATEWAY_STEADY_PROFILE, {})
        p99 = steady.get("latency_p99_ms")
        report["acceptance"].append(
            {
                "metric": f"gateway soak ({GATEWAY_STEADY_PROFILE}, "
                f"{steady.get('n_clients', '?')} concurrent clients) p99 "
                "request latency in ms (lower is better)",
                "threshold": GATEWAY_P99_MS,
                "measured": p99,
                "pass": p99 is not None and p99 <= GATEWAY_P99_MS,
            }
        )
        dropped = sum(
            stats.get("dropped") or 0 for stats in gateway_cases.values()
        )
        accounted = all(
            stats.get("dropped") is not None for stats in gateway_cases.values()
        )
        report["acceptance"].append(
            {
                "metric": "gateway soak: requests dropped (neither served "
                "bit-exactly nor shed with 429 + Retry-After), all profiles",
                "threshold": 0,
                "measured": dropped if accounted else None,
                "pass": accounted and dropped == 0,
            }
        )
    if obs_cases:
        steady = obs_cases.get(OBS_STEADY_PROFILE, {})
        measured = steady.get("obs_overhead_ratio")
        report["acceptance"].append(
            {
                "metric": "observability overhead: traced vs untraced p99 "
                f"request latency ratio, {OBS_STEADY_PROFILE} interleaved "
                "soak (median of within-round paired ratios; response "
                "bodies asserted byte-identical in both legs)",
                "threshold": OBS_OVERHEAD_RATIO,
                "measured": measured,
                "pass": measured is not None and measured <= OBS_OVERHEAD_RATIO,
            }
        )
    if kernel_cases:
        # the acceptance is over the production path: auto (the default
        # selection chain) must never be slower than reference beyond noise,
        # for ANY dispatch point -- so gate on the worst kernel
        auto_ratios = {
            kernel: entry["auto"]
            for kernel, entry in report["kernels"]["speedup_vs_reference"].items()
            if "auto" in entry
        }
        measured = min(auto_ratios.values()) if auto_ratios else None
        worst = (
            min(auto_ratios, key=auto_ratios.get) if auto_ratios else "n/a"
        )
        report["acceptance"].append(
            {
                "metric": "per-kernel dispatch: auto-selected backend speed "
                f"vs the reference oracle, worst kernel ({worst})",
                "threshold": KERNELS_THRESHOLD,
                "measured": measured,
                "pass": measured is not None and measured >= KERNELS_THRESHOLD,
            }
        )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--input", required=True, type=Path, help="pytest-benchmark JSON dump"
    )
    parser.add_argument(
        "--output", default=None, type=Path, help="explicit report path"
    )
    parser.add_argument(
        "--tag",
        default=None,
        help="name the report BENCH_<tag>.json (e.g. --tag engine writes "
        "BENCH_engine.json); mutually exclusive with --output",
    )
    parser.add_argument(
        "--enforce",
        action="store_true",
        help="exit non-zero when an applicable acceptance speedup misses its "
        "threshold (off by default: shared CI runners are too noisy to gate "
        "on wall-clock ratios, so CI records the trajectory as an artifact)",
    )
    args = parser.parse_args(argv)
    if args.tag is not None and args.output is not None:
        parser.error("--tag and --output are mutually exclusive")
    if args.tag is not None:
        if not re.fullmatch(r"[A-Za-z0-9._-]+", args.tag):
            parser.error(f"--tag {args.tag!r} is not a safe file-name fragment")
        output = Path(f"BENCH_{args.tag}.json")
    else:
        output = args.output or Path("BENCH_results.json")
    raw = json.loads(args.input.read_text())
    report = build_report(raw)
    if args.tag is not None:
        report["tag"] = args.tag
    output.write_text(json.dumps(report, indent=2) + "\n")
    total_cases = (
        len(report["cases"])
        + len(report.get("serving", {}).get("cases", {}))
        + len(report.get("serving_fused", {}).get("cases", {}))
        + len(report.get("distrib", {}).get("cases", {}))
        + len(report.get("distrib_elastic", {}).get("cases", {}))
        + len(report.get("gateway", {}).get("cases", {}))
        + len(report.get("obs", {}).get("cases", {}))
        + len(report.get("kernels", {}).get("cases", {}))
    )
    print(f"wrote {output}: {total_cases} cases")
    for acceptance in report["acceptance"]:
        print(
            f"  acceptance: {acceptance['metric']}: {acceptance['measured']}x "
            f"(threshold {acceptance['threshold']}x, "
            f"{'PASS' if acceptance['pass'] else 'FAIL'})"
        )
    if not report["acceptance"]:
        print("  (no acceptance-relevant cases in the input)")
        if args.enforce:
            # a renamed benchmark / wrong --input must not pass vacuously
            return 1
    if args.enforce and any(not entry["pass"] for entry in report["acceptance"]):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
