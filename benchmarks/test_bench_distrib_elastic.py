"""Delta-shipping benchmark: bytes on the wire, delta vs full, zero drift.

A 12-step dense fit (reduced B-MLP, ``S = 8``) runs through the distributed
coordinator's inline sharded path twice, identically planned with 4 sample
shards x 2 row blocks (8 tasks/step, the shape that amortises per-step
state across tasks):

* ``delta`` -- the default content-fingerprinted delta transport: each
  tensor ships at most once per step per worker cache; repeat minibatches
  and unchanged tensors ship as fingerprint references;
* ``full`` -- ``delta_shipping=False``: every task ships its complete
  state, the PR 4 wire behaviour and the traffic baseline.

Both legs assert their final parameters bit-identical to the single-process
run (zero drift -- the transport is invisible to the bits) and record the
coordinator's bytes-shipped counters in ``benchmark.extra_info``;
``benchmarks/emit_results.py --tag distrib_elastic`` turns the dump into
``BENCH_distrib_elastic.json`` and ``--enforce`` gates on the bytes-on-
the-wire reduction (and on both drift counters staying zero).  The
counters are exact functions of the schedule, so unlike wall-clock ratios
they are *stable* acceptance material even on noisy shared runners.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bnn import BNNTrainer, TrainerConfig
from repro.datasets import BatchLoader, synthetic_mnist
from repro.distrib import DistributedBackend
from repro.models import ReplicaSpec, get_model

N_SAMPLES = 8
STEPS = 12
N_SHARDS = 4
N_ROW_BLOCKS = 2
_BENCH_STRIDE = int(os.environ.get("BENCH_GRNG_STRIDE", "256"))

#: mode -> delta_shipping
ELASTIC_MODES: dict[str, bool] = {"delta": True, "full": False}


def _workload():
    spec = get_model("B-MLP", reduced=True)
    train, _ = synthetic_mnist(n_train=64, n_test=16, image_size=14, seed=3)
    batches = BatchLoader(train, batch_size=16, flatten=True).batches()
    return spec, batches  # 4 batches -> 12 steps over 3 epochs


def _reference_parameters(spec, batches, config):
    trainer = BNNTrainer(
        spec.build_bayesian(seed=42), config, policy="reversible"
    )
    trainer.fit(batches, epochs=3)
    return [parameter.value.copy() for parameter in trainer.model.parameters()]


@pytest.mark.parametrize("mode", list(ELASTIC_MODES))
def test_bench_distrib_elastic(benchmark, mode):
    spec, batches = _workload()
    config = TrainerConfig(
        n_samples=N_SAMPLES,
        learning_rate=5e-3,
        seed=11,
        grng_stride=_BENCH_STRIDE,
    )
    # the blocked (4 x 2) canonical trajectory's single-process reference:
    # the inline backend with one shard and the same row blocking
    reference_backend = DistributedBackend(
        ReplicaSpec.structural(spec, build_seed=42),
        n_workers=0,
        n_shards=1,
        n_row_blocks=N_ROW_BLOCKS,
        delta_shipping=False,
    )
    reference = BNNTrainer(
        spec.build_bayesian(seed=42),
        config,
        policy="reversible",
        backend=reference_backend,
    )
    reference.fit(batches, epochs=3)
    expected = [p.value.copy() for p in reference.model.parameters()]

    backend = None
    trainer = None

    def run():
        nonlocal backend, trainer
        # a fresh backend per round: the byte counters measure exactly one
        # 12-step fit, with every cache starting cold
        backend = DistributedBackend(
            ReplicaSpec.structural(spec, build_seed=42),
            n_workers=0,
            n_shards=N_SHARDS,
            n_row_blocks=N_ROW_BLOCKS,
            delta_shipping=ELASTIC_MODES[mode],
        )
        trainer = BNNTrainer(
            spec.build_bayesian(seed=42),
            config,
            policy="reversible",
            backend=backend,
        )
        trainer.fit(batches, epochs=3)
        return trainer

    trainer = benchmark(run)

    # zero bit-drift: the transport must be invisible to the trajectory
    drift = sum(
        0 if np.array_equal(parameter.value, value) else 1
        for parameter, value in zip(trainer.model.parameters(), expected)
    )
    assert drift == 0
    assert backend.resyncs == 0

    benchmark.extra_info["n_steps"] = STEPS
    benchmark.extra_info["n_shards"] = N_SHARDS
    benchmark.extra_info["n_row_blocks"] = N_ROW_BLOCKS
    benchmark.extra_info["bytes_shipped"] = backend.bytes_shipped
    benchmark.extra_info["bytes_full_equivalent"] = backend.bytes_full_equivalent
    benchmark.extra_info["resyncs"] = backend.resyncs
    benchmark.extra_info["bit_drift_params"] = drift
