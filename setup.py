"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only enables
legacy ``pip install -e .`` in offline environments whose setuptools cannot
build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
