"""The asynchronous prediction front-end: submit requests, await futures.

``PredictionServer`` glues the serving subsystem together:

* clients call :meth:`~PredictionServer.submit` (thread-safe, returns a
  ``concurrent.futures.Future``) or the blocking convenience
  :meth:`~PredictionServer.predict`;
* a :class:`~repro.serve.microbatcher.MicroBatcher` pools requests into
  ``(S, batch)`` tiles under the ``max_batch_rows`` / ``max_wait_ms`` flush
  policy, with row-budget backpressure;
* the dispatcher thread hands tiles either to an inline
  :class:`~repro.serve.executor.TileExecutor` (``n_workers=0``; lowest
  latency, single process) or to a
  :class:`~repro.serve.worker.WorkerPool` of replica processes;
* each future resolves to the *exact* :class:`~repro.bnn.predict.PredictiveResult`
  a standalone ``mc_predict`` call with the same sampling configuration
  would return -- mean / entropy / per-sample probabilities included --
  regardless of how requests were pooled or which worker ran them;
* :meth:`~PredictionServer.stats` reports throughput, p50/p99 latency and
  the batch-occupancy histogram.

Failure semantics: a tile that raises fails only its own requests
(:class:`TileExecutionError`); a dead worker fails exactly its outstanding
tiles (:class:`WorkerCrashError`, never a hang); ``close(drain=True)``
finishes queued work first, ``close(drain=False)`` fails it fast with
:class:`ServerClosed`.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from ..bnn.predict import PredictiveResult
from ..models.zoo import ReplicaSpec
from .executor import SamplingConfig, TileExecutor
from .microbatcher import MicroBatcher, PendingItem, QueueClosed
from .stats import ServerStats, StatsSnapshot
from ..distrib.respawn import RespawnPolicy
from .worker import WorkerPool

__all__ = ["PredictionServer", "ServerConfig", "ServerClosed"]


class ServerClosed(RuntimeError):
    """Raised by ``submit`` after shutdown, and set on aborted futures."""


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of the serving front-end."""

    max_batch_rows: int = 64
    """Rows per tile; the flush threshold of the micro-batcher."""
    max_wait_ms: float = 2.0
    """Maximum time the oldest queued request waits before a partial flush."""
    max_pending_rows: int = 1024
    """Backpressure budget: ``submit`` blocks once this many rows are queued."""
    n_workers: int = 0
    """``0`` executes tiles inline on the dispatcher thread; ``>=1`` shards
    tiles across that many replica processes."""
    start_method: str | None = None
    """Multiprocessing start method (``None``: fork where available)."""
    worker_respawns: int = 0
    """Total replacement workers the pool may spawn after crashes.  ``0``
    keeps the fail-fast semantics (a dead worker's tiles fail immediately);
    ``>= 1`` also re-queues a dead worker's in-flight tiles once before
    failing their futures -- retried tiles return byte-identical results
    because tile epsilons derive from the request's seed, not worker state."""
    max_cached_configs: int = 8
    """Epsilon-cache entries kept per executor (one per sampling config)."""
    latency_window: int = 4096
    """Recent-request window for the latency percentiles."""

    def __post_init__(self) -> None:
        if self.n_workers < 0:
            raise ValueError("n_workers must be non-negative")
        if self.worker_respawns < 0:
            raise ValueError("worker_respawns must be non-negative")


@dataclass
class _Request:
    x: np.ndarray
    config: SamplingConfig
    future: Future
    rows: int


class PredictionServer:
    """Async micro-batching front-end over the batched Monte-Carlo engine."""

    def __init__(self, replica: ReplicaSpec, config: ServerConfig | None = None) -> None:
        self._replica = replica
        self._config = config or ServerConfig()
        self._batcher: MicroBatcher[_Request] = MicroBatcher(
            max_batch_rows=self._config.max_batch_rows,
            max_wait_ms=self._config.max_wait_ms,
            max_pending_rows=self._config.max_pending_rows,
        )
        self._stats = ServerStats(latency_window=self._config.latency_window)
        self._tile_ids = itertools.count()
        self._executor: TileExecutor | None = None
        self._pool: WorkerPool | None = None
        self._dispatcher: threading.Thread | None = None
        self._inflight_lock = threading.Lock()
        self._inflight: dict[int, list[PendingItem[_Request]]] = {}
        self._idle = threading.Event()
        self._idle.set()
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_model(
        cls,
        model,
        spec,
        config: ServerConfig | None = None,
        build_seed: int = 0,
    ) -> "PredictionServer":
        """Serve a live (e.g. freshly trained) model: capture it as a replica."""
        return cls(ReplicaSpec.capture(spec, model, build_seed=build_seed), config)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PredictionServer":
        """Build the executor (or fork the worker pool) and start dispatching."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        if self._config.n_workers:
            # fork the workers BEFORE any service thread exists
            respawn = (
                RespawnPolicy(max_respawns=self._config.worker_respawns)
                if self._config.worker_respawns
                else None
            )
            self._pool = WorkerPool(
                self._replica,
                n_workers=self._config.n_workers,
                result_handler=self._on_tile_result,
                max_cached_configs=self._config.max_cached_configs,
                start_method=self._config.start_method,
                respawn=respawn,
            )
            self._pool.start()
        else:
            self._executor = TileExecutor(
                self._replica.build(),
                max_cached_configs=self._config.max_cached_configs,
            )
        self._stats.reset_clock()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        self._dispatcher.start()
        return self

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def close(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Stop the server.

        ``drain=True`` completes everything already submitted before
        returning; ``drain=False`` fails queued (and, in worker mode,
        in-flight) requests with :class:`ServerClosed` /
        :class:`~repro.serve.worker.WorkerCrashError` as fast as possible.
        """
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        if not drain:
            for pending in self._batcher.cancel_pending():
                self._fail(pending.item, ServerClosed("server closed before execution"))
        self._batcher.close()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=timeout)
            self._dispatcher = None
        if drain:
            self._idle.wait(timeout=timeout)
        if self._pool is not None:
            self._pool.stop(abort=not drain)
            self._pool = None

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(
        self,
        x: np.ndarray,
        sampling: SamplingConfig | None = None,
        block: bool = True,
        timeout: float | None = None,
    ) -> Future:
        """Queue one prediction request; resolves to a ``PredictiveResult``.

        ``x`` is one request's input batch (first axis = rows).  Requests
        sharing a :class:`SamplingConfig` are pooled into tiles and replay
        one cached epsilon sweep.  Under backpressure the call blocks, or
        raises :class:`~repro.serve.microbatcher.QueueFull` when
        ``block=False`` / the timeout expires.
        """
        if not self._started:
            raise RuntimeError("server not started; call start() or use a with-block")
        # private copy: execution is deferred (queue, then tile), and a client
        # reusing its staging buffer must not mutate an in-flight request
        x = np.array(x)
        if x.ndim < 2:
            raise ValueError(
                "a request must be batched: expected (rows, ...) input, got "
                f"shape {x.shape}"
            )
        request = _Request(
            x=x,
            config=sampling or SamplingConfig(),
            future=Future(),
            rows=int(x.shape[0]),
        )
        try:
            self._batcher.submit(request, rows=request.rows, block=block, timeout=timeout)
        except QueueClosed:
            raise ServerClosed("the server is shut down") from None
        return request.future

    def predict(
        self, x: np.ndarray, sampling: SamplingConfig | None = None
    ) -> PredictiveResult:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(x, sampling=sampling).result()

    def stats(self) -> StatsSnapshot:
        """Throughput / latency / occupancy snapshot."""
        return self._stats.snapshot()

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            tile = self._batcher.next_tile()
            if tile is None:
                return
            tile_id = next(self._tile_ids)
            self._stats.record_tile(
                n_requests=len(tile), rows=sum(item.rows for item in tile)
            )
            with self._inflight_lock:
                self._inflight[tile_id] = tile
                self._idle.clear()
            if self._pool is not None:
                try:
                    self._pool.dispatch(
                        tile_id,
                        [(item.item.x, item.item.config) for item in tile],
                    )
                except Exception as exc:
                    self._on_tile_result(tile_id, None, exc)
            else:
                assert self._executor is not None
                try:
                    results = self._executor.execute(
                        [(item.item.x, item.item.config) for item in tile]
                    )
                except Exception as exc:
                    self._on_tile_result(tile_id, None, exc)
                else:
                    self._on_tile_result(tile_id, results, None)

    def _on_tile_result(
        self,
        tile_id: int,
        results: list[tuple[np.ndarray | None, Exception | None]] | None,
        error: Exception | None,
    ) -> None:
        """Resolve a tile: ``results`` holds per-request outcomes (errors are
        isolated per request), ``error`` fails the whole tile (dispatch
        failure, worker crash)."""
        with self._inflight_lock:
            tile = self._inflight.pop(tile_id, None)
            if not self._inflight:
                self._idle.set()
        if tile is None:  # pragma: no cover - duplicate report
            return
        now = time.monotonic()
        if error is not None:
            for pending in tile:
                self._fail(pending.item, error)
            return
        assert results is not None and len(results) == len(tile)
        for pending, (probabilities, request_error) in zip(tile, results):
            if request_error is not None:
                self._fail(pending.item, request_error)
                continue
            if not pending.item.future.set_running_or_notify_cancel():
                continue  # client cancelled while queued
            pending.item.future.set_result(
                PredictiveResult(sample_probabilities=probabilities)
            )
            self._stats.record_completion(now - pending.enqueued_at, rows=pending.rows)

    def _fail(self, request: _Request, error: Exception) -> None:
        if request.future.set_running_or_notify_cancel():
            request.future.set_exception(error)
        self._stats.record_failure()
