"""The asynchronous prediction front-end: submit requests, await futures.

``PredictionServer`` glues the serving subsystem together:

* clients call :meth:`~PredictionServer.submit` (thread-safe, returns a
  ``concurrent.futures.Future``) or the blocking convenience
  :meth:`~PredictionServer.predict`;
* a :class:`~repro.serve.microbatcher.MicroBatcher` pools requests into
  ``(S, batch)`` tiles under the ``max_batch_rows`` / ``max_wait_ms`` flush
  policy, with row-budget backpressure;
* the dispatcher thread hands tiles either to an inline
  :class:`~repro.serve.executor.TileExecutor` (``n_workers=0``; lowest
  latency, single process) or to a
  :class:`~repro.serve.worker.WorkerPool` of replica processes;
* each future resolves to the *exact* :class:`~repro.bnn.predict.PredictiveResult`
  a standalone ``mc_predict`` call with the same sampling configuration
  would return -- mean / entropy / per-sample probabilities included --
  regardless of how requests were pooled or which worker ran them;
* :meth:`~PredictionServer.stats` reports throughput, p50/p99 latency and
  the batch-occupancy histogram.

Failure semantics: a tile that raises fails only its own requests
(:class:`TileExecutionError`); a dead worker fails exactly its outstanding
tiles (:class:`WorkerCrashError`, never a hang); ``close(drain=True)``
finishes queued work first, ``close(drain=False)`` fails it fast with
:class:`ServerClosed`.

Hot model swap: constructed from a
:class:`~repro.serve.registry.ModelRegistry`, the server pins every request
to a ``(version, generation)`` at admission and serves it with exactly that
version's replica; :meth:`~PredictionServer.deploy` /
:meth:`~PredictionServer.rollback` atomically move the active pointer for
future requests only.  The HTTP boundary lives in
:mod:`repro.serve.gateway`.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from ..bnn.predict import PredictiveResult
from ..models.zoo import ReplicaSpec
from ..obs.trace import StageRecorder, TraceHandle, Tracer
from .executor import MultiVersionExecutor, SamplingConfig
from .microbatcher import MicroBatcher, PendingItem, QueueClosed
from .registry import Deployment, ModelRegistry, UnknownVersionError
from .shm_cache import SharedEpsilonStore
from .stats import ServerStats, StatsSnapshot
from ..distrib.respawn import RespawnPolicy
from .worker import WorkerCrashError, WorkerPool

__all__ = ["PredictionServer", "ServerConfig", "ServerClosed"]

#: Default for ``submit(trace=...)``: "no caller decision, begin one here".
#: Distinct from an explicit ``None``, which means the caller already made
#: the sampling decision (sampled out) and the request stays untraced.
_AUTO_TRACE = object()


class ServerClosed(RuntimeError):
    """Raised by ``submit`` after shutdown, and set on aborted futures."""


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of the serving front-end."""

    max_batch_rows: int = 64
    """Rows per tile; the flush threshold of the micro-batcher."""
    max_wait_ms: float = 2.0
    """Maximum time the oldest queued request waits before a partial flush."""
    max_pending_rows: int = 1024
    """Backpressure budget: ``submit`` blocks once this many rows are queued."""
    max_waiting: int | None = None
    """Bound on submitters blocked behind the row budget (the micro-batcher's
    priority waiting room).  ``None`` keeps it unbounded; a bound makes
    overload shed deterministically instead of queueing blocked threads."""
    n_workers: int = 0
    """``0`` executes tiles inline on the dispatcher thread; ``>=1`` shards
    tiles across that many replica processes."""
    start_method: str | None = None
    """Multiprocessing start method (``None``: fork where available)."""
    worker_respawns: int = 0
    """Total replacement workers the pool may spawn after crashes.  ``0``
    keeps the fail-fast semantics (a dead worker's tiles fail immediately);
    ``>= 1`` also re-queues a dead worker's in-flight tiles once before
    failing their futures -- retried tiles return byte-identical results
    because tile epsilons derive from the request's seed, not worker state."""
    max_cached_configs: int = 8
    """Epsilon-cache entries kept per executor (one per sampling config)."""
    latency_window: int = 4096
    """Recent-request window for the latency percentiles."""
    share_epsilon_sweeps: bool = True
    """Worker-pool mode only: materialise each ``(version, config)`` epsilon
    sweep once in the server process and publish it to the workers through
    ``multiprocessing.shared_memory`` -- N workers share one physical copy
    (sub-linear pool RSS) instead of regenerating N private ones.  Attach
    failures degrade silently to private materialisation, which is
    bit-identical by construction."""
    trace_ring: int = 512
    """Finished traces retained in the tracer's ring buffer."""
    trace_slowest: int = 16
    """Slowest-trace exemplars retained past ring eviction."""
    trace_sample_rate: float = 1.0
    """Fraction of requests traced (deterministic counter-based sampling;
    0 disables per-request tracing, as does ``REPRO_OBS=0``)."""

    def __post_init__(self) -> None:
        if self.n_workers < 0:
            raise ValueError("n_workers must be non-negative")
        if self.worker_respawns < 0:
            raise ValueError("worker_respawns must be non-negative")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be in [0, 1]")


@dataclass
class _Request:
    x: np.ndarray
    config: SamplingConfig
    future: Future
    rows: int
    version: str
    """Model version the request was pinned to at admission."""
    generation: int
    """Registry generation at admission (tags the response for operators)."""
    source: str | None = None
    """Connection/submitter identity, for cross-connection coalescing
    telemetry: a tile pooling several distinct sources proves separate
    sockets shared it."""
    trace: TraceHandle | None = None
    """The request's trace (None when tracing is off or sampled out).
    Carries spans only -- it can never influence result bytes."""


class PredictionServer:
    """Async micro-batching front-end over the batched Monte-Carlo engine.

    The server is constructed either from a bare
    :class:`~repro.models.zoo.ReplicaSpec` (single-model serving, the PR 3
    surface: the replica becomes version ``v1`` of an internal registry) or
    from a :class:`~repro.serve.registry.ModelRegistry` with a deployed
    active version (versioned serving with hot swap).

    Hot swap contract: every request is pinned to a ``(version, generation)``
    at :meth:`submit` time; :meth:`deploy` / :meth:`rollback` atomically move
    the *active* pointer for future requests while queued and in-flight
    requests finish on their pinned version's replica.  A swap ships the
    incoming version's replica to every execution site (inline executor or
    all pool workers -- respawned replacements rebuild it too) *before* the
    pointer moves, and invalidates the epsilon caches of every non-active
    version afterwards; previously loaded versions stay resident so
    ``rollback`` (and explicitly pinned canary requests) serve instantly.
    """

    def __init__(
        self,
        model_source: ReplicaSpec | ModelRegistry,
        config: ServerConfig | None = None,
    ) -> None:
        if isinstance(model_source, ModelRegistry):
            self._registry = model_source
        else:
            self._registry = ModelRegistry.single(model_source)
        self._config = config or ServerConfig()
        self._batcher: MicroBatcher[_Request] = MicroBatcher(
            max_batch_rows=self._config.max_batch_rows,
            max_wait_ms=self._config.max_wait_ms,
            max_pending_rows=self._config.max_pending_rows,
            max_waiting=self._config.max_waiting,
        )
        self._stats = ServerStats(latency_window=self._config.latency_window)
        # enabled resolves REPRO_OBS at construction time, so two servers
        # with different env settings can coexist in one process
        self.tracer = Tracer(
            ring_size=self._config.trace_ring,
            slowest_n=self._config.trace_slowest,
            sample_rate=self._config.trace_sample_rate,
        )
        self._tile_ids = itertools.count()
        self._executor: MultiVersionExecutor | None = None
        self._pool: WorkerPool | None = None
        self._dispatcher: threading.Thread | None = None
        self._inflight_lock = threading.Lock()
        self._inflight: dict[int, tuple[list[PendingItem[_Request]], float]] = {}
        # tile_id -> worker span payload, staged by the pool's trace_handler
        # just before the matching done message resolves the tile
        self._tile_spans: dict[int, dict] = {}
        # version control plane: which versions are loaded at the execution
        # sites, and how many admitted requests are pinned to each
        self._version_lock = threading.Lock()
        self._loaded: set[str] = set()
        self._pins: dict[str, int] = {}
        # shared epsilon sweeps (worker-pool mode): parent-owned segments,
        # published lazily per (version, config) from the dispatcher thread
        self._shm_store: SharedEpsilonStore | None = None
        self._published: set[tuple[str, SamplingConfig]] = set()
        self._shm_lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_model(
        cls,
        model,
        spec,
        config: ServerConfig | None = None,
        build_seed: int = 0,
    ) -> "PredictionServer":
        """Serve a live (e.g. freshly trained) model: capture it as a replica."""
        return cls(ReplicaSpec.capture(spec, model, build_seed=build_seed), config)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PredictionServer":
        """Build the executor (or fork the worker pool) and start dispatching."""
        if self._started:
            raise RuntimeError("server already started")
        active = self._registry.active
        if active is None:
            raise RuntimeError(
                "the model registry has no deployed version; call "
                "registry.deploy(version) before starting the server"
            )
        self._started = True
        initial = {active.version: self._registry.get(active.version).replica}
        self._loaded = set(initial)
        if self._config.n_workers:
            # fork the workers BEFORE any service thread exists
            respawn = (
                RespawnPolicy(max_respawns=self._config.worker_respawns)
                if self._config.worker_respawns
                else None
            )
            self._pool = WorkerPool(
                initial,
                n_workers=self._config.n_workers,
                result_handler=self._on_tile_result,
                max_cached_configs=self._config.max_cached_configs,
                start_method=self._config.start_method,
                respawn=respawn,
                fusion_handler=self._stats.record_fusion_events,
                trace_handler=self._store_tile_spans,
            )
            self._pool.start()
            if self._config.share_epsilon_sweeps:
                self._shm_store = SharedEpsilonStore()
        else:
            self._executor = MultiVersionExecutor(
                initial,
                max_cached_configs=self._config.max_cached_configs,
            )
        self._stats.reset_clock()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        self._dispatcher.start()
        return self

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def close(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Stop the server.

        ``drain=True`` completes everything already submitted before
        returning; ``drain=False`` fails queued (and, in worker mode,
        in-flight) requests with :class:`ServerClosed` /
        :class:`~repro.serve.worker.WorkerCrashError` as fast as possible.
        """
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        if not drain:
            for pending in self._batcher.cancel_pending():
                self._fail(pending.item, ServerClosed("server closed before execution"))
        self._batcher.close()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=timeout)
            self._dispatcher = None
        if drain:
            self._idle.wait(timeout=timeout)
        if self._pool is not None:
            self._pool.stop(abort=not drain)
            self._pool = None
        if self._shm_store is not None:
            self._shm_store.close()
            self._shm_store = None
            self._published.clear()
        # any trace still open at shutdown is closed as aborted, never leaked
        # (finish is idempotent, so racing owners are harmless)
        self.tracer.abort_open()

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(
        self,
        x: np.ndarray,
        sampling: SamplingConfig | None = None,
        block: bool = True,
        timeout: float | None = None,
        version: str | None = None,
        priority: int = 0,
        source: str | None = None,
        trace: "TraceHandle | None | object" = _AUTO_TRACE,
    ) -> Future:
        """Queue one prediction request; resolves to a ``PredictiveResult``.

        ``x`` is one request's input batch (first axis = rows).  Requests
        sharing a :class:`SamplingConfig` are pooled into tiles and replay
        one cached epsilon sweep.  Under backpressure the call blocks, or
        raises :class:`~repro.serve.microbatcher.QueueFull` when
        ``block=False`` / the timeout expires.

        ``version`` pins the request to a specific *loaded* model version
        (canary / pinned-client traffic); ``None`` pins it to the version
        active at this instant.  Either way the pin is immutable once
        admitted -- a concurrent :meth:`deploy` affects later submissions
        only.

        ``priority`` orders blocked submitters in the micro-batcher's
        waiting room (higher sheds last); ``source`` tags the request with
        its connection identity for the coalescing telemetry.  Neither can
        influence result bytes: tiles never split a request and epsilons
        derive from the request's own sampling config.

        ``trace`` adopts a caller-begun :class:`TraceHandle` (the gateway
        passes its admission-time handle).  Left at its default the server
        begins its own, subject to the tracer's kill switch and sample
        rate; an explicit ``None`` means the caller already made the
        sampling decision (sampled out) and the request stays untraced.
        Traces carry spans only and can never influence result bytes.
        """
        if not self._started:
            raise RuntimeError("server not started; call start() or use a with-block")
        # private copy: execution is deferred (queue, then tile), and a client
        # reusing its staging buffer must not mutate an in-flight request
        x = np.array(x)
        if x.ndim < 2:
            raise ValueError(
                "a request must be batched: expected (rows, ...) input, got "
                f"shape {x.shape}"
            )
        pinned_version, generation = self._admit(version)
        if trace is _AUTO_TRACE:
            handle = self.tracer.begin(
                kind="predict", version=pinned_version, rows=int(x.shape[0])
            )
        else:
            handle = trace
        request = _Request(
            x=x,
            config=sampling or SamplingConfig(),
            future=Future(),
            rows=int(x.shape[0]),
            version=pinned_version,
            generation=generation,
            source=source,
            trace=handle,
        )
        try:
            self._batcher.submit(
                request,
                rows=request.rows,
                block=block,
                timeout=timeout,
                priority=priority,
            )
        except QueueClosed:
            self._unpin(pinned_version)
            if handle is not None and not handle.deferred:
                handle.finish("aborted")
            raise ServerClosed("the server is shut down") from None
        except BaseException:
            self._unpin(pinned_version)
            if handle is not None and not handle.deferred:
                handle.finish("shed")
            raise
        return request.future

    def predict(
        self,
        x: np.ndarray,
        sampling: SamplingConfig | None = None,
        version: str | None = None,
    ) -> PredictiveResult:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(x, sampling=sampling, version=version).result()

    def stats(self) -> StatsSnapshot:
        """Throughput / latency / occupancy snapshot."""
        return self._stats.snapshot()

    @property
    def pending_rows(self) -> int:
        """Rows currently queued behind the micro-batcher (snapshot)."""
        return self._batcher.pending_rows

    @property
    def waiting_requests(self) -> int:
        """Submitters blocked in the priority waiting room (snapshot)."""
        return self._batcher.waiting_requests

    def drain_rate_rows_per_s(self) -> float | None:
        """Recent completed-rows/s; the gateway's ``Retry-After`` estimator."""
        return self._stats.drain_rate_rows_per_s()

    def flush_causes(self) -> dict[str, int]:
        """Microbatcher tile-flush counters by cause (rows/timeout/close)."""
        return self._batcher.flush_causes()

    # ------------------------------------------------------------------
    # version control plane (hot model swap)
    # ------------------------------------------------------------------
    @property
    def registry(self) -> ModelRegistry:
        """The model registry backing this server."""
        return self._registry

    def loaded_versions(self) -> list[str]:
        """Versions currently resident at the execution sites (sorted)."""
        with self._version_lock:
            return sorted(self._loaded)

    def active_deployment(self) -> Deployment:
        """The registry's current deployment."""
        active = self._registry.active
        assert active is not None  # enforced by start()
        return active

    def resolve_version(self, version: str | None = None) -> tuple[str, int]:
        """Resolve ``(version, generation)`` at this instant, without pinning.

        The gateway uses this to *report* the pin it is about to request; the
        authoritative (atomic) admission happens inside :meth:`submit`, which
        re-validates the explicit version under the same lock that guards
        :meth:`retire_version`.  An explicit version must be registered *and*
        loaded.
        """
        with self._version_lock:
            return self._resolve_locked(version)

    def _resolve_locked(self, version: str | None) -> tuple[str, int]:
        pinned, generation = self._registry.resolve(version)
        if version is not None and pinned not in self._loaded:
            raise UnknownVersionError(
                f"model version {version!r} is registered but not "
                "loaded; deploy it or call load_version() first"
            )
        return pinned, generation

    def _admit(self, version: str | None) -> tuple[str, int]:
        """Atomically resolve a request's pin AND count it as in flight.

        One lock acquisition covers the loaded-check and the pin increment,
        so :meth:`retire_version` (which refuses while pins exist, under the
        same lock) can never unload a version between a request's admission
        check and its pin.
        """
        with self._version_lock:
            pinned, generation = self._resolve_locked(version)
            self._pins[pinned] = self._pins.get(pinned, 0) + 1
            return pinned, generation

    def load_version(self, version: str) -> None:
        """Make a registered version resident without activating it.

        Canary workflow: load ``v2``, steer pinned traffic at it with
        ``submit(..., version="v2")``, then :meth:`deploy` once satisfied.
        """
        if not self._started or self._closed:
            raise RuntimeError("the server is not running")
        self._ensure_loaded(version)

    def _ensure_loaded(self, version: str) -> None:
        replica = self._registry.get(version).replica
        with self._version_lock:
            if version in self._loaded:
                return
            if self._pool is not None:
                # shipping to workers is a cheap queue put; the build cost is
                # paid inside each worker without blocking admissions here
                self._pool.load_version(version, replica)
                self._loaded.add(version)
                return
        # inline: building the replica is the expensive part -- do it OUTSIDE
        # the version lock so admissions and completions (which take the lock
        # to pin/unpin) keep flowing during a multi-second build
        assert self._executor is not None
        self._executor.load(version, replica)
        with self._version_lock:
            self._loaded.add(version)

    def deploy(self, version: str) -> Deployment:
        """Hot-swap the active version; in-flight requests keep their pin.

        Ordering inside the swap: the incoming replica is shipped to every
        execution site *before* the registry pointer moves (per-worker task
        queues are FIFO, so a request pinned after the swap can only reach a
        worker that has already applied the load), and every *other* loaded
        version's epsilon cache is invalidated after it.  Returns the new
        :class:`~repro.serve.registry.Deployment`.
        """
        if not self._started or self._closed:
            raise RuntimeError("the server is not running")
        # pre-load outside the version lock (inline replica builds are slow);
        # _swap_locked keeps a load fallback for the rare concurrent retire
        self._ensure_loaded(version)
        with self._version_lock:
            return self._swap_locked(version, lambda: self._registry.deploy(version))

    def rollback(self) -> Deployment:
        """Swap back to the previously active version (a new generation)."""
        if not self._started or self._closed:
            raise RuntimeError("the server is not running")
        with self._version_lock:
            target = self._registry.rollback_target
            if target is None:
                # delegate the error to the registry for a consistent exception
                return self._registry.rollback()
            return self._swap_locked(target, self._registry.rollback)

    def _swap_locked(self, version: str, registry_op) -> Deployment:
        """Load ``version`` everywhere, swap the registry, invalidate caches."""
        replica = self._registry.get(version).replica
        if version not in self._loaded:
            if self._pool is not None:
                self._pool.load_version(version, replica)
            else:
                assert self._executor is not None
                self._executor.load(version, replica)
            self._loaded.add(version)
        deployment = registry_op()
        # swap invalidation: cold versions keep their replicas (rollback
        # and pinned traffic stay instant) but drop their cached epsilon
        # sweeps -- they regenerate deterministically on the next request
        for other in self._loaded - {version}:
            self._drop_shared_sweeps(other)
            if self._pool is not None:
                self._pool.invalidate_version(other)
            else:
                assert self._executor is not None
                self._executor.invalidate(other)
        return deployment

    def retire_version(self, version: str) -> None:
        """Unload a version from every execution site and free its caches.

        Refused while the version is active, is the rollback target, or has
        admitted requests still in flight -- retiring must never lose a
        pinned request.  The registration itself is kept: a later
        :meth:`deploy` reloads the version.
        """
        if not self._started or self._closed:
            raise RuntimeError("the server is not running")
        self._registry.get(version)  # unknown names are an error, not a no-op
        with self._version_lock:
            active = self._registry.active
            if active is not None and active.version == version:
                raise ValueError(f"cannot retire the active version {version!r}")
            if self._registry.rollback_target == version:
                raise ValueError(
                    f"cannot retire the rollback target {version!r}; deploy "
                    "another version first"
                )
            if self._pins.get(version):
                raise RuntimeError(
                    f"version {version!r} still has {self._pins[version]} "
                    "requests in flight; retry once they drain"
                )
            if version not in self._loaded:
                return
            self._drop_shared_sweeps(version)
            if self._pool is not None:
                self._pool.unload_version(version)
            else:
                assert self._executor is not None
                self._executor.unload(version)
            self._loaded.discard(version)

    def _unpin(self, version: str) -> None:
        with self._version_lock:
            count = self._pins.get(version, 0) - 1
            if count > 0:
                self._pins[version] = count
            else:
                self._pins.pop(version, None)

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            tile = self._batcher.next_tile()
            if tile is None:
                return
            tile_id = next(self._tile_ids)
            sources = {
                item.item.source for item in tile if item.item.source is not None
            }
            self._stats.record_tile(
                n_requests=len(tile),
                rows=sum(item.rows for item in tile),
                sources=len(sources) or None,
            )
            dispatched_at = time.monotonic()
            traced = any(item.item.trace is not None for item in tile)
            with self._inflight_lock:
                self._inflight[tile_id] = (tile, dispatched_at)
                self._idle.clear()
            requests = [
                (item.item.x, item.item.config, item.item.version) for item in tile
            ]
            if self._pool is not None:
                self._publish_sweeps(requests)
                try:
                    self._pool.dispatch(tile_id, requests, traced=traced)
                except Exception as exc:
                    self._on_tile_result(tile_id, None, exc)
            else:
                assert self._executor is not None
                recorder = StageRecorder() if traced else None
                if recorder is not None:
                    self._executor.attach_stage_recorder(recorder)
                try:
                    results = self._executor.execute(requests)
                except Exception as exc:
                    results, error = None, exc
                else:
                    error = None
                if recorder is not None:
                    self._executor.attach_stage_recorder(None)
                    self._store_tile_spans(
                        tile_id, {"rank": None, "spans": recorder.drain()}
                    )
                self._on_tile_result(tile_id, results, error)
                events = self._executor.consume_fusion_events()
                if events:
                    self._stats.record_fusion_events(events)

    def _publish_sweeps(self, requests) -> None:
        """Publish any not-yet-shared ``(version, config)`` sweep (pool mode).

        Runs on the dispatcher thread before the tile ships, so a worker's
        first tile for a config usually finds the attachment already in its
        FIFO queue.  Failures are swallowed: shared sweeps are an RSS/latency
        optimisation, and every worker regenerates identical bytes privately.
        """
        if self._shm_store is None or self._pool is None:
            return
        with self._shm_lock:
            for _, config, version in requests:
                key = (version, config)
                if key in self._published:
                    continue
                try:
                    shapes = self._registry.get(version).replica.spec.weight_shapes()
                    descriptor = self._shm_store.publish(version, config, shapes)
                    self._pool.publish_sweep(descriptor)
                except Exception:  # pragma: no cover - degraded-mode fallback
                    pass
                # failed keys are recorded too: re-trying every tile would
                # turn a persistent failure into per-tile overhead
                self._published.add(key)

    def _drop_shared_sweeps(self, version: str) -> None:
        """Unlink ``version``'s shared segments (deploy/rollback/retire)."""
        with self._shm_lock:
            if self._shm_store is not None:
                self._shm_store.invalidate(version)
            self._published = {
                key for key in self._published if key[0] != version
            }

    def _store_tile_spans(self, tile_id: int, payload: dict) -> None:
        """Stage a tile's worker span payload (pool trace_handler callback).

        The pool invokes this from the collector thread right before the
        matching done message resolves the tile, so the spans are available
        when :meth:`_on_tile_result` attaches them to each request's trace.
        """
        with self._inflight_lock:
            self._tile_spans[tile_id] = payload

    @staticmethod
    def _trace_status(error: Exception) -> str:
        """Map a failure to a trace status: crash/shutdown aborts, else error."""
        if isinstance(error, (WorkerCrashError, ServerClosed)):
            return "aborted"
        return "error"

    def _close_request_trace(
        self,
        pending: PendingItem[_Request],
        dispatched_at: float,
        finished_at: float,
        tile_id: int,
        worker_payload: dict | None,
        status: str,
    ) -> None:
        """Attach the execution spans to one request's trace and close it.

        Deferred traces (the gateway's) get their spans here but are
        finished by their owner after the response is serialized;
        server-owned traces finish immediately.
        """
        handle = pending.item.trace
        if handle is None:
            return
        rank = worker_payload.get("rank") if worker_payload else None
        handle.add_span(
            "queue_wait", pending.enqueued_at, dispatched_at, tile=tile_id
        )
        handle.add_span(
            "execute",
            dispatched_at,
            finished_at,
            status=status,
            tile=tile_id,
            worker=rank,
        )
        if worker_payload:
            for span in worker_payload.get("spans", ()):
                meta = span.get("meta") or {}
                handle.add_span(
                    span["name"],
                    span["start_s"],
                    span["end_s"],
                    status=span.get("status", "ok"),
                    parent="execute",
                    **meta,
                )
        if not handle.deferred:
            handle.finish(status)

    def _on_tile_result(
        self,
        tile_id: int,
        results: list[tuple[np.ndarray | None, Exception | None]] | None,
        error: Exception | None,
    ) -> None:
        """Resolve a tile: ``results`` holds per-request outcomes (errors are
        isolated per request), ``error`` fails the whole tile (dispatch
        failure, worker crash)."""
        with self._inflight_lock:
            entry = self._inflight.pop(tile_id, None)
            worker_payload = self._tile_spans.pop(tile_id, None)
            if not self._inflight:
                self._idle.set()
        if entry is None:  # pragma: no cover - duplicate report
            return
        tile, dispatched_at = entry
        now = time.monotonic()
        if error is not None:
            status = self._trace_status(error)
            for pending in tile:
                self._close_request_trace(
                    pending, dispatched_at, now, tile_id, worker_payload, status
                )
                self._fail(pending.item, error)
            return
        assert results is not None and len(results) == len(tile)
        for pending, (probabilities, request_error) in zip(tile, results):
            if request_error is not None:
                self._close_request_trace(
                    pending,
                    dispatched_at,
                    now,
                    tile_id,
                    worker_payload,
                    self._trace_status(request_error),
                )
                self._fail(pending.item, request_error)
                continue
            self._unpin(pending.item.version)
            self._close_request_trace(
                pending, dispatched_at, now, tile_id, worker_payload, "ok"
            )
            if not pending.item.future.set_running_or_notify_cancel():
                continue  # client cancelled while queued
            pending.item.future.set_result(
                PredictiveResult(sample_probabilities=probabilities)
            )
            self._stats.record_completion(
                now - pending.enqueued_at,
                rows=pending.rows,
                version=pending.item.version,
            )

    def _fail(self, request: _Request, error: Exception) -> None:
        self._unpin(request.version)
        if request.future.set_running_or_notify_cancel():
            request.future.set_exception(error)
        self._stats.record_failure(version=request.version)
        handle = request.trace
        if handle is not None and not handle.deferred:
            handle.finish(self._trace_status(error))
