"""Generation-tagged model registry: versioned replicas with atomic swap.

Rolling a model version in a live serving system has one hard requirement in
this codebase: the bit-exactness contract must hold *per version*.  A request
answered during a rollout must be byte-identical to a standalone
``mc_predict`` on **the version it was pinned to**, never a blend of old and
new weights.  The registry is the piece that makes the pinning well defined:

* every version is an immutable :class:`ModelVersion` -- a name, a picklable
  :class:`~repro.models.zoo.ReplicaSpec` and its content
  :meth:`~repro.models.zoo.ReplicaSpec.fingerprint`.  Re-registering a name
  with different bytes is a :class:`VersionConflictError` (version names are
  identities, not mutable slots);
* :meth:`ModelRegistry.deploy` atomically swaps the **active** version and
  bumps the monotonically increasing *generation* counter.  Requests resolve
  ``(version, generation)`` once, at admission, and carry the pin through
  queueing and execution -- a swap never retroactively changes what an
  in-flight request is served with;
* :meth:`ModelRegistry.rollback` swaps back to the previously active version
  (itself a new generation, so the deploy history stays an append-only log).

The registry is deliberately free of execution machinery: the
:class:`~repro.serve.server.PredictionServer` layers replica loading, epsilon
-cache invalidation and worker reload on top of these primitives, and the
HTTP gateway exposes them at ``/models``.

A registry may be **persistent**: constructed via :meth:`ModelRegistry.open`
with a directory, it writes every registration (replica bytes, via the
:mod:`repro.bnn.serialization` replica-archive format) and every
deploy/rollback (the state manifest) through to disk, and restores the full
version set, active pointer, generation counter and deploy history on the
next open -- so a gateway restart resumes exactly where the previous process
stopped, with every replica verified fingerprint-identical on load.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..models.zoo import ReplicaSpec

__all__ = [
    "ModelRegistry",
    "ModelVersion",
    "Deployment",
    "DEFAULT_VERSION",
    "UnknownVersionError",
    "VersionConflictError",
    "RollbackUnavailableError",
    "RegistryPersistenceError",
]

#: Manifest format of a persisted registry directory (``state.json``).
_STATE_VERSION = 1

#: Version name a bare ``ReplicaSpec`` is registered under when a caller uses
#: the single-model convenience constructors (the pre-registry API surface).
DEFAULT_VERSION = "v1"


class UnknownVersionError(KeyError):
    """The named version is not registered (or not loaded, where required)."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it readable
        return self.args[0] if self.args else ""


class VersionConflictError(ValueError):
    """A version name was re-registered with different replica contents."""


class RollbackUnavailableError(RuntimeError):
    """``rollback`` was requested but no previously active version exists."""


class RegistryPersistenceError(RuntimeError):
    """A persisted registry directory is unreadable or fails verification."""


@dataclass(frozen=True)
class ModelVersion:
    """One immutable registered version: name, replica recipe, content hash."""

    version: str
    replica: "ReplicaSpec" = field(repr=False)
    fingerprint: str

    @property
    def short_fingerprint(self) -> str:
        """First 12 hex digits -- the human-facing form used in listings."""
        return self.fingerprint[:12]


@dataclass(frozen=True)
class Deployment:
    """One entry of the append-only deploy log (and the active pointer)."""

    version: str
    generation: int
    deployed_at: float
    rolled_back: bool = False
    """Whether this deployment was produced by ``rollback`` (cosmetic)."""


class ModelRegistry:
    """Thread-safe versioned replica store with an atomic active pointer.

    All mutation happens under one lock, so readers observe either the state
    before a swap or after it -- never a half-applied deploy.  The generation
    counter increments on every successful ``deploy``/``rollback``; it tags
    responses so operators can correlate served traffic with rollout events.
    """

    def __init__(
        self, clock=time.time, persist_dir: str | Path | None = None
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._versions: dict[str, ModelVersion] = {}
        self._active: Deployment | None = None
        self._previous: str | None = None
        self._history: list[Deployment] = []
        self._persist_dir = None if persist_dir is None else Path(persist_dir)
        # version name -> relative archive path (persistent registries only);
        # index-named files keep arbitrary version strings filesystem-safe
        self._version_files: dict[str, str] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def single(
        cls, replica: "ReplicaSpec", version: str = DEFAULT_VERSION
    ) -> "ModelRegistry":
        """A registry holding one registered *and deployed* version.

        This is how the pre-registry ``PredictionServer(replica)`` surface is
        kept working: a bare replica becomes version ``v1``, already active.
        """
        registry = cls()
        registry.register(version, replica)
        registry.deploy(version)
        return registry

    @classmethod
    def open(cls, persist_dir: str | Path, clock=time.time) -> "ModelRegistry":
        """A write-through persistent registry rooted at ``persist_dir``.

        An existing directory is restored: every archived replica is loaded
        and verified against its recorded fingerprint, and the active
        pointer, generation counter and deploy history continue exactly
        where the previous process left them.  A fresh directory starts an
        empty registry that persists from the first ``register`` on.
        """
        registry = cls(clock=clock, persist_dir=persist_dir)
        registry._restore()
        return registry

    @property
    def persist_dir(self) -> Path | None:
        """Where this registry persists, if anywhere."""
        return self._persist_dir

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _state_path(self) -> Path:
        assert self._persist_dir is not None
        return self._persist_dir / "state.json"

    def _restore(self) -> None:
        from ..bnn.serialization import CheckpointMismatchError, load_replica

        state_path = self._state_path()
        if not state_path.exists():
            self._persist_dir.mkdir(parents=True, exist_ok=True)
            return
        try:
            state = json.loads(state_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryPersistenceError(
                f"unreadable registry state at {state_path}: {exc}"
            ) from exc
        if state.get("format_version") != _STATE_VERSION:
            raise RegistryPersistenceError(
                f"unsupported registry state version "
                f"{state.get('format_version')!r} at {state_path}"
            )
        for record in state.get("versions", []):
            version = record["version"]
            archive = self._persist_dir / record["file"]
            try:
                replica = load_replica(archive)
            except (OSError, CheckpointMismatchError) as exc:
                raise RegistryPersistenceError(
                    f"cannot restore version {version!r} from {archive}: {exc}"
                ) from exc
            fingerprint = replica.fingerprint()
            if fingerprint != record["fingerprint"]:
                raise RegistryPersistenceError(
                    f"version {version!r} restored from {archive} fingerprints "
                    f"{fingerprint[:12]}, state.json recorded "
                    f"{record['fingerprint'][:12]}"
                )
            self._versions[version] = ModelVersion(
                version=version, replica=replica, fingerprint=fingerprint
            )
            self._version_files[version] = record["file"]
        self._history = [
            Deployment(**record) for record in state.get("history", [])
        ]
        active = state.get("active")
        self._active = None if active is None else Deployment(**active)
        self._previous = state.get("previous")
        if self._active is not None and self._active.version not in self._versions:
            raise RegistryPersistenceError(
                f"active version {self._active.version!r} has no archived replica"
            )

    def _persist_version_locked(self, entry: ModelVersion) -> None:
        from ..bnn.serialization import save_replica

        assert self._persist_dir is not None
        relative = f"versions/{len(self._version_files):04d}.npz"
        save_replica(entry.replica, self._persist_dir / relative)
        self._version_files[entry.version] = relative

    def _write_state_locked(self) -> None:
        assert self._persist_dir is not None
        state = {
            "format_version": _STATE_VERSION,
            "versions": [
                {
                    "version": version,
                    "file": self._version_files[version],
                    "fingerprint": entry.fingerprint,
                }
                for version, entry in self._versions.items()
            ],
            "active": None if self._active is None else asdict(self._active),
            "previous": self._previous,
            "history": [asdict(deployment) for deployment in self._history],
        }
        state_path = self._state_path()
        state_path.parent.mkdir(parents=True, exist_ok=True)
        # atomic replace so a crash mid-write never corrupts the manifest
        tmp_path = state_path.with_name(state_path.name + ".tmp")
        tmp_path.write_text(json.dumps(state, indent=2), encoding="utf-8")
        os.replace(tmp_path, state_path)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, version: str, replica: "ReplicaSpec") -> ModelVersion:
        """Add a version; idempotent for identical contents.

        Registering an existing name with the same fingerprint returns the
        existing entry (safe retries); a different fingerprint raises
        :class:`VersionConflictError` -- roll forward with a new name instead
        of mutating history.
        """
        if not version or not isinstance(version, str):
            raise ValueError("a version name must be a non-empty string")
        fingerprint = replica.fingerprint()
        with self._lock:
            existing = self._versions.get(version)
            if existing is not None:
                if existing.fingerprint == fingerprint:
                    return existing
                raise VersionConflictError(
                    f"version {version!r} is already registered with different "
                    f"contents ({existing.short_fingerprint} != "
                    f"{fingerprint[:12]}); register the new model under a new "
                    "version name"
                )
            entry = ModelVersion(
                version=version, replica=replica, fingerprint=fingerprint
            )
            self._versions[version] = entry
            if self._persist_dir is not None:
                self._persist_version_locked(entry)
                self._write_state_locked()
            return entry

    def get(self, version: str) -> ModelVersion:
        """Look up a registered version or raise :class:`UnknownVersionError`."""
        with self._lock:
            return self._get_locked(version)

    def _get_locked(self, version: str) -> ModelVersion:
        entry = self._versions.get(version)
        if entry is None:
            raise UnknownVersionError(
                f"unknown model version {version!r}; registered: "
                f"{sorted(self._versions)}"
            )
        return entry

    def versions(self) -> list[ModelVersion]:
        """All registered versions in registration order."""
        with self._lock:
            return list(self._versions.values())

    def __contains__(self, version: str) -> bool:
        with self._lock:
            return version in self._versions

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    @property
    def active(self) -> Deployment | None:
        """The current deployment (``None`` before the first deploy)."""
        with self._lock:
            return self._active

    @property
    def generation(self) -> int:
        """The current generation (0 before the first deploy)."""
        with self._lock:
            return self._active.generation if self._active else 0

    @property
    def rollback_target(self) -> str | None:
        """The version ``rollback`` would re-activate, if any."""
        with self._lock:
            return self._previous

    def history(self) -> list[Deployment]:
        """The append-only deploy log, oldest first."""
        with self._lock:
            return list(self._history)

    def deploy(self, version: str) -> Deployment:
        """Atomically make ``version`` the active one; returns the deployment.

        Deploying the already-active version is a no-op returning the current
        deployment (idempotent rollout scripts).  The swap is a single pointer
        update under the lock: a concurrent ``resolve`` observes either the
        old or the new ``(version, generation)`` pair, never a mix.
        """
        with self._lock:
            entry = self._get_locked(version)
            if self._active is not None and self._active.version == version:
                return self._active
            return self._activate_locked(entry.version, rolled_back=False)

    def rollback(self) -> Deployment:
        """Swap back to the previously active version (a new generation)."""
        with self._lock:
            if self._previous is None:
                raise RollbackUnavailableError(
                    "no previously active version to roll back to"
                )
            return self._activate_locked(self._previous, rolled_back=True)

    def _activate_locked(self, version: str, rolled_back: bool) -> Deployment:
        generation = (self._active.generation if self._active else 0) + 1
        self._previous = self._active.version if self._active else None
        deployment = Deployment(
            version=version,
            generation=generation,
            deployed_at=self._clock(),
            rolled_back=rolled_back,
        )
        self._active = deployment
        self._history.append(deployment)
        if self._persist_dir is not None:
            self._write_state_locked()
        return deployment

    def resolve(self, version: str | None = None) -> tuple[str, int]:
        """Pin a request: ``(version, generation)`` at this instant.

        ``None`` resolves to the active version.  An explicit version must be
        registered; the returned generation is always the registry's current
        one, so responses tag which rollout state admitted the request.
        """
        with self._lock:
            if self._active is None:
                raise RollbackUnavailableError("no version has been deployed yet")
            if version is None:
                return self._active.version, self._active.generation
            self._get_locked(version)
            return version, self._active.generation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            active = self._active.version if self._active else None
            return (
                f"ModelRegistry({len(self._versions)} versions, "
                f"active={active!r}, generation="
                f"{self._active.generation if self._active else 0})"
            )
