"""Shared-memory epsilon sweeps: materialise once, attach everywhere.

Without this module every pool worker privately materialises identical
``(S, *weight_shape)`` epsilon sweeps per :class:`SamplingConfig` -- the
generator-bank kernel work is redundant and, worse, the worker-pool RSS
grows linearly with the worker count.  Here the *server* (parent process)
materialises each ``(version, config)`` sweep exactly once -- through the
same :func:`~repro.serve.executor.materialize_epsilon_sweep` the in-process
cache uses, so the bytes are interchangeable -- into one
:mod:`multiprocessing.shared_memory` segment, and workers attach it
read-only.  N workers then share one physical copy (sub-linear RSS), and a
worker's first request for a known config skips the generation sweep
entirely.

Ownership and crash safety
--------------------------

The parent :class:`SharedEpsilonStore` is the sole owner: it creates,
publishes and **unlinks** every segment.  Workers only ever map existing
segments, and :func:`attach_sweep` immediately deregisters the attachment
from the stdlib ``resource_tracker`` (Python registers attach-side too,
which would otherwise unlink the parent's live segment when any worker
exits).  A crashed worker therefore cannot leak or destroy a segment: its
mapping dies with the process, and the name always remains the parent's to
unlink.  ``invalidate`` (called on deploy/rollback, mirroring
``EpsilonCache.clear``) unlinks a version's segments; already-attached
workers keep their mapped pages alive until they detach (Linux
unlink-while-mapped semantics), while fresh attaches fail fast and fall
back to private materialisation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Sequence

import numpy as np

from .executor import SamplingConfig, materialize_epsilon_sweep

__all__ = [
    "SweepDescriptor",
    "SharedEpsilonStore",
    "ShmAttachment",
    "attach_sweep",
    "sweep_nbytes",
]

_ALIGN = 64  # per-layer offsets are cache-line aligned


def _layer_nbytes(shape: tuple[int, ...], n_samples: int) -> int:
    return int(np.prod((n_samples,) + tuple(shape))) * np.dtype(np.float64).itemsize


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def sweep_nbytes(shapes: Sequence[tuple[int, ...]], n_samples: int) -> int:
    """Total segment size for a sweep of ``shapes`` at ``n_samples``."""
    offset = 0
    for shape in shapes:
        offset = _aligned(offset) + _layer_nbytes(tuple(shape), n_samples)
    return max(offset, 1)


def _unlink_segment(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink a parent-owned segment with balanced tracker books.

    Under the ``fork`` start method every process shares one resource
    tracker, so an attacher's deregistration (see :class:`ShmAttachment`)
    also removes the creator's entry; re-registering first keeps the
    tracker's cache balanced across ``unlink``'s own deregistration.
    """
    try:
        resource_tracker.register(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker impl details vary
        pass
    shm.close()
    shm.unlink()


def _layer_offsets(
    shapes: Sequence[tuple[int, ...]], n_samples: int
) -> list[int]:
    offsets = []
    offset = 0
    for shape in shapes:
        offset = _aligned(offset)
        offsets.append(offset)
        offset += _layer_nbytes(tuple(shape), n_samples)
    return offsets


@dataclass(frozen=True)
class SweepDescriptor:
    """Everything a worker needs to attach one published sweep.

    Pickles across the task queue; ``generation`` increases monotonically
    per store publish, so a re-published ``(version, config)`` after an
    invalidation is distinguishable from the sweep it replaced.
    """

    version: str
    config: SamplingConfig
    segment: str
    shapes: tuple[tuple[int, ...], ...]
    nbytes: int
    generation: int

    def key(self) -> tuple[str, SamplingConfig]:
        return (self.version, self.config)


class SharedEpsilonStore:
    """Parent-side owner of the shared epsilon segments (create + unlink)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._segments: dict[
            tuple[str, SamplingConfig],
            tuple[shared_memory.SharedMemory, SweepDescriptor],
        ] = {}
        self._generation = 0
        self._closed = False

    # ------------------------------------------------------------------
    def publish(
        self,
        version: str,
        config: SamplingConfig,
        shapes: Sequence[tuple[int, ...]],
    ) -> SweepDescriptor:
        """Materialise (once) and publish the sweep for ``(version, config)``.

        Idempotent per key: a second publish returns the existing
        descriptor.  The epsilons come from
        :func:`materialize_epsilon_sweep`, i.e. they are byte-for-byte what
        any executor would generate privately.
        """
        key = (version, config)
        with self._lock:
            if self._closed:
                raise RuntimeError("the shared epsilon store is closed")
            existing = self._segments.get(key)
            if existing is not None:
                return existing[1]
        shapes = tuple(tuple(int(dim) for dim in shape) for shape in shapes)
        epsilons = materialize_epsilon_sweep(shapes, config)
        nbytes = sweep_nbytes(shapes, config.n_samples)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        try:
            for eps, offset in zip(
                epsilons, _layer_offsets(shapes, config.n_samples)
            ):
                view = np.ndarray(
                    eps.shape, dtype=np.float64, buffer=shm.buf, offset=offset
                )
                view[...] = eps
                del view
            with self._lock:
                if self._closed:
                    raise RuntimeError("the shared epsilon store is closed")
                racing = self._segments.get(key)
                if racing is not None:
                    descriptor = racing[1]
                else:
                    self._generation += 1
                    descriptor = SweepDescriptor(
                        version=version,
                        config=config,
                        segment=shm.name,
                        shapes=shapes,
                        nbytes=nbytes,
                        generation=self._generation,
                    )
                    self._segments[key] = (shm, descriptor)
                    return descriptor
        except BaseException:
            _unlink_segment(shm)
            raise
        # lost a publish race (or store closed underneath): discard ours
        _unlink_segment(shm)
        return descriptor

    # ------------------------------------------------------------------
    def descriptors(self) -> list[SweepDescriptor]:
        """Descriptors of every currently published sweep."""
        with self._lock:
            return [descriptor for _, descriptor in self._segments.values()]

    def invalidate(self, version: str) -> int:
        """Unlink every segment of ``version``; returns how many were dropped.

        Mirrors ``EpsilonCache.clear``: safe at any time because sweeps are
        a pure function of (config, layer schedule).  Workers already
        attached keep their mapped pages; new attaches fail fast and fall
        back to private materialisation.
        """
        with self._lock:
            keys = [key for key in self._segments if key[0] == version]
            dropped = [self._segments.pop(key) for key in keys]
        for shm, _ in dropped:
            _unlink_segment(shm)
        return len(dropped)

    def close(self) -> None:
        """Unlink every segment (idempotent); the store refuses new publishes."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            dropped = list(self._segments.values())
            self._segments.clear()
        for shm, _ in dropped:
            _unlink_segment(shm)

    def __enter__(self) -> "SharedEpsilonStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShmAttachment:
    """A worker-side, read-only, refcounted mapping of one published sweep.

    ``epsilons`` are non-writeable numpy views straight into the shared
    segment -- :class:`~repro.serve.executor.PrecomputedEpsilonSampler`
    only ever reads them.  ``acquire``/``release`` count users (the initial
    attachment holds one reference); the mapping closes when the count
    reaches zero.  If numpy views are still referenced elsewhere at that
    point the unmap is deferred to process exit (the OS reclaims it) --
    never an error, never a leaked *name*, since unlinking is exclusively
    the parent store's job.
    """

    def __init__(self, descriptor: SweepDescriptor) -> None:
        self.descriptor = descriptor
        shm = shared_memory.SharedMemory(name=descriptor.segment, create=False)
        # Python's resource tracker registers attach-side shared memory and
        # would unlink the parent's live segment when this process exits;
        # attachments must not own the name.
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker impl details vary
            pass
        self._shm = shm
        views = []
        offsets = _layer_offsets(descriptor.shapes, descriptor.config.n_samples)
        for shape, offset in zip(descriptor.shapes, offsets):
            view = np.ndarray(
                (descriptor.config.n_samples,) + shape,
                dtype=np.float64,
                buffer=shm.buf,
                offset=offset,
            )
            view.flags.writeable = False
            views.append(view)
        self._views: list[np.ndarray] | None = views
        self._refcount = 1
        self._lock = threading.Lock()

    @property
    def epsilons(self) -> list[np.ndarray]:
        """The per-layer read-only epsilon views (sampler-ready)."""
        with self._lock:
            if self._views is None:
                raise RuntimeError("attachment is closed")
            return list(self._views)

    @property
    def refcount(self) -> int:
        with self._lock:
            return self._refcount

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._views is None

    def acquire(self) -> "ShmAttachment":
        """Register one more user of the mapping."""
        with self._lock:
            if self._views is None:
                raise RuntimeError("attachment is closed")
            self._refcount += 1
        return self

    def release(self) -> bool:
        """Drop one user; closes the mapping at zero.  Returns ``closed?``."""
        with self._lock:
            if self._views is None:
                return True
            self._refcount -= 1
            if self._refcount > 0:
                return False
        self.close()
        return True

    def close(self) -> None:
        """Drop the views and unmap (idempotent; deferred if views escaped)."""
        with self._lock:
            if self._views is None:
                return
            self._views = None
            self._refcount = 0
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - caller kept a view alive
            # numpy views into the buffer still exist somewhere; the mapping
            # is reclaimed at process exit instead.  Not a segment leak: the
            # name is the parent's to unlink.
            pass


def attach_sweep(descriptor: SweepDescriptor) -> ShmAttachment:
    """Attach a published sweep read-only (raises ``FileNotFoundError`` when
    the parent has already invalidated it)."""
    return ShmAttachment(descriptor)
