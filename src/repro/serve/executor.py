"""Tile execution: run pooled requests through the batched MC engine.

Bit-exactness contract
----------------------

A served request must produce *exactly* the bytes that a standalone
``mc_predict(model, x, **config)`` call would -- that is what lets clients
migrate to the server without revalidating anything.  Two observations make
that cheap:

1. The epsilon tensors a prediction consumes are a pure function of the
   sampling configuration (seed, ``n_samples``, stride, LFSR width) and of
   the network's static layer schedule -- **not** of the input.  Requests
   sharing a configuration therefore consume *identical* epsilons, and the
   expensive generator-bank kernel work can be paid once and cached
   (:class:`EpsilonCache`), then replayed into the unchanged layer code
   through a :class:`PrecomputedEpsilonSampler`.
2. Each request's forward math must see byte-identical operand matrices to
   its standalone call.  PR 3 guaranteed that by running one
   :func:`~repro.bnn.predict.mc_forward` per pooled request; this executor
   additionally *fuses* same-config requests into one folded forward --
   gated by the runtime row-stability proof in
   :mod:`repro.core.stability`.  Inside a fused tile every GEMM routes
   through the ``fused_sample_matmul`` / ``fused_im2col`` dispatch points:
   shape classes the probe proves row-stable run as one whole-tile GEMM,
   every other class is recomputed per request block from fresh contiguous
   operands (bit-exact by construction).  Where the probe verdict (or
   ``REPRO_FUSED=0``) blocks fusion, the per-request path runs and the
   fallback is *counted*, never silent (``consume_fusion_events`` feeds
   ``ServerStats``).

The executor also reuses one output scratch buffer per result shape (the
``out=`` path of :func:`mc_forward`), so steady-state serving performs no
per-tile softmax allocations.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..bnn.predict import mc_forward
from ..core import stability
from ..core.checkpoint import StreamBank
from ..core.sampler import BatchedWeightSampler, SampledWeightsBatch
from ..core.streams import StreamOrderError
from .registry import UnknownVersionError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..bnn.model import BayesianNetwork
    from ..models.zoo import ReplicaSpec

__all__ = [
    "SamplingConfig",
    "EpsilonCache",
    "PrecomputedEpsilonSampler",
    "TileExecutor",
    "MultiVersionExecutor",
    "materialize_epsilon_sweep",
    "FUSION_EVENT_KEYS",
]


#: stable schema of the fused-vs-fallback counters (``ServerStats.fusion``)
FUSION_EVENT_KEYS = (
    "fused_tiles",
    "fallback_tiles",
    "fused_groups",
    "fused_requests",
    "solo_requests",
    "fallback_requests",
    "fallback_disabled",
    "fallback_probe",
    "fallback_error",
)


def materialize_epsilon_sweep(
    shapes: Sequence[tuple[int, ...]], config: "SamplingConfig"
) -> list[np.ndarray]:
    """Generate a version's epsilon sweep exactly as ``mc_predict`` would.

    Epsilons are a pure function of the sampling configuration and the
    per-layer weight *shapes* -- never of the posterior values -- so this
    runs the genuine bank construction, whole-forward prefetch and
    per-layer ``sample`` walk against zero-valued placeholders.  Both the
    in-process :class:`TileExecutor` cache and the shared-memory store
    (:mod:`repro.serve.shm_cache`) call this one function, which is what
    makes their bytes interchangeable.
    """
    shapes = [tuple(int(dim) for dim in shape) for shape in shapes]
    if not shapes:
        raise ValueError("need at least one weight shape to materialise")
    bank = StreamBank(
        n_samples=config.n_samples,
        policy="reversible",
        seed=config.seed,
        lfsr_bits=config.lfsr_bits,
        grng_stride=config.grng_stride,
        lockstep=True,
    )
    sampler = bank.batched_sampler()
    sampler.prefetch_forward([int(np.prod(shape)) for shape in shapes])
    epsilons: list[np.ndarray] = []
    for shape in shapes:
        placeholder = np.zeros(shape, dtype=np.float64)
        sampled = sampler.sample(placeholder, placeholder)
        epsilons.append(np.ascontiguousarray(sampled.epsilon))
    # prediction never runs backward; drop the outstanding span
    sampler.discard_pending()
    return epsilons


@dataclass(frozen=True)
class SamplingConfig:
    """Per-request Monte-Carlo sampling knobs (the ``mc_predict`` signature).

    Frozen and hashable: it doubles as the epsilon-cache key, so two requests
    with equal configs are guaranteed to replay the same cached tensors.
    """

    n_samples: int = 8
    seed: int = 0
    grng_stride: int = 256
    lfsr_bits: int = 256

    def __post_init__(self) -> None:
        if self.n_samples < 1:
            raise ValueError("n_samples must be at least 1")


class PrecomputedEpsilonSampler:
    """Forward-only ``BatchedWeightSampler`` stand-in replaying cached epsilons.

    Implements exactly the protocol :meth:`BayesianNetwork.forward_samples`
    exercises (``n_samples``, ``prefetch_forward``, ``sample``); weights are
    rebuilt with the genuine
    :meth:`BatchedWeightSampler._build_weights` operation, so every byte
    matches what the real sampler would have produced from the same epsilons.
    """

    def __init__(self, epsilons: Sequence[np.ndarray]) -> None:
        if not epsilons:
            raise ValueError("need at least one epsilon tensor")
        self._epsilons = list(epsilons)
        self._cursor = 0

    @property
    def n_samples(self) -> int:
        """Number of Monte-Carlo samples along the leading axis."""
        return self._epsilons[0].shape[0]

    def prefetch_forward(self, counts: Sequence[int]) -> None:
        """Validate that the network's schedule matches the cached tensors."""
        cached = [eps[0].size for eps in self._epsilons[self._cursor :]]
        requested = [int(count) for count in counts]
        if requested != cached:
            raise StreamOrderError(
                f"cached epsilon schedule {cached} does not match the "
                f"network's forward schedule {requested}"
            )

    def sample(self, mu: np.ndarray, sigma: np.ndarray) -> SampledWeightsBatch:
        """Serve the next layer's cached epsilons as sampled weights."""
        if self._cursor >= len(self._epsilons):
            raise StreamOrderError(
                "forward pass requested more blocks than the cached schedule"
            )
        epsilon = self._epsilons[self._cursor]
        expected = (self.n_samples,) + tuple(mu.shape)
        if epsilon.shape != expected:
            raise StreamOrderError(
                f"cached epsilon block has shape {epsilon.shape}, layer "
                f"expected {expected}"
            )
        self._cursor += 1
        return SampledWeightsBatch(
            weights=BatchedWeightSampler._build_weights(mu, sigma, epsilon),
            epsilon=epsilon,
        )


class EpsilonCache:
    """Bounded LRU of per-layer epsilon tensors keyed by sampling config."""

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._max_entries = max_entries
        self._entries: OrderedDict[SamplingConfig, list[np.ndarray]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, config: SamplingConfig) -> list[np.ndarray] | None:
        """Return the cached tensors for ``config`` (marking them recent)."""
        entry = self._entries.get(config)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(config)
        self.hits += 1
        return entry

    def put(self, config: SamplingConfig, epsilons: list[np.ndarray]) -> None:
        """Insert (or refresh) an entry, evicting the least recently used."""
        self._entries[config] = epsilons
        self._entries.move_to_end(config)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached sweep (the hit/miss counters are kept).

        Safe at any time: entries are a pure deterministic function of their
        :class:`SamplingConfig` and the model's layer schedule, so dropping
        them costs one regeneration kernel sweep and can never change bytes.
        """
        self._entries.clear()


class TileExecutor:
    """Execute one tile of pooled requests against a model replica.

    One executor is single-threaded by design: the inline server runs it on
    the dispatcher thread and each worker process owns a private instance
    (model replica, epsilon cache and scratch buffers are not shared).
    """

    def __init__(
        self,
        model: "BayesianNetwork",
        max_cached_configs: int = 8,
    ) -> None:
        self._model = model
        self._shapes = [
            tuple(layer.weight_posterior.mu.value.shape)
            for layer in model.bayesian_layers()
        ]
        self._schedule = [
            layer.n_bayesian_weights for layer in model.bayesian_layers()
        ]
        if not self._schedule:
            raise ValueError("the served model has no Bayesian layers")
        self._cache = EpsilonCache(max_cached_configs)
        self._fusion_events: dict[str, int] = dict.fromkeys(FUSION_EVENT_KEYS, 0)
        # One softmax scratch per result shape; results are copied out of it
        # (callers retain them past the next tile, and same-shape requests in
        # one tile must not alias), which still replaces the allocating
        # path's three per-request softmax temporaries with a single copy.
        # LRU-bounded: clients pick arbitrary row counts, and a long-lived
        # server must not accumulate one buffer per shape ever seen.
        self._scratch: OrderedDict[tuple[int, ...], np.ndarray] = OrderedDict()
        self._n_classes: int | None = None
        # Optional per-tile span sink (repro.obs.trace.StageRecorder).  None
        # keeps the hot path branch-cheap; attached only for traced tiles.
        self.stage_recorder = None

    @property
    def model(self) -> "BayesianNetwork":
        """The replica this executor predicts with."""
        return self._model

    @property
    def cache(self) -> EpsilonCache:
        """The executor's epsilon cache (exposed for stats / tests)."""
        return self._cache

    # ------------------------------------------------------------------
    def _sampler_for(self, config: SamplingConfig) -> PrecomputedEpsilonSampler:
        recorder = self.stage_recorder
        start = time.monotonic() if recorder is not None else 0.0
        epsilons = self._cache.get(config)
        cached = epsilons is not None
        if not cached:
            epsilons = self._materialize(config)
            self._cache.put(config, epsilons)
        if recorder is not None:
            recorder.record(
                "epsilon_replay",
                start,
                time.monotonic(),
                cached=cached,
                n_samples=config.n_samples,
            )
        return PrecomputedEpsilonSampler(epsilons)

    def _materialize(self, config: SamplingConfig) -> list[np.ndarray]:
        """Generate the epsilons exactly as a per-request ``mc_predict`` would.

        Delegates to :func:`materialize_epsilon_sweep` (shared with the
        shared-memory store): same bank construction, same whole-forward
        prefetch, same per-layer ``sample`` walk -- so the cached tensors are
        byte-for-byte the ones a standalone call consumes.
        """
        return materialize_epsilon_sweep(self._shapes, config)

    def install_epsilons(
        self, config: SamplingConfig, epsilons: Sequence[np.ndarray]
    ) -> None:
        """Adopt an externally materialised sweep (shared-memory attach path).

        Validates the sweep against the model's layer schedule before it can
        ever be replayed; the tensors may be read-only views into a shared
        segment -- :class:`PrecomputedEpsilonSampler` never writes them.
        """
        epsilons = list(epsilons)
        schedule = [int(eps[0].size) for eps in epsilons]
        if schedule != self._schedule:
            raise StreamOrderError(
                f"installed epsilon schedule {schedule} does not match the "
                f"network's forward schedule {self._schedule}"
            )
        for eps in epsilons:
            if eps.shape[0] != config.n_samples:
                raise StreamOrderError(
                    f"installed sweep has {eps.shape[0]} samples, config "
                    f"expects {config.n_samples}"
                )
        self._cache.put(config, epsilons)

    _MAX_SCRATCH_SHAPES = 16

    def _output_buffer(self, n_samples: int, rows: int) -> np.ndarray | None:
        if self._n_classes is None:
            return None
        shape = (n_samples, rows, self._n_classes)
        buffer = self._scratch.get(shape)
        if buffer is None:
            buffer = np.empty(shape, dtype=np.float64)
            self._scratch[shape] = buffer
            while len(self._scratch) > self._MAX_SCRATCH_SHAPES:
                self._scratch.popitem(last=False)
        else:
            self._scratch.move_to_end(shape)
        return buffer

    # ------------------------------------------------------------------
    def execute_one(self, x: np.ndarray, config: SamplingConfig) -> np.ndarray:
        """Predict one request; returns ``(S, rows, classes)`` probabilities."""
        sampler = self._sampler_for(config)
        out = self._output_buffer(config.n_samples, x.shape[0])
        result = mc_forward(self._model, x, sampler, out=out)
        probabilities = result.sample_probabilities
        if self._n_classes is None:
            self._n_classes = probabilities.shape[-1]
        if out is not None:
            return np.array(probabilities)
        return probabilities

    def execute(
        self, requests: Sequence[tuple[np.ndarray, SamplingConfig]]
    ) -> list[tuple[np.ndarray | None, Exception | None]]:
        """Execute a tile; element ``i`` answers request ``i``.

        Requests sharing a :class:`SamplingConfig` (and input signature)
        concatenate into **one** folded forward with per-request output
        slicing -- when the row-stability verdict and ``REPRO_FUSED`` allow
        it (see the module docstring).  Otherwise, and for singleton groups,
        each request runs its own ``mc_forward`` exactly as before; every
        fallback is recorded in the fusion counters, never silent.

        Errors are isolated per request: each element is ``(probabilities,
        None)`` on success or ``(None, exception)`` on failure, so one
        malformed request cannot fail the innocent requests pooled into the
        same tile.  A fused group that fails mid-forward re-runs per request
        so innocents keep their answers.
        """
        outcomes: list[tuple[np.ndarray | None, Exception | None] | None] = [
            None
        ] * len(requests)
        groups: OrderedDict[object, list[int]] = OrderedDict()
        for index, (x, config) in enumerate(requests):
            key = self._group_key(x, config)
            if key is None:
                key = ("solo", index)
            groups.setdefault(key, []).append(index)

        mode = stability.fused_mode()
        fuse_ok = False
        if mode != "off" and any(len(ix) > 1 for ix in groups.values()):
            fuse_ok = stability.probe.allows()

        events = self._fusion_events
        tile_fused = tile_fallback = False
        for indices in groups.values():
            if len(indices) == 1:
                index = indices[0]
                x, config = requests[index]
                outcomes[index] = self._run_one(x, config)
                events["solo_requests"] += 1
                continue
            if fuse_ok:
                xs = [requests[index][0] for index in indices]
                config = requests[indices[0]][1]
                recorder = self.stage_recorder
                fused_start = time.monotonic() if recorder is not None else 0.0
                try:
                    slices = self._execute_fused(xs, config)
                except Exception:
                    if recorder is not None:
                        recorder.record(
                            "forward",
                            fused_start,
                            time.monotonic(),
                            status="error",
                            fused=True,
                            requests=len(indices),
                        )
                    # fused group failed as a whole (bad geometry, zero rows,
                    # schedule mismatch...): re-run per request so each gets
                    # its own answer or its own error
                    for index in indices:
                        x, config = requests[index]
                        outcomes[index] = self._run_one(x, config)
                    events["fallback_requests"] += len(indices)
                    events["fallback_error"] += len(indices)
                    tile_fallback = True
                else:
                    if recorder is not None:
                        recorder.record(
                            "forward",
                            fused_start,
                            time.monotonic(),
                            fused=True,
                            requests=len(indices),
                        )
                    for index, probabilities in zip(indices, slices):
                        outcomes[index] = (probabilities, None)
                    events["fused_groups"] += 1
                    events["fused_requests"] += len(indices)
                    tile_fused = True
            else:
                for index in indices:
                    x, config = requests[index]
                    outcomes[index] = self._run_one(x, config)
                events["fallback_requests"] += len(indices)
                reason = "fallback_disabled" if mode == "off" else "fallback_probe"
                events[reason] += len(indices)
                tile_fallback = True
        if tile_fused:
            events["fused_tiles"] += 1
        if tile_fallback:
            events["fallback_tiles"] += 1
        return outcomes  # type: ignore[return-value]

    def _run_one(
        self, x: np.ndarray, config: SamplingConfig
    ) -> tuple[np.ndarray | None, Exception | None]:
        recorder = self.stage_recorder
        start = time.monotonic() if recorder is not None else 0.0
        try:
            result = self.execute_one(x, config)
        except Exception as exc:
            if recorder is not None:
                recorder.record(
                    "forward", start, time.monotonic(), status="error", fused=False
                )
            return None, exc
        if recorder is not None:
            recorder.record("forward", start, time.monotonic(), fused=False)
        return result, None

    @staticmethod
    def _group_key(x, config) -> tuple | None:
        """Fusion group key: same config, dtype and trailing shape, >=1 row."""
        try:
            if x.ndim < 2 or x.shape[0] < 1:
                return None
            return (config, x.dtype.str, x.ndim, tuple(x.shape[1:]))
        except AttributeError:
            return None  # not an ndarray; let execute_one raise per request

    def _execute_fused(
        self, xs: list[np.ndarray], config: SamplingConfig
    ) -> list[np.ndarray]:
        """One folded forward over concatenated requests, sliced per request."""
        splits = tuple(x.shape[0] for x in xs)
        folded = np.concatenate(xs, axis=0)
        sampler = self._sampler_for(config)
        out = self._output_buffer(config.n_samples, folded.shape[0])
        with stability.folded_splits(splits):
            result = mc_forward(self._model, folded, sampler, out=out)
        probabilities = result.sample_probabilities
        if self._n_classes is None:
            self._n_classes = probabilities.shape[-1]
        slices: list[np.ndarray] = []
        lo = 0
        for rows in splits:
            hi = lo + rows
            # fresh contiguous copy: callers retain results past the next
            # tile, and the scratch buffer is reused
            slices.append(np.ascontiguousarray(probabilities[:, lo:hi]))
            lo = hi
        return slices

    def consume_fusion_events(self) -> dict[str, int] | None:
        """Drain the fused-vs-fallback counters (``None`` when untouched)."""
        events = self._fusion_events
        if not any(events.values()):
            return None
        self._fusion_events = dict.fromkeys(FUSION_EVENT_KEYS, 0)
        return events


class MultiVersionExecutor:
    """Route per-request execution to per-model-version :class:`TileExecutor`s.

    The hot-swap execution core: it holds one fully independent executor
    (model replica, epsilon cache, scratch buffers) per *loaded* version, and
    executes each request of a tile against the executor of the version the
    request was pinned to at admission.  A tile dispatched across a deploy
    may therefore legitimately mix versions -- every request still sees
    exactly its pinned model's bytes, which is the no-cross-version-mixing
    guarantee the swap tests assert.

    Structural cache isolation: because every version owns a private
    :class:`EpsilonCache`, a swapped-in model can never replay a sweep that
    was validated against another version's layer schedule.  ``invalidate``
    additionally drops a version's cached sweeps outright (the server calls
    it for every non-active version on a swap, so cold versions do not pin
    cache memory); entries regenerate deterministically on the next request.

    Thread-safety: execution is per-request under an internal lock, so the
    control operations (``load``/``unload``/``invalidate``, which arrive from
    a deploy on another thread in the inline server) interleave between
    requests, never mid-forward.  In a worker process both tiles and control
    messages arrive through one task queue, so the lock is uncontended there.
    """

    def __init__(
        self,
        replicas: "Mapping[str, ReplicaSpec]",
        max_cached_configs: int = 8,
    ) -> None:
        if not replicas:
            raise ValueError("need at least one replica version to execute")
        self._max_cached_configs = max_cached_configs
        self._lock = threading.Lock()
        self._recorder = None
        self._executors: dict[str, TileExecutor] = {
            version: TileExecutor(replica.build(), max_cached_configs)
            for version, replica in replicas.items()
        }

    def attach_stage_recorder(self, recorder) -> None:
        """Point every loaded executor's span sink at ``recorder`` (or None).

        Attached around a traced tile and detached right after; versions
        loaded while a recorder is attached inherit it on install.
        """
        with self._lock:
            self._recorder = recorder
            for executor in self._executors.values():
                executor.stage_recorder = recorder

    # ------------------------------------------------------------------
    def versions(self) -> list[str]:
        """The currently loaded version names (sorted)."""
        with self._lock:
            return sorted(self._executors)

    def executor_for(self, version: str) -> TileExecutor:
        """The loaded executor for ``version`` (for stats and tests)."""
        with self._lock:
            return self._require_locked(version)

    def _require_locked(self, version: str) -> TileExecutor:
        executor = self._executors.get(version)
        if executor is None:
            raise UnknownVersionError(
                f"model version {version!r} is not loaded in this executor; "
                f"loaded: {sorted(self._executors)}"
            )
        return executor

    # ------------------------------------------------------------------
    # control plane (deploy / retire)
    # ------------------------------------------------------------------
    def load(self, version: str, replica: "ReplicaSpec") -> None:
        """Build and install the executor for ``version`` (idempotent).

        The replica is built *outside* the lock -- construction is the
        expensive part, and requests pinned to already-loaded versions must
        not stall behind it.
        """
        with self._lock:
            if version in self._executors:
                return
        executor = TileExecutor(replica.build(), self._max_cached_configs)
        with self._lock:
            executor.stage_recorder = self._recorder
            self._executors.setdefault(version, executor)

    def unload(self, version: str) -> None:
        """Drop a version's executor (replica, epsilon cache, scratch)."""
        with self._lock:
            self._executors.pop(version, None)

    def invalidate(self, version: str) -> None:
        """Clear a loaded version's epsilon cache; unknown versions are a no-op."""
        with self._lock:
            executor = self._executors.get(version)
            if executor is not None:
                executor.cache.clear()

    def install_epsilons(
        self,
        version: str,
        config: SamplingConfig,
        epsilons: Sequence[np.ndarray],
    ) -> None:
        """Install a shared-memory sweep into ``version``'s epsilon cache."""
        with self._lock:
            executor = self._require_locked(version)
            executor.install_epsilons(config, epsilons)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def execute(
        self,
        requests: Sequence[tuple],
    ) -> list[tuple[np.ndarray | None, Exception | None]]:
        """Execute a (possibly version-mixed) tile; element ``i`` answers request ``i``.

        Each request is ``(x, config, version)``; a 2-element ``(x, config)``
        request is accepted when exactly one version is loaded (the
        single-model :class:`~repro.serve.worker.WorkerPool` surface).
        Requests are grouped by pinned version and each group runs through
        that version's :class:`TileExecutor.execute` -- so same-config
        requests fuse even in a version-mixed tile.  Error isolation matches
        :meth:`TileExecutor.execute`: a request pinned to an unloaded
        version fails alone with :class:`UnknownVersionError`.
        """
        outcomes: list[tuple[np.ndarray | None, Exception | None] | None] = [
            None
        ] * len(requests)
        by_version: OrderedDict[str, list[int]] = OrderedDict()
        for index, request in enumerate(requests):
            try:
                if len(request) == 3:
                    _, _, version = request
                else:
                    _, _ = request
                    version = self._sole_version()
            except Exception as exc:
                outcomes[index] = (None, exc)
                continue
            by_version.setdefault(version, []).append(index)
        for version, indices in by_version.items():
            # the lock is held for the whole version group: control
            # operations (deploy on another thread) interleave between
            # groups, never mid-forward -- same contract as before
            with self._lock:
                try:
                    executor = self._require_locked(version)
                except Exception as exc:
                    for index in indices:
                        outcomes[index] = (None, exc)
                    continue
                group = [
                    (requests[index][0], requests[index][1]) for index in indices
                ]
                results = executor.execute(group)
            for index, outcome in zip(indices, results):
                outcomes[index] = outcome
        return outcomes  # type: ignore[return-value]

    def consume_fusion_events(self) -> dict[str, int] | None:
        """Drain fused-vs-fallback counters aggregated over loaded versions."""
        with self._lock:
            executors = list(self._executors.values())
        total: dict[str, int] | None = None
        for executor in executors:
            events = executor.consume_fusion_events()
            if events is None:
                continue
            if total is None:
                total = dict.fromkeys(FUSION_EVENT_KEYS, 0)
            for key, value in events.items():
                total[key] += value
        return total

    def _sole_version(self) -> str:
        with self._lock:
            if len(self._executors) != 1:
                raise UnknownVersionError(
                    "a request without a version pin needs a single-version "
                    f"executor; loaded: {sorted(self._executors)}"
                )
            return next(iter(self._executors))
