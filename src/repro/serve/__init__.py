"""Asynchronous micro-batching serving front-end over the batched MC engine.

The paper's SPU pipeline is fundamentally a throughput machine; this package
is the software analogue for inference traffic.  Individual prediction
requests are pooled into ``(S, batch)`` tiles
(:class:`~repro.serve.microbatcher.MicroBatcher`), executed through the
batched Monte-Carlo engine with the per-config epsilon sweep cached and
replayed (:class:`~repro.serve.executor.TileExecutor`), optionally sharded
across model-replica worker processes
(:class:`~repro.serve.worker.WorkerPool`), and answered through futures by
the :class:`~repro.serve.server.PredictionServer` -- bit-identically to a
standalone ``mc_predict`` call per request, for any pooling and any worker
count.

Quick start::

    from repro.models import ReplicaSpec, get_model
    from repro.serve import PredictionServer, SamplingConfig, ServerConfig

    spec = get_model("B-MLP", reduced=True)
    replica = ReplicaSpec.capture(spec, trained_model)
    with PredictionServer(replica, ServerConfig(n_workers=2)) as server:
        future = server.submit(x_batch, SamplingConfig(n_samples=8))
        result = future.result()          # a PredictiveResult
        print(result.predictions, result.entropy)
        print(server.stats())
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    RateLimitedError,
    TierPolicy,
    TokenBucket,
)
from .client import GatewayClient, GatewayError, GatewayShedError
from .executor import (
    EpsilonCache,
    MultiVersionExecutor,
    PrecomputedEpsilonSampler,
    SamplingConfig,
    TileExecutor,
)
from .gateway import GatewayConfig, ServingGateway
from .microbatcher import MicroBatcher, PendingItem, QueueClosed, QueueFull
from .registry import (
    DEFAULT_VERSION,
    Deployment,
    ModelRegistry,
    ModelVersion,
    RegistryPersistenceError,
    RollbackUnavailableError,
    UnknownVersionError,
    VersionConflictError,
)
from .server import PredictionServer, ServerClosed, ServerConfig
from .stats import ServerStats, StatsSnapshot
from .worker import TileExecutionError, WorkerCrashError, WorkerPool

__all__ = [
    "SamplingConfig",
    "EpsilonCache",
    "PrecomputedEpsilonSampler",
    "TileExecutor",
    "MultiVersionExecutor",
    "MicroBatcher",
    "PendingItem",
    "QueueClosed",
    "QueueFull",
    "PredictionServer",
    "ServerConfig",
    "ServerClosed",
    "ServerStats",
    "StatsSnapshot",
    "WorkerPool",
    "WorkerCrashError",
    "TileExecutionError",
    "ModelRegistry",
    "ModelVersion",
    "Deployment",
    "DEFAULT_VERSION",
    "UnknownVersionError",
    "VersionConflictError",
    "RollbackUnavailableError",
    "RegistryPersistenceError",
    "ServingGateway",
    "GatewayConfig",
    "AdmissionConfig",
    "AdmissionController",
    "TierPolicy",
    "TokenBucket",
    "RateLimitedError",
    "GatewayClient",
    "GatewayError",
    "GatewayShedError",
]
