"""Gateway admission control: per-tenant token buckets and shed accounting.

The HTTP gateway is the boundary where overload policy must live: the
serving core's :class:`~repro.serve.microbatcher.MicroBatcher` already
enforces a row budget, but *blocking* on that budget would tie up handler
threads and punish every tenant equally.  This module supplies the two
missing pieces:

* **rate limiting** -- every tenant (identified by a request header, see
  :class:`AdmissionConfig.tenant_header`) draws from a private
  :class:`TokenBucket` sized by its *tier*; an empty bucket sheds the request
  with a computed retry hint *before* it touches the serving queue;
* **tiered shedding** -- each tier carries a ``priority`` (forwarded into the
  micro-batcher's priority waiting room, so paying tiers shed last under
  capacity pressure) and a ``max_wait_ms`` budget bounding how long an
  admission may wait for queue space (0 = shed immediately, never block).

The controller also owns the shed/admit accounting surfaced as the
``admission`` and ``tenants`` blocks of ``GET /v1/stats``.  Everything here
is policy and bookkeeping -- no request bytes flow through this module, so
the bit-exactness contract is untouched by construction.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Mapping

__all__ = [
    "TokenBucket",
    "TierPolicy",
    "AdmissionConfig",
    "AdmissionController",
    "RateLimitedError",
]


class RateLimitedError(RuntimeError):
    """A tenant exhausted its token bucket; retry after ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class TokenBucket:
    """The classic leaky-bucket rate limiter (continuous refill, no thread).

    ``rate_per_s`` tokens accrue per second up to ``burst``; each admission
    costs one token.  The bucket is lazy -- tokens are refilled from the
    elapsed clock time on every :meth:`try_acquire` -- so idle tenants cost
    nothing.  The clock is injectable for deterministic tests.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst < 1:
            raise ValueError("burst must allow at least one token")
        self._rate = float(rate_per_s)
        self._burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._refilled_at = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._refilled_at)
        self._refilled_at = now
        self._tokens = min(self._burst, self._tokens + elapsed * self._rate)

    def try_acquire(self, tokens: float = 1.0) -> float | None:
        """Take ``tokens`` if available; else return the wait in seconds.

        ``None`` means the acquisition succeeded.  A float is the time until
        the bucket will hold ``tokens`` again -- the ``Retry-After`` hint.
        The caller is expected to hold any cross-bucket lock; one bucket is
        not thread-safe by itself.
        """
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return None
        return (tokens - self._tokens) / self._rate


@dataclass(frozen=True)
class TierPolicy:
    """Admission policy of one tenant tier."""

    priority: int = 0
    """Shed ordering: higher-priority tiers are admitted first from the
    micro-batcher's waiting room and displace lower tiers when it is full."""
    rate_per_s: float | None = None
    """Request budget per second (token-bucket refill); ``None`` disables
    rate limiting for the tier."""
    burst: float = 8.0
    """Token-bucket capacity: how many requests may arrive back-to-back
    before the per-second rate applies."""
    max_wait_ms: float = 0.0
    """How long an admission may wait for serving-queue space before it is
    shed with 429.  ``0`` sheds immediately (the handler thread never
    blocks on backpressure)."""

    def __post_init__(self) -> None:
        if self.rate_per_s is not None and self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive (or None)")
        if self.burst < 1:
            raise ValueError("burst must allow at least one request")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")


@dataclass(frozen=True)
class AdmissionConfig:
    """Tenant identification and tier policy of the gateway."""

    tenant_header: str = "X-Tenant"
    """Request header carrying the tenant identity."""
    default_tenant: str = "anonymous"
    """Tenant assigned to requests without the header."""
    tiers: Mapping[str, TierPolicy] = field(
        default_factory=lambda: {"standard": TierPolicy()}
    )
    """Tier name -> policy.  The default single tier is unlimited and
    non-blocking, which preserves the pre-admission-control behaviour."""
    default_tier: str = "standard"
    """Tier of tenants absent from ``tenant_tiers``."""
    tenant_tiers: Mapping[str, str] = field(default_factory=dict)
    """Explicit tenant -> tier assignments (e.g. paying customers)."""
    max_tracked_tenants: int = 1024
    """Upper bound on per-tenant bucket/counter state: beyond it the least
    recently seen tenant's state is evicted (a fresh bucket re-admits at
    burst, so eviction can only ever be *lenient*)."""

    def __post_init__(self) -> None:
        if self.default_tier not in self.tiers:
            raise ValueError(
                f"default_tier {self.default_tier!r} is not in tiers "
                f"{sorted(self.tiers)}"
            )
        unknown = sorted(
            tier for tier in self.tenant_tiers.values() if tier not in self.tiers
        )
        if unknown:
            raise ValueError(f"tenant_tiers references unknown tiers {unknown}")
        if self.max_tracked_tenants < 1:
            raise ValueError("max_tracked_tenants must be positive")


@dataclass
class _TenantState:
    tier: str
    bucket: TokenBucket | None
    admitted: int = 0
    shed: int = 0
    rows: int = 0


class AdmissionController:
    """Apply :class:`AdmissionConfig` per request and count the outcomes.

    The gateway calls :meth:`admit` before submitting to the serving core
    (raising :class:`RateLimitedError` on an empty bucket) and then
    :meth:`record_admitted` / :meth:`record_shed` with the outcome of the
    capacity admission.  :meth:`snapshot` freezes the ``admission`` and
    ``tenants`` stats blocks.
    """

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or AdmissionConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: OrderedDict[str, _TenantState] = OrderedDict()
        self._admitted = 0
        self._shed_rate_limited = 0
        self._shed_capacity = 0

    # ------------------------------------------------------------------
    def resolve_tenant(self, header_value: str | None) -> str:
        """Map the raw header value to a tenant identity."""
        tenant = (header_value or "").strip()
        return tenant or self.config.default_tenant

    def tier_of(self, tenant: str) -> tuple[str, TierPolicy]:
        """The ``(tier name, policy)`` a tenant is assigned to."""
        name = self.config.tenant_tiers.get(tenant, self.config.default_tier)
        return name, self.config.tiers[name]

    def _state_locked(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            tier_name, policy = self.tier_of(tenant)
            bucket = None
            if policy.rate_per_s is not None:
                bucket = TokenBucket(
                    policy.rate_per_s, policy.burst, clock=self._clock
                )
            state = _TenantState(tier=tier_name, bucket=bucket)
            self._tenants[tenant] = state
            while len(self._tenants) > self.config.max_tracked_tenants:
                self._tenants.popitem(last=False)
        else:
            self._tenants.move_to_end(tenant)
        return state

    def admit(self, tenant: str) -> TierPolicy:
        """Charge the tenant's token bucket; return its tier policy.

        Raises :class:`RateLimitedError` (with the bucket's refill time as
        the retry hint) when the tenant is over its rate.  The rate-limit
        shed is counted here; the caller reports the capacity outcome via
        :meth:`record_admitted` / :meth:`record_shed`.
        """
        with self._lock:
            state = self._state_locked(tenant)
            _, policy = self.tier_of(tenant)
            if state.bucket is not None:
                wait = state.bucket.try_acquire()
                if wait is not None:
                    state.shed += 1
                    self._shed_rate_limited += 1
                    raise RateLimitedError(
                        f"tenant {tenant!r} is over its rate of "
                        f"{policy.rate_per_s:g} requests/s",
                        retry_after_s=math.ceil(wait * 1e3) / 1e3,
                    )
            return policy

    def record_admitted(self, tenant: str, rows: int) -> None:
        """The request made it into the serving queue."""
        with self._lock:
            state = self._state_locked(tenant)
            state.admitted += 1
            state.rows += int(rows)
            self._admitted += 1

    def record_shed(self, tenant: str) -> None:
        """The request was shed by capacity backpressure (post rate limit)."""
        with self._lock:
            self._state_locked(tenant).shed += 1
            self._shed_capacity += 1

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The ``admission`` stats block (plus shed totals)."""
        with self._lock:
            shed_total = self._shed_rate_limited + self._shed_capacity
            return {
                "admitted": self._admitted,
                "shed_rate_limited": self._shed_rate_limited,
                "shed_capacity": self._shed_capacity,
                "shed_total": shed_total,
                "tracked_tenants": len(self._tenants),
            }

    def tenants_snapshot(self) -> dict:
        """The ``tenants`` stats block: per-tenant tier and counters."""
        with self._lock:
            return {
                tenant: {
                    "tier": state.tier,
                    "admitted": state.admitted,
                    "shed": state.shed,
                    "rows": state.rows,
                }
                for tenant, state in sorted(self._tenants.items())
            }
