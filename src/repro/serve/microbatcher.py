"""Request pooling: the queue that turns single requests into ``(S, batch)`` tiles.

The batched Monte-Carlo engine (PR 2) amortises epsilon generation and layer
dispatch over everything that executes together, but a serving front-end
receives requests one at a time.  The :class:`MicroBatcher` closes that gap
with the classic inference-server flush policy:

* a tile is flushed as soon as the pending work reaches ``max_batch_rows``
  example rows (a full tile), or
* when the *oldest* pending request has waited ``max_wait_ms`` milliseconds
  (a partial tile -- latency beats occupancy once someone has waited long
  enough), or
* immediately on shutdown, so close() never strands requests.

Requests are never split across tiles: a request larger than
``max_batch_rows`` simply becomes a tile of its own.  Backpressure is a row
budget (``max_pending_rows``): ``submit`` blocks (or raises
:class:`QueueFull` when non-blocking / timed out) until the dispatcher drains
the queue below it.

Blocked submitters form a small **priority queue** (the waiting room): when
the dispatcher frees row budget, the highest-``priority`` waiter is admitted
first (FIFO within a priority level), so under sustained overload
low-priority traffic sheds before high-priority traffic.  The waiting room
itself may be bounded (``max_waiting``); once full, a newly arriving request
either displaces the lowest-priority waiter (if it outranks it -- the
displaced waiter's ``submit`` raises :class:`QueueFull`) or is refused
immediately.  Every :class:`QueueFull` carries a machine-readable
``reason`` so callers (the HTTP gateway) can distinguish sheds from
timeouts.

The batcher owns no thread; the server's dispatcher loop calls
:meth:`next_tile`, which blocks on a condition variable until a flush
condition holds.  The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, TypeVar

__all__ = ["MicroBatcher", "QueueClosed", "QueueFull", "PendingItem"]

T = TypeVar("T")


class QueueClosed(RuntimeError):
    """Raised by ``submit`` after the batcher has been closed."""


class QueueFull(RuntimeError):
    """Raised by a non-blocking / timed-out / displaced ``submit``.

    ``reason`` is machine-readable: ``"capacity"`` (non-blocking submit with
    no row budget), ``"timeout"`` (bounded wait expired), ``"displaced"``
    (evicted from a full waiting room by a higher-priority request) or
    ``"waiting_room_full"`` (the bounded waiting room had no lower-priority
    waiter to displace).  ``pending_rows`` snapshots the queue depth at
    refusal time so callers can compute a retry hint.
    """

    def __init__(
        self, message: str, reason: str = "capacity", pending_rows: int = 0
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.pending_rows = pending_rows


@dataclass
class _Waiter:
    """One submitter blocked in the priority waiting room."""

    priority: int
    sequence: int
    rows: int
    displaced: bool = False

    def rank(self) -> tuple[int, int]:
        """Sort key: higher priority first, then arrival order."""
        return (-self.priority, self.sequence)


@dataclass
class PendingItem(Generic[T]):
    """One queued request together with its pooling metadata."""

    item: T
    rows: int
    enqueued_at: float
    sequence: int = field(default=0)


class MicroBatcher(Generic[T]):
    """Pool individual requests into tiles under a rows/wait flush policy."""

    def __init__(
        self,
        max_batch_rows: int = 64,
        max_wait_ms: float = 2.0,
        max_pending_rows: int = 1024,
        max_waiting: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch_rows < 1:
            raise ValueError("max_batch_rows must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if max_pending_rows < max_batch_rows:
            raise ValueError(
                "max_pending_rows must be at least max_batch_rows "
                f"({max_pending_rows} < {max_batch_rows})"
            )
        if max_waiting is not None and max_waiting < 1:
            raise ValueError("max_waiting must be positive (or None: unbounded)")
        self._max_batch_rows = max_batch_rows
        self._max_wait_s = max_wait_ms / 1e3
        self._max_pending_rows = max_pending_rows
        self._max_waiting = max_waiting
        self._clock = clock
        self._lock = threading.Lock()
        self._can_flush = threading.Condition(self._lock)
        self._has_space = threading.Condition(self._lock)
        self._pending: list[PendingItem[T]] = []
        self._pending_rows = 0
        self._sequence = 0
        self._wait_sequence = 0
        self._waiters: list[_Waiter] = []
        self._closed = False
        # why tiles flushed: a rows-threshold flush means the pooling policy
        # is filling tiles; a timeout flush means latency won; close flushes
        # are the shutdown drain
        self._flush_causes = {"rows": 0, "timeout": 0, "close": 0}

    # ------------------------------------------------------------------
    @property
    def max_batch_rows(self) -> int:
        """Row budget of one tile."""
        return self._max_batch_rows

    @property
    def pending_rows(self) -> int:
        """Example rows currently queued (snapshot)."""
        with self._lock:
            return self._pending_rows

    @property
    def pending_requests(self) -> int:
        """Requests currently queued (snapshot)."""
        with self._lock:
            return len(self._pending)

    @property
    def waiting_requests(self) -> int:
        """Submitters currently blocked in the waiting room (snapshot)."""
        with self._lock:
            return len(self._waiters)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        with self._lock:
            return self._closed

    def flush_causes(self) -> dict[str, int]:
        """Tile flush counters by cause: ``{"rows", "timeout", "close"}``."""
        with self._lock:
            return dict(self._flush_causes)

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def submit(
        self,
        item: T,
        rows: int,
        block: bool = True,
        timeout: float | None = None,
        priority: int = 0,
    ) -> None:
        """Queue one request carrying ``rows`` example rows.

        Blocks while the row budget is exhausted (unless ``block=False`` or a
        ``timeout`` expires, which raise :class:`QueueFull`).  A request
        larger than the whole budget is admitted only into an empty queue --
        it could otherwise never be admitted at all.

        ``priority`` orders blocked submitters: when the dispatcher frees
        space, the highest-priority waiter is admitted first (FIFO within a
        level).  An arriving request never waits behind *lower*-priority
        waiters, and -- when the waiting room is bounded -- displaces the
        lowest-priority waiter instead of being refused, provided it outranks
        it.
        """
        if rows < 1:
            raise ValueError("a request must carry at least one row")
        deadline = None if timeout is None else self._clock() + timeout
        with self._lock:
            if self._closed:
                raise QueueClosed("the micro-batcher is closed")
            # fast path: the budget fits and no equal-or-higher-priority
            # waiter is owed the space first
            if self._fits_locked(rows) and not any(
                waiter.priority >= priority for waiter in self._waiters
            ):
                self._enqueue_locked(item, rows)
                return
            if not block:
                raise QueueFull(
                    f"{self._pending_rows} rows pending, request of {rows} "
                    f"rows exceeds the budget of {self._max_pending_rows}",
                    reason="capacity",
                    pending_rows=self._pending_rows,
                )
            self._reserve_waiting_slot_locked(priority)
            waiter = _Waiter(
                priority=priority, sequence=self._wait_sequence, rows=rows
            )
            self._wait_sequence += 1
            self._waiters.append(waiter)
            try:
                while True:
                    if self._closed:
                        raise QueueClosed("the micro-batcher is closed")
                    if waiter.displaced:
                        raise QueueFull(
                            "shed from the waiting room by a higher-priority "
                            "request",
                            reason="displaced",
                            pending_rows=self._pending_rows,
                        )
                    if self._is_head_locked(waiter) and self._fits_locked(rows):
                        self._enqueue_locked(item, rows)
                        return
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - self._clock()
                        if remaining <= 0:
                            raise QueueFull(
                                f"timed out waiting for queue space ({rows} rows)",
                                reason="timeout",
                                pending_rows=self._pending_rows,
                            )
                    self._has_space.wait(timeout=remaining)
            finally:
                if waiter in self._waiters:
                    self._waiters.remove(waiter)
                # the departing waiter may have been the head: wake the rest
                # so the next-ranked waiter can re-check its turn
                self._has_space.notify_all()

    def _fits_locked(self, rows: int) -> bool:
        if self._pending_rows + rows <= self._max_pending_rows:
            return True
        return not self._pending and rows > self._max_pending_rows

    def _is_head_locked(self, waiter: _Waiter) -> bool:
        return min(self._waiters, key=_Waiter.rank) is waiter

    def _reserve_waiting_slot_locked(self, priority: int) -> None:
        """Enforce the waiting-room bound, displacing a lower-priority waiter."""
        if self._max_waiting is None or len(self._waiters) < self._max_waiting:
            return
        lowest = max(self._waiters, key=_Waiter.rank)
        if lowest.priority >= priority:
            raise QueueFull(
                f"waiting room is full ({len(self._waiters)} blocked requests) "
                "and no waiter has lower priority",
                reason="waiting_room_full",
                pending_rows=self._pending_rows,
            )
        lowest.displaced = True
        self._waiters.remove(lowest)
        self._has_space.notify_all()

    def _enqueue_locked(self, item: T, rows: int) -> None:
        self._pending.append(
            PendingItem(
                item=item,
                rows=rows,
                enqueued_at=self._clock(),
                sequence=self._sequence,
            )
        )
        self._sequence += 1
        self._pending_rows += rows
        self._can_flush.notify_all()

    def close(self) -> None:
        """Refuse new submissions; already-queued requests still drain."""
        with self._lock:
            self._closed = True
            self._can_flush.notify_all()
            self._has_space.notify_all()

    def cancel_pending(self) -> list[PendingItem[T]]:
        """Drop and return everything still queued (for an aborting shutdown)."""
        with self._lock:
            cancelled = self._pending
            self._pending = []
            self._pending_rows = 0
            self._has_space.notify_all()
            return cancelled

    # ------------------------------------------------------------------
    # consumer side (the dispatcher loop)
    # ------------------------------------------------------------------
    def next_tile(self) -> list[PendingItem[T]] | None:
        """Block until a flush condition holds; return one tile of requests.

        Returns ``None`` exactly when the batcher is closed *and* drained --
        the dispatcher's signal to exit.  A tile is a prefix of the arrival
        order whose rows fit ``max_batch_rows`` (always at least one request,
        so oversized requests form singleton tiles).
        """
        with self._lock:
            while True:
                if self._pending:
                    if self._pending_rows >= self._max_batch_rows:
                        self._flush_causes["rows"] += 1
                        return self._pop_tile_locked()
                    if self._closed:
                        self._flush_causes["close"] += 1
                        return self._pop_tile_locked()
                    now = self._clock()
                    oldest_deadline = self._pending[0].enqueued_at + self._max_wait_s
                    if now >= oldest_deadline:
                        self._flush_causes["timeout"] += 1
                        return self._pop_tile_locked()
                    # a newly-submitted request can only shorten the wait via
                    # the rows condition, which notifies; the deadline of the
                    # current oldest request bounds the sleep either way
                    self._can_flush.wait(timeout=oldest_deadline - now)
                elif self._closed:
                    return None
                else:
                    self._can_flush.wait()

    def _pop_tile_locked(self) -> list[PendingItem[T]]:
        tile: list[PendingItem[T]] = [self._pending[0]]
        rows = self._pending[0].rows
        index = 1
        while index < len(self._pending):
            candidate = self._pending[index]
            if rows + candidate.rows > self._max_batch_rows:
                break
            tile.append(candidate)
            rows += candidate.rows
            index += 1
        del self._pending[:index]
        self._pending_rows -= rows
        self._has_space.notify_all()
        return tile

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MicroBatcher(max_batch_rows={self._max_batch_rows}, "
            f"max_wait_ms={self._max_wait_s * 1e3:g}, "
            f"pending={len(self._pending)})"
        )


# typing helper: the server stores heterogeneous payloads
AnyPendingItem = PendingItem[Any]
