"""Stdlib-only client SDK for the gateway's ``/v1`` wire API.

:class:`GatewayClient` wraps the versioned HTTP surface of
:mod:`repro.serve.gateway` with exactly the semantics the server promises:

* **wire bit-exactness** -- responses are parsed with :func:`json.loads`,
  whose float parsing is the exact inverse of the server's ``repr``
  serialisation: every float64 in ``sample_probabilities`` round-trips
  byte-identical to the server-side ``mc_predict`` result.
  :meth:`GatewayClient.predict_arrays` hands them back as float64 arrays;
* **load-shed handling** -- ``429`` responses (rate-limited or overloaded)
  are retried up to ``max_retries`` times, honouring the server's
  ``Retry-After`` (envelope float preferred over the integer header) with a
  per-wait cap, then surface as :class:`GatewayShedError`;
* **structured errors** -- every non-2xx response raises
  :class:`GatewayError` carrying the machine-readable ``code`` from the
  ``/v1`` error envelope;
* **keep-alive** -- one persistent :class:`http.client.HTTPConnection` per
  client (per thread), so request streams reuse sockets exactly like a real
  tenant's connection pool;
* **observability** -- every response's ``X-Request-Id`` is captured as
  :attr:`GatewayClient.last_request_id` (thread-local);
  :meth:`GatewayClient.trace`, :meth:`GatewayClient.traces` and
  :meth:`GatewayClient.metrics` read the gateway's trace ring and
  Prometheus exposition.

The module doubles as the CI smoke probe::

    python -m repro.serve.client --url http://127.0.0.1:8123 healthz
    python -m repro.serve.client --url ... predict --rows 4 --n-samples 8

which exercises the real SDK path instead of hand-rolled curl bodies.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.parse
from typing import Any

import numpy as np

__all__ = ["GatewayClient", "GatewayError", "GatewayShedError"]


class GatewayError(RuntimeError):
    """A non-2xx gateway response, carrying the error-envelope fields."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s


class GatewayShedError(GatewayError):
    """A request was shed (429) and the retry budget is exhausted."""


class GatewayClient:
    """Client for one gateway endpoint, safe for concurrent threads.

    Parameters
    ----------
    url:
        Gateway base URL, e.g. ``http://127.0.0.1:8123``.
    tenant:
        Value sent in the tenant header (default header name ``X-Tenant``);
        ``None`` sends no header (the gateway buckets the request under its
        default tenant).
    timeout_s:
        Socket timeout per HTTP request.
    max_retries:
        How many times a ``429`` is retried before raising
        :class:`GatewayShedError`.  ``0`` disables retries.
    max_retry_wait_s:
        Per-retry cap on honouring the server's ``Retry-After``.
    """

    def __init__(
        self,
        url: str,
        tenant: str | None = None,
        timeout_s: float = 60.0,
        max_retries: int = 3,
        max_retry_wait_s: float = 5.0,
        tenant_header: str = "X-Tenant",
        api_prefix: str = "/v1",
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(f"expected an http://host[:port] URL, got {url!r}")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self.tenant = tenant
        self.tenant_header = tenant_header
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.max_retry_wait_s = max_retry_wait_s
        self.api_prefix = api_prefix.rstrip("/")
        self._clock = clock
        self._sleep = sleep
        # one keep-alive connection per thread: HTTPConnection is not
        # thread-safe, but per-thread reuse preserves the socket-reuse
        # behaviour of a real client
        self._local = threading.local()

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout_s
            )
            connection.connect()
            # Nagle + delayed ACK otherwise stalls keep-alive round trips
            # for ~40ms whenever a request straddles two writes
            connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._local.connection = connection
        return connection

    def close(self) -> None:
        """Close this thread's keep-alive connection (if any)."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _request_once(
        self, method: str, path: str, body: dict | None
    ) -> tuple[int, dict[str, str], bytes]:
        headers = {"Content-Type": "application/json"}
        if self.tenant is not None:
            headers[self.tenant_header] = self.tenant
        payload = b"" if body is None else json.dumps(body).encode()
        if method == "POST":
            headers["Content-Length"] = str(len(payload))
        connection = self._connection()
        try:
            connection.request(method, path, body=payload or None, headers=headers)
            response = connection.getresponse()
            raw = response.read()  # drains the socket; keep-alive stays valid
        except (http.client.HTTPException, ConnectionError, OSError):
            # a dropped keep-alive socket (server closed it after an error,
            # idle timeout) is re-dialled once with a fresh connection
            self.close()
            connection = self._connection()
            connection.request(method, path, body=payload or None, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        response_headers = {key.lower(): value for key, value in response.getheaders()}
        # surface the gateway's trace id (thread-local: concurrent callers
        # each see their own last request)
        self._local.last_request_id = response_headers.get("x-request-id")
        if response.will_close:
            self.close()
        return response.status, response_headers, raw

    @staticmethod
    def _parse_error(
        status: int, headers: dict[str, str], raw: bytes
    ) -> GatewayError:
        code, message, retry_after = "internal", raw.decode(errors="replace"), None
        try:
            envelope = json.loads(raw)
            error = envelope.get("error", {})
            code = error.get("code", code)
            message = error.get("message", message)
            retry_after = error.get("retry_after_s")
        except (json.JSONDecodeError, AttributeError):
            pass
        if retry_after is None and "retry-after" in headers:
            try:
                retry_after = float(headers["retry-after"])
            except ValueError:
                pass
        cls = GatewayShedError if status == 429 else GatewayError
        return cls(status, code, message, retry_after_s=retry_after)

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        path = self.api_prefix + path
        attempts = 0
        while True:
            status, headers, raw = self._request_once(method, path, body)
            if 200 <= status < 300:
                return json.loads(raw)
            error = self._parse_error(status, headers, raw)
            if status != 429 or attempts >= self.max_retries:
                raise error
            attempts += 1
            wait = error.retry_after_s if error.retry_after_s is not None else 0.1
            self._sleep(min(max(wait, 0.0), self.max_retry_wait_s))

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    @property
    def last_request_id(self) -> str | None:
        """The ``X-Request-Id`` of this thread's most recent response.

        ``None`` before any request, and for responses the gateway did not
        trace (``REPRO_OBS=0`` or sampled out).  Feed it to :meth:`trace`
        to fetch the request's span tree.
        """
        return getattr(self._local, "last_request_id", None)

    def healthz(self) -> dict:
        """``GET /v1/healthz``."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        """``GET /v1/stats``."""
        return self._request("GET", "/stats")

    def models(self) -> dict:
        """``GET /v1/models``."""
        return self._request("GET", "/models")

    def metrics(self) -> str:
        """``GET /v1/metrics``: the raw Prometheus text exposition."""
        status, headers, raw = self._request_once(
            "GET", self.api_prefix + "/metrics", None
        )
        if not 200 <= status < 300:
            raise self._parse_error(status, headers, raw)
        return raw.decode("utf-8")

    def trace(self, trace_id: str) -> dict:
        """``GET /v1/trace/<id>``: one recorded span tree."""
        return self._request("GET", f"/trace/{trace_id}")

    def traces(self, slowest: int = 8) -> dict:
        """``GET /v1/traces?slowest=N``: the slowest recorded exemplars."""
        return self._request("GET", f"/traces?slowest={int(slowest)}")

    def deploy(self, version: str) -> dict:
        """``POST /v1/models/deploy``."""
        return self._request("POST", "/models/deploy", {"version": version})

    def rollback(self) -> dict:
        """``POST /v1/models/rollback``."""
        return self._request("POST", "/models/rollback", {})

    def predict(
        self,
        x,
        sampling: dict | None = None,
        version: str | None = None,
    ) -> dict:
        """``POST /v1/predict``; returns the parsed JSON payload.

        Floats in the payload are exact: ``json.loads`` inverts the server's
        ``repr`` serialisation bit for bit.  Retries shed (429) requests up
        to ``max_retries`` times, honouring ``Retry-After``.
        """
        body: dict[str, Any] = {"x": np.asarray(x).tolist()}
        if sampling is not None:
            body["sampling"] = sampling
        if version is not None:
            body["version"] = version
        return self._request("POST", "/predict", body)

    def predict_arrays(
        self,
        x,
        sampling: dict | None = None,
        version: str | None = None,
    ) -> dict:
        """:meth:`predict` with the tensor fields as float64 arrays."""
        payload = self.predict(x, sampling=sampling, version=version)
        for key in (
            "predictions",
            "entropy",
            "mean_probabilities",
            "sample_probabilities",
        ):
            if key in payload:
                dtype = np.int64 if key == "predictions" else np.float64
                payload[key] = np.asarray(payload[key], dtype=dtype)
        return payload


# ----------------------------------------------------------------------
# CLI: the CI smoke probe
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    """``python -m repro.serve.client``: probe a running gateway."""
    import argparse

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--url", required=True, help="gateway base URL")
    parser.add_argument("--tenant", default=None)
    parser.add_argument("--timeout", type=float, default=30.0)
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("healthz", "stats", "models", "rollback", "metrics"):
        sub.add_parser(name)
    deploy = sub.add_parser("deploy")
    deploy.add_argument("version")
    trace = sub.add_parser("trace")
    trace.add_argument("trace_id")
    traces = sub.add_parser("traces")
    traces.add_argument("--slowest", type=int, default=8)
    predict = sub.add_parser("predict")
    predict.add_argument("--rows", type=int, default=2)
    predict.add_argument("--features", type=int, default=196,
                         help="input feature count (196 = the reduced B-MLP)")
    predict.add_argument("--n-samples", type=int, default=4)
    predict.add_argument("--seed", type=int, default=0)
    predict.add_argument("--version", default=None)
    predict.add_argument("--full", action="store_true",
                         help="print sample_probabilities too (large)")
    args = parser.parse_args(argv)

    client = GatewayClient(args.url, tenant=args.tenant, timeout_s=args.timeout)
    try:
        if args.command == "predict":
            rng = np.random.default_rng(args.seed)
            x = rng.normal(size=(args.rows, args.features))
            payload = client.predict(
                x,
                sampling={"n_samples": args.n_samples, "seed": args.seed},
                version=args.version,
            )
            if not args.full:
                payload.pop("sample_probabilities", None)
            if client.last_request_id is not None:
                payload["request_id"] = client.last_request_id
            print(json.dumps(payload))
        elif args.command == "metrics":
            print(client.metrics(), end="")
        elif args.command == "trace":
            print(json.dumps(client.trace(args.trace_id)))
        elif args.command == "traces":
            print(json.dumps(client.traces(args.slowest)))
        else:
            method = getattr(client, args.command)
            result = method(args.version) if args.command == "deploy" else method()
            print(json.dumps(result))
    except GatewayError as exc:
        print(json.dumps({
            "error": {"status": exc.status, "code": exc.code, "message": exc.message}
        }))
        return 1
    finally:
        client.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI job
    import sys

    sys.exit(main())
