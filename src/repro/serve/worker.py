"""Multiprocessing worker pool: shard tiles across model-replica processes.

The ``(S, batch)`` fold is embarrassingly parallel along both axes, so tiles
can execute anywhere a bit-identical replica lives.  Each worker process
rebuilds its replica from a picklable
:class:`~repro.models.zoo.ReplicaSpec` and owns a private
:class:`~repro.serve.executor.TileExecutor` -- its own epsilon cache backed
by its own ``StreamBank`` construction.  Because every tile's epsilons are
regenerated from the *request's* sampling seed (not from any worker-local
state), the union of the workers' outputs reproduces the single-process
trajectory bit for bit, for any worker count and any tile-to-worker
assignment.

Tiles are sharded round-robin onto per-worker task queues (rather than one
shared queue) so that every in-flight tile has a known owner: when a worker
dies, exactly its outstanding tiles are affected, and tiles queued to
healthy workers are unaffected.  A single collector thread drains the
shared result queue, watches worker liveness, and reports completions to
the server through a callback.

With a :class:`~repro.distrib.respawn.RespawnPolicy` the pool also
*recovers*: a crashed worker is replaced (bounded by the policy's respawn
budget) and its orphaned tiles are re-queued onto healthy workers (bounded
per tile) before anything is failed with :class:`WorkerCrashError`.
Re-execution is safe because a tile's epsilons derive from the request's
seed, never from worker state -- a retried tile returns byte-identical
probabilities.  Without a policy (the default) a dead worker's tiles fail
fast, the pre-respawn behaviour.

Versioned serving: each worker owns a
:class:`~repro.serve.executor.MultiVersionExecutor` (one replica + epsilon
cache per loaded model version); hot-swap control messages
(``load``/``invalidate``/``unload``) ride the same per-worker FIFO task
queues as tiles, so they order deterministically against dispatched work,
and the pool's replica *template* is updated first -- a respawned
replacement rebuilds the post-swap version set.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import traceback
from queue import Empty
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from ..distrib.respawn import RespawnBudget, RespawnPolicy
from ..obs.trace import StageRecorder
from .executor import MultiVersionExecutor, SamplingConfig
from .registry import DEFAULT_VERSION
from .shm_cache import ShmAttachment, SweepDescriptor, attach_sweep

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..models.zoo import ReplicaSpec

__all__ = ["WorkerPool", "WorkerCrashError", "TileExecutionError"]

_LIVENESS_POLL_S = 0.05


class WorkerCrashError(RuntimeError):
    """A worker process died while (or before) executing the request's tile."""


class TileExecutionError(RuntimeError):
    """The worker survived but the tile raised; carries the worker traceback."""


def _worker_main(
    rank: int,
    replicas: "dict[str, ReplicaSpec]",
    max_cached_configs: int,
    task_queue,
    result_queue,
) -> None:
    """Worker process body: rebuild the replica set, then serve tiles forever.

    The task queue carries three kinds of messages in one FIFO stream: tiles
    (``("tile", tile_id, requests[, traced])``), version-control operations
    (``("load", version, replica)`` / ``("invalidate", version)`` /
    ``("unload", version)``), shared-sweep announcements
    (``("shm", descriptor)``), plus ``None`` as the shutdown sentinel.  The
    shared ordering is what makes hot swap race-free per worker: a control
    message enqueued at deploy time is applied before any tile dispatched
    after the deploy, and after every tile dispatched before it.

    A ``shm`` descriptor attaches the parent's shared epsilon segment
    read-only and installs the views straight into the version's epsilon
    cache -- the worker then replays the sweep without regenerating it, and
    all workers share one physical copy.  Attach failures are never fatal:
    the worker simply keeps materialising privately (bit-identical by
    construction).  Attachments are dropped whenever their version is
    invalidated or unloaded, so a deploy/rollback can never leave a worker
    serving a stale mapping.
    """

    def _drop_attachments(store: dict, version: str) -> None:
        for key in [k for k in store if k[0] == version]:
            store.pop(key).release()

    try:
        executor = MultiVersionExecutor(
            replicas, max_cached_configs=max_cached_configs
        )
        attachments: dict[tuple, ShmAttachment] = {}
        # the ready handshake carries this process's monotonic clock so the
        # parent can reconcile worker span times onto its own clock; every
        # traced done message carries another sample, and the parent keeps
        # the running-minimum offset (each sample overshoots by exactly its
        # transit latency, so the minimum converges on the true offset)
        result_queue.put(("ready", rank, {"clock": time.monotonic()}))
    except BaseException:  # pragma: no cover - defensive startup reporting
        result_queue.put(("fatal", rank, traceback.format_exc()))
        return
    while True:
        task = task_queue.get()
        if task is None:
            break
        kind = task[0]
        if kind == "tile":
            tile_id, requests = task[1], task[2]
            traced = bool(task[3]) if len(task) > 3 else False
            recorder = StageRecorder() if traced else None
            if recorder is not None:
                executor.attach_stage_recorder(recorder)
            try:
                outcomes = executor.execute(requests)
                # exceptions cross the process boundary as formatted tracebacks
                # (picklable, and the parent-side error message keeps the frames)
                payload = [
                    ("ok", probabilities)
                    if error is None
                    else ("err", "".join(traceback.format_exception(error)))
                    for probabilities, error in outcomes
                ]
                # the clock sample lets the parent refine its per-rank span
                # offset on every traced tile, not just the ready handshake
                trace_payload = (
                    {
                        "rank": rank,
                        "spans": recorder.drain(),
                        "clock": time.monotonic(),
                    }
                    if recorder is not None
                    else None
                )
                result_queue.put(
                    (
                        "done",
                        tile_id,
                        payload,
                        executor.consume_fusion_events(),
                        trace_payload,
                    )
                )
            except BaseException:
                result_queue.put(("error", tile_id, traceback.format_exc()))
            finally:
                if recorder is not None:
                    executor.attach_stage_recorder(None)
        elif kind == "load":
            _, version, replica = task
            try:
                executor.load(version, replica)
            except BaseException:
                # requests pinned to this version will fail per-request with
                # UnknownVersionError; surface the build failure for operators
                result_queue.put(("control_error", rank, traceback.format_exc()))
        elif kind == "invalidate":
            executor.invalidate(task[1])
            _drop_attachments(attachments, task[1])
        elif kind == "unload":
            executor.unload(task[1])
            _drop_attachments(attachments, task[1])
        elif kind == "shm":
            descriptor: SweepDescriptor = task[1]
            try:
                attachment = attach_sweep(descriptor)
                executor.install_epsilons(
                    descriptor.version, descriptor.config, attachment.epsilons
                )
            except BaseException:
                # segment already invalidated, schedule mismatch, ...: the
                # private materialisation path still serves identical bytes
                result_queue.put(("control_error", rank, traceback.format_exc()))
            else:
                stale = attachments.pop(descriptor.key(), None)
                if stale is not None:
                    stale.release()
                attachments[descriptor.key()] = attachment
    for attachment in attachments.values():
        attachment.release()


@dataclass
class _Worker:
    rank: int
    process: multiprocessing.process.BaseProcess
    task_queue: object
    # tile_id -> (requests, traced), kept so a respawn-enabled pool can
    # re-queue exactly what a dead worker was holding
    outstanding: dict[int, tuple] = field(default_factory=dict)
    ready: bool = False


class WorkerPool:
    """Round-robin tile sharding over ``n_workers`` replica processes.

    Completion reporting is push-based: ``result_handler(tile_id, outcomes,
    error)`` is invoked from the collector thread with either a list of
    per-request ``(probabilities, error)`` outcomes or a tile-level
    exception -- exactly one of the two, exactly once per dispatched tile
    (worker death included).
    """

    def __init__(
        self,
        replicas: "ReplicaSpec | Mapping[str, ReplicaSpec]",
        n_workers: int,
        result_handler: Callable[
            [int, list[tuple[np.ndarray | None, Exception | None]] | None, Exception | None],
            None,
        ],
        max_cached_configs: int = 8,
        start_method: str | None = None,
        respawn: RespawnPolicy | None = None,
        fusion_handler: Callable[[dict], None] | None = None,
        trace_handler: Callable[[int, dict], None] | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("a worker pool needs at least one worker")
        if start_method is None:
            # fork is substantially cheaper where available; the workers are
            # started before the server's service threads exist, which keeps
            # the classic fork-with-threads hazards out of the picture
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else available[0]
        self._ctx = multiprocessing.get_context(start_method)
        # a bare replica is the single-model surface: one default version,
        # requests may omit the version pin
        if isinstance(replicas, Mapping):
            self._replicas: dict[str, "ReplicaSpec"] = dict(replicas)
        else:
            self._replicas = {DEFAULT_VERSION: replicas}
        if not self._replicas:
            raise ValueError("a worker pool needs at least one replica version")
        self._n_workers = n_workers
        self._max_cached_configs = max_cached_configs
        self._result_handler = result_handler
        self._fusion_handler = fusion_handler
        # trace_handler(tile_id, {"rank", "spans"}) receives worker span
        # payloads with times already converted onto the parent's clock
        self._trace_handler = trace_handler
        # rank -> (parent monotonic - worker monotonic), captured from each
        # worker's ready handshake
        self._clock_offsets: dict[int, float] = {}
        # published shared-sweep descriptors, replayed to respawned workers
        self._sweeps: dict[tuple[str, SamplingConfig], SweepDescriptor] = {}
        # no policy: the pre-respawn semantics -- dead workers are not
        # replaced and their tiles fail immediately
        self._budget = RespawnBudget(
            respawn or RespawnPolicy(max_respawns=0, max_task_retries=0)
        )
        self._workers: list[_Worker] = []
        self._retired: list[_Worker] = []
        self._result_queue = self._ctx.Queue()
        self._lock = threading.Lock()
        self._next_worker = 0
        self._next_rank = 0
        self._collector: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._started = False
        #: Last worker-side version-load traceback, if any (diagnostics).
        self.last_control_error: str | None = None

    # ------------------------------------------------------------------
    @property
    def alive_workers(self) -> int:
        """Number of workers currently believed healthy."""
        with self._lock:
            return sum(1 for worker in self._workers if worker.process.is_alive())

    @property
    def processes(self) -> list[multiprocessing.process.BaseProcess]:
        """The worker processes (exposed for tests and diagnostics)."""
        return [worker.process for worker in self._workers]

    @property
    def respawns_used(self) -> int:
        """How many replacement workers have been spawned so far."""
        return self._budget.respawns_used

    # ------------------------------------------------------------------
    def _spawn_worker(self) -> _Worker:
        task_queue = self._ctx.Queue()
        rank = self._next_rank
        self._next_rank += 1
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                rank,
                # snapshot of the *current* replica set: a worker respawned
                # after a deploy rebuilds every version loaded at spawn time
                dict(self._replicas),
                self._max_cached_configs,
                task_queue,
                self._result_queue,
            ),
            daemon=True,
        )
        process.start()
        # replay published shared sweeps so a respawned replacement attaches
        # the same segments its predecessors did (FIFO: applied before any
        # tile queued afterwards)
        for descriptor in self._sweeps.values():
            task_queue.put(("shm", descriptor))
        return _Worker(rank=rank, process=process, task_queue=task_queue)

    def start(self, timeout: float = 60.0) -> None:
        """Fork the workers and wait until every replica reports ready."""
        if self._started:
            raise RuntimeError("worker pool already started")
        self._started = True
        for _ in range(self._n_workers):
            self._workers.append(self._spawn_worker())
        ready = 0
        while ready < self._n_workers:
            try:
                kind, rank, payload = self._result_queue.get(timeout=timeout)
            except Empty as exc:
                self.stop(abort=True)
                raise RuntimeError(
                    f"only {ready}/{self._n_workers} workers became ready"
                ) from exc
            if kind == "fatal":
                self.stop(abort=True)
                raise RuntimeError(f"worker failed to build its replica:\n{payload}")
            if kind == "ready":
                self._record_clock(rank, payload)
                ready += 1
        for worker in self._workers:
            worker.ready = True
        self._collector = threading.Thread(
            target=self._collect, name="serve-worker-collector", daemon=True
        )
        self._collector.start()

    def _record_clock(self, rank: int, payload) -> None:
        """Refine a rank's clock offset from any message carrying its clock.

        Each observation ``parent_now - worker_clock`` is the true offset
        plus that message's transit latency, so it can only overshoot;
        keeping the running minimum converges on the true offset as traffic
        flows (monotonic clocks share one system-wide base, so the minimum
        stays valid across worker respawns).
        """
        if isinstance(payload, dict) and "clock" in payload:
            observed = time.monotonic() - payload["clock"]
            with self._lock:
                prior = self._clock_offsets.get(rank)
                self._clock_offsets[rank] = (
                    observed if prior is None else min(prior, observed)
                )

    def dispatch(
        self,
        tile_id: int,
        requests: Sequence[tuple[np.ndarray, SamplingConfig]],
        traced: bool = False,
    ) -> None:
        """Assign a tile to the next healthy worker (round-robin).

        Requests are ``(x, config)`` pairs (single-model pools) or
        ``(x, config, version)`` triples (versioned serving; a tile may mix
        versions, each request executes on its own pinned replica).

        Raises :class:`WorkerCrashError` when no healthy worker remains, so
        the server can fail the tile's futures instead of queueing into the
        void.
        """
        # SamplingConfig is a frozen picklable dataclass: ship it verbatim so
        # pooled and inline execution can never diverge on a config field
        payload = list(requests)
        with self._lock:
            alive = [w for w in self._workers if w.process.is_alive()]
            if not alive:
                raise WorkerCrashError("no healthy workers remain in the pool")
            # prefer workers whose replica is built (a freshly respawned
            # replacement is alive but still constructing); fall back to the
            # spawning ones -- their queue simply drains once they are up
            candidates = [w for w in alive if w.ready] or alive
            worker = candidates[self._next_worker % len(candidates)]
            self._next_worker += 1
            worker.outstanding[tile_id] = (payload, traced)
        worker.task_queue.put(("tile", tile_id, payload, traced))

    # ------------------------------------------------------------------
    # version control plane (hot model swap)
    # ------------------------------------------------------------------
    def _broadcast(self, message: tuple) -> None:
        with self._lock:
            targets = [w for w in self._workers if w.process.is_alive()]
        for worker in targets:
            try:
                worker.task_queue.put(message)
            except Exception:  # pragma: no cover - queue torn down mid-stop
                pass

    def load_version(self, version: str, replica: "ReplicaSpec") -> None:
        """Ship ``version``'s replica to every worker (and future respawns).

        The load message rides each worker's ordinary task queue, so it is
        applied after every tile dispatched before the deploy and before any
        tile dispatched after it -- a request pinned to the new version can
        never reach a worker that has not built it yet.  Updating the replica
        template first is what reuses the respawn plumbing: a replacement
        worker spawned later rebuilds the new version along with the rest.
        """
        with self._lock:
            self._replicas[version] = replica
        self._broadcast(("load", version, replica))

    def invalidate_version(self, version: str) -> None:
        """Clear every worker's epsilon cache for ``version`` (kept loaded)."""
        self.drop_sweeps(version)
        self._broadcast(("invalidate", version))

    def unload_version(self, version: str) -> None:
        """Drop ``version`` from every worker and from the respawn template."""
        with self._lock:
            self._replicas.pop(version, None)
        self.drop_sweeps(version)
        self._broadcast(("unload", version))

    # ------------------------------------------------------------------
    # shared epsilon sweeps
    # ------------------------------------------------------------------
    def publish_sweep(self, descriptor: SweepDescriptor) -> None:
        """Announce a parent-published shared sweep to every worker.

        The descriptor also joins the respawn template, so replacement
        workers spawned later attach the same segment.  The announcement
        rides the ordinary task queues: it is applied before any tile
        dispatched after it, exactly like version-control messages.
        """
        with self._lock:
            self._sweeps[descriptor.key()] = descriptor
        self._broadcast(("shm", descriptor))

    def drop_sweeps(self, version: str) -> None:
        """Forget ``version``'s sweeps (called when the parent unlinks them)."""
        with self._lock:
            for key in [k for k in self._sweeps if k[0] == version]:
                del self._sweeps[key]

    # ------------------------------------------------------------------
    def _collect(self) -> None:
        while not self._stop_event.is_set():
            try:
                message = self._result_queue.get(timeout=_LIVENESS_POLL_S)
            except Empty:
                self._reap_dead_workers()
                continue
            self._handle_message(message)
            # reap on the busy path too: under sustained traffic the queue is
            # never empty, and a crashed worker's futures must still fail
            # promptly rather than wait for a lull
            self._reap_dead_workers()

    def _handle_message(self, message) -> None:
        # "done" messages carry a fourth element (the worker executor's
        # drained fused-vs-fallback counters, or None) and a fifth (the
        # traced-tile span payload, or None); shorter tuples remain accepted
        # so control/startup messages keep their shape
        kind, tile_id, payload = message[0], message[1], message[2]
        fusion_events = message[3] if len(message) > 3 else None
        if fusion_events and self._fusion_handler is not None:
            self._fusion_handler(fusion_events)
        trace_payload = message[4] if len(message) > 4 else None
        if trace_payload and self._trace_handler is not None:
            # the payload's own clock sample tightens the offset first, so
            # the bias never exceeds this very message's transit latency
            self._record_clock(trace_payload.get("rank"), trace_payload)
            offset = self._clock_offsets.get(trace_payload.get("rank"), 0.0)
            self._trace_handler(
                tile_id,
                {
                    "rank": trace_payload.get("rank"),
                    "spans": [
                        {
                            **span,
                            "start_s": span["start_s"] + offset,
                            "end_s": span["end_s"] + offset,
                        }
                        for span in trace_payload.get("spans", ())
                    ],
                },
            )
        if kind == "control_error":
            # a version-load failed in worker `tile_id` (the rank); requests
            # pinned to that version fail per-request on that worker, so this
            # is surfaced for operators rather than failing any tile here
            self.last_control_error = payload
            return
        if kind == "ready":
            # a respawned replacement finished building its replica; its
            # handshake clock refines the rank's span-time offset
            self._record_clock(tile_id, payload)
            with self._lock:
                for worker in self._workers:
                    if worker.rank == tile_id:
                        worker.ready = True
            return
        if kind == "done":
            outcomes = [
                (value, None)
                if tag == "ok"
                else (None, TileExecutionError(f"request failed in worker:\n{value}"))
                for tag, value in payload
            ]
            self._finish(tile_id, outcomes, None)
        elif kind == "error":
            self._finish(
                tile_id,
                None,
                TileExecutionError(f"tile {tile_id} failed in worker:\n{payload}"),
            )
        # "fatal" past startup means a respawned replacement failed to build;
        # its process exits right after, so the liveness reaper handles it

    def _finish(self, tile_id: int, results, error) -> None:
        with self._lock:
            for worker in self._workers + self._retired:
                worker.outstanding.pop(tile_id, None)
        self._budget.forget(tile_id)
        self._result_handler(tile_id, results, error)

    def _reap_dead_workers(self) -> None:
        with self._lock:
            dead = [w for w in self._workers if not w.process.is_alive()]
            any_dead_with_work = any(worker.outstanding for worker in dead)
            # without a respawn budget an *idle* dead worker needs no action
            # (dispatch skips it); with one, replace it right away
            if not dead or not (
                any_dead_with_work
                or self._budget.respawns_used < self._budget.policy.max_respawns
            ):
                return
        # A worker may have completed tiles (results already on the queue)
        # before dying mid-way through a later one.  Deliver every queued
        # result first so only genuinely unfinished tiles are orphaned; the
        # short timeout also covers feeder-pipe data still in flight.
        while True:
            try:
                self._handle_message(self._result_queue.get(timeout=0.1))
            except Empty:
                break
        orphaned: list[tuple[int, list]] = []
        with self._lock:
            for worker in list(self._workers):
                if worker.process.is_alive():
                    continue
                # retire the dead worker so dispatch never targets it again
                self._workers.remove(worker)
                self._retired.append(worker)
                orphaned.extend(worker.outstanding.items())
                worker.outstanding.clear()
            # keep the pool at strength within the respawn budget
            while len(self._workers) < self._n_workers and self._budget.try_respawn():
                self._workers.append(self._spawn_worker())
        for tile_id, (payload, traced) in orphaned:
            # a tile may lose its worker max_task_retries times before its
            # futures fail; with no respawn policy (max_task_retries used
            # with max_respawns=0) a retry still succeeds when another
            # healthy worker can take the tile
            if self._budget.policy.max_task_retries and self._budget.try_retry(
                tile_id
            ):
                try:
                    self.dispatch(tile_id, payload, traced=traced)
                    continue
                except WorkerCrashError:
                    pass  # no healthy worker left for the retry: fail below
            self._result_handler(
                tile_id,
                None,
                WorkerCrashError(
                    f"worker process died with tile {tile_id} outstanding"
                ),
            )

    # ------------------------------------------------------------------
    def stop(self, abort: bool = False, timeout: float = 10.0) -> None:
        """Shut the pool down.

        With ``abort=False`` the workers drain their queued tiles and every
        completed result is still delivered through the collector before it
        stops -- only then is anything left over failed.  ``abort=True``
        terminates immediately.
        """
        if abort:
            self._stop_event.set()
            for worker in self._workers:
                if worker.process.is_alive():
                    worker.process.terminate()
        else:
            for worker in self._workers:
                try:
                    worker.task_queue.put(None)
                except Exception:  # pragma: no cover - queue already broken
                    pass
        for worker in self._workers + self._retired:
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.kill()
                worker.process.join(timeout=timeout)
        if not abort:
            # the workers have exited, so every result they produced is on
            # the queue; let the collector deliver them before stopping it
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                with self._lock:
                    if not any(worker.outstanding for worker in self._workers):
                        break
                time.sleep(0.01)
            self._stop_event.set()
        if self._collector is not None:
            self._collector.join(timeout=timeout)
            self._collector = None
        # fail anything still outstanding (abort path)
        leftovers: list[int] = []
        with self._lock:
            for worker in self._workers:
                leftovers.extend(worker.outstanding)
                worker.outstanding.clear()
        for tile_id in leftovers:
            self._result_handler(
                tile_id, None, WorkerCrashError("worker pool was shut down")
            )
