"""Serving telemetry: throughput, latency percentiles, batch occupancy.

The serving front-end is a throughput machine, so the numbers an operator
actually tunes against live here: aggregate requests/rows per second, the
end-to-end latency distribution (p50/p95/p99 derived from a fixed-bucket
lifetime histogram), and the batch-occupancy histogram that shows whether
the ``max_batch_rows`` / ``max_wait_ms`` flush policy is actually filling
tiles.

Latency percentiles come from :class:`repro.obs.metrics.Histogram`, not a
sliding sample window: a bounded deque forgets slow requests as soon as
enough fast ones arrive, which under load systematically *understates* the
tail.  ``latency_window_saturation`` reports how full the legacy window
would have been -- at 1.0 the old numbers were actively forgetting history.
The deque that remains (``_recent_rows``) only feeds
``drain_rate_rows_per_s``, where recency is the point.

The collector is a small lock-guarded accumulator (it is touched from client
threads, the dispatcher thread and the worker-pool collector thread);
:meth:`ServerStats.snapshot` freezes a consistent view into an immutable
:class:`StatsSnapshot`.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from dataclasses import dataclass, field

from ..core import backend as kernel_backend
from ..core import stability
from ..obs.metrics import DEFAULT_LATENCY_BUCKETS_MS, Histogram
from .executor import FUSION_EVENT_KEYS

__all__ = ["ServerStats", "StatsSnapshot"]


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable, self-consistent view of a server's counters."""

    uptime_s: float
    requests_completed: int
    requests_failed: int
    rows_completed: int
    tiles_executed: int
    throughput_rps: float
    """Completed requests per second of server uptime."""
    throughput_rows_per_s: float
    """Completed example rows per second of server uptime."""
    latency_p50_ms: float | None
    latency_p95_ms: float | None
    latency_p99_ms: float | None
    latency_mean_ms: float | None
    latency_window_saturation: float = 0.0
    """How full the legacy sliding latency window would be (completions over
    window size, capped at 1.0).  At 1.0 the old deque-window percentiles
    would have started dropping history -- the histogram ones never do."""
    latency_histogram_ms: dict = field(default_factory=dict)
    """The lifetime latency histogram: ``{"bounds", "counts", "sum",
    "count", "max"}`` (counts include a trailing overflow bucket)."""
    occupancy_histogram: dict[int, int] = field(default_factory=dict)
    """``{requests-per-tile: tile count}`` over the server's lifetime."""
    mean_batch_occupancy: float | None = None
    """Average number of pooled requests per executed tile."""
    mean_rows_per_tile: float | None = None
    per_version: dict[str, dict[str, int]] = field(default_factory=dict)
    """Per-model-version request counters:
    ``{version: {"completed", "failed", "rows"}}``.  Untagged requests (the
    single-model server surface) are not counted here."""
    kernel_backends: dict[str, dict] = field(default_factory=dict)
    """Kernel-dispatch telemetry from :mod:`repro.core.backend`:
    ``{kernel: {"selection": backend-or-"auto",
    "backends": {backend: {"calls", "rows"}}}}``."""
    fusion: dict = field(default_factory=dict)
    """Fused-tile telemetry: ``{"mode": REPRO_FUSED resolution,
    "fused_tiles", "fallback_tiles", ...}`` (every
    :data:`~repro.serve.executor.FUSION_EVENT_KEYS` counter).  Fallbacks are
    never silent -- a disabled/failed stability verdict shows up here."""
    drain_rate_rows_per_s: float | None = None
    """Recent serving drain rate (completed rows per second over the last
    few seconds of completions); the gateway's ``Retry-After`` estimator."""
    coalescing: dict = field(default_factory=dict)
    """Cross-connection pooling telemetry: of the tiles whose requests carry
    a connection ``source`` tag, how many pooled requests from *distinct*
    sources (``multi_source_tiles``), plus the max/mean distinct sources per
    tile.  Proof that separate sockets share tiles within a flush window."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        p50 = f"{self.latency_p50_ms:.2f}" if self.latency_p50_ms is not None else "-"
        p99 = f"{self.latency_p99_ms:.2f}" if self.latency_p99_ms is not None else "-"
        occ = (
            f"{self.mean_batch_occupancy:.2f}"
            if self.mean_batch_occupancy is not None
            else "-"
        )
        return (
            f"{self.requests_completed} ok / {self.requests_failed} failed in "
            f"{self.uptime_s:.2f}s ({self.throughput_rps:.1f} req/s, "
            f"{self.throughput_rows_per_s:.1f} rows/s), latency p50 {p50} ms / "
            f"p99 {p99} ms, {self.tiles_executed} tiles "
            f"(mean occupancy {occ} req/tile)"
        )


class ServerStats:
    """Thread-safe accumulator behind :meth:`PredictionServer.stats`."""

    #: Horizon of the drain-rate window: completions older than this many
    #: seconds no longer influence the Retry-After estimate.
    DRAIN_WINDOW_S = 5.0

    def __init__(self, latency_window: int = 4096, clock=time.monotonic) -> None:
        if latency_window < 1:
            raise ValueError("latency_window must be positive")
        self._clock = clock
        self._lock = threading.Lock()
        self._started_at = clock()
        self._latency_window = latency_window
        self._latency_ms = Histogram(DEFAULT_LATENCY_BUCKETS_MS)
        self._requests_completed = 0
        self._requests_failed = 0
        self._rows_completed = 0
        self._tiles_executed = 0
        self._tile_requests = 0
        self._tile_rows = 0
        self._occupancy: Counter[int] = Counter()
        self._per_version: dict[str, dict[str, int]] = {}
        self._fusion: dict[str, int] = dict.fromkeys(FUSION_EVENT_KEYS, 0)
        self._recent_rows: deque[tuple[float, int]] = deque(maxlen=latency_window)
        self._sourced_tiles = 0
        self._multi_source_tiles = 0
        self._source_total = 0
        self._max_sources = 0

    def reset_clock(self) -> None:
        """Restart the uptime window (called when the server starts)."""
        with self._lock:
            self._started_at = self._clock()

    def _version_counters_locked(self, version: str) -> dict[str, int]:
        counters = self._per_version.get(version)
        if counters is None:
            counters = {"completed": 0, "failed": 0, "rows": 0}
            self._per_version[version] = counters
        return counters

    def record_completion(
        self, latency_s: float, rows: int, version: str | None = None
    ) -> None:
        """One request finished successfully after ``latency_s`` seconds."""
        with self._lock:
            self._requests_completed += 1
            self._rows_completed += int(rows)
            self._latency_ms.observe(float(latency_s) * 1e3)
            self._recent_rows.append((self._clock(), int(rows)))
            if version is not None:
                counters = self._version_counters_locked(version)
                counters["completed"] += 1
                counters["rows"] += int(rows)

    def record_failure(self, version: str | None = None) -> None:
        """One request resolved with an error."""
        with self._lock:
            self._requests_failed += 1
            if version is not None:
                self._version_counters_locked(version)["failed"] += 1

    def record_fusion_events(self, events: dict[str, int]) -> None:
        """Fold one executor's drained fused-vs-fallback counters in.

        Called with :meth:`TileExecutor.consume_fusion_events` payloads from
        the inline dispatcher or (via the pool's ``fusion_handler``) from
        worker ``done`` messages; unknown keys are kept, so executor and
        stats schemas may evolve independently.
        """
        with self._lock:
            for key, value in events.items():
                self._fusion[key] = self._fusion.get(key, 0) + int(value)

    def record_tile(
        self, n_requests: int, rows: int, sources: int | None = None
    ) -> None:
        """One tile was handed to an executor with ``n_requests`` pooled.

        ``sources`` counts the *distinct* connection sources pooled into the
        tile (when the submitters tagged their requests); a tile with
        ``sources >= 2`` is direct evidence of cross-connection coalescing.
        """
        with self._lock:
            self._tiles_executed += 1
            self._tile_requests += int(n_requests)
            self._tile_rows += int(rows)
            self._occupancy[int(n_requests)] += 1
            if sources is not None and sources > 0:
                self._sourced_tiles += 1
                self._source_total += int(sources)
                self._max_sources = max(self._max_sources, int(sources))
                if sources >= 2:
                    self._multi_source_tiles += 1

    def drain_rate_rows_per_s(self) -> float | None:
        """Completed rows/s over the recent window (``None`` until warm).

        Measured from the oldest in-window completion to *now*, so the rate
        decays as the server stalls rather than freezing at its last good
        value -- exactly the behaviour a ``Retry-After`` estimate needs.
        """
        with self._lock:
            return self._drain_rate_locked()

    def _drain_rate_locked(self) -> float | None:
        now = self._clock()
        horizon = now - self.DRAIN_WINDOW_S
        while self._recent_rows and self._recent_rows[0][0] < horizon:
            self._recent_rows.popleft()
        if not self._recent_rows:
            return None
        rows = sum(entry[1] for entry in self._recent_rows)
        span = max(now - self._recent_rows[0][0], 1e-3)
        return rows / span

    def snapshot(self) -> StatsSnapshot:
        """Freeze a consistent view of every counter."""
        with self._lock:
            uptime = max(self._clock() - self._started_at, 1e-9)
            tiles = self._tiles_executed
            completed = self._requests_completed
            return StatsSnapshot(
                uptime_s=uptime,
                requests_completed=completed,
                requests_failed=self._requests_failed,
                rows_completed=self._rows_completed,
                tiles_executed=tiles,
                throughput_rps=completed / uptime,
                throughput_rows_per_s=self._rows_completed / uptime,
                latency_p50_ms=self._latency_ms.percentile(50.0),
                latency_p95_ms=self._latency_ms.percentile(95.0),
                latency_p99_ms=self._latency_ms.percentile(99.0),
                latency_mean_ms=self._latency_ms.mean(),
                latency_window_saturation=min(
                    1.0, completed / self._latency_window
                ),
                latency_histogram_ms=self._latency_ms.snapshot(),
                occupancy_histogram=dict(sorted(self._occupancy.items())),
                mean_batch_occupancy=(self._tile_requests / tiles) if tiles else None,
                mean_rows_per_tile=(self._tile_rows / tiles) if tiles else None,
                per_version={
                    version: dict(counters)
                    for version, counters in sorted(self._per_version.items())
                },
                kernel_backends=kernel_backend.stats_snapshot(),
                fusion={"mode": stability.fused_mode(), **self._fusion},
                drain_rate_rows_per_s=self._drain_rate_locked(),
                coalescing={
                    "tiles": self._sourced_tiles,
                    "multi_source_tiles": self._multi_source_tiles,
                    "max_sources": self._max_sources,
                    "mean_sources": (
                        self._source_total / self._sourced_tiles
                        if self._sourced_tiles
                        else None
                    ),
                },
            )
