"""HTTP serving gateway: the wire protocol in front of ``PredictionServer``.

This is the boundary real clients cross: a stdlib-only
(:class:`http.server.ThreadingHTTPServer`) JSON-over-HTTP front-end layered
on the versioned serving stack.  The endpoints:

``POST /predict``
    Body ``{"x": [[...], ...], "sampling": {...}, "version": "v2"?}``.
    ``x`` is one request's input batch (first axis = rows); ``sampling``
    holds any subset of the :class:`~repro.serve.executor.SamplingConfig`
    fields; ``version`` optionally pins a loaded model version (canary
    traffic), otherwise the request is pinned to the version active at
    admission.  The response carries the pin (``version``, ``generation``)
    plus ``predictions``, ``entropy``, ``mean_probabilities`` and
    ``sample_probabilities``.

``GET /healthz``
    Liveness and rollout state (active version/generation, worker count).

``GET /stats``
    The :class:`~repro.serve.stats.StatsSnapshot`, including the per-version
    request counters, the kernel-backend telemetry (``kernel_backends``:
    per-kernel backend selection plus call/row counters from
    :mod:`repro.core.backend`) and the fused-tile telemetry (``fusion``:
    the ``REPRO_FUSED`` mode plus fused-vs-fallback counters -- a tile that
    could not fuse is counted by reason, never silently).

``GET /models``
    Registered versions (fingerprints, loaded flags), the active deployment
    and the deploy history.

``POST /models/deploy`` / ``POST /models/rollback``
    Hot swap: ``{"version": "v2"}`` activates a registered version;
    rollback re-activates the previously active one.  In-flight requests
    finish on their pinned version -- see
    :meth:`~repro.serve.server.PredictionServer.deploy`.

Bit-exactness across the wire: responses are JSON with floats serialised via
``repr`` (Python's shortest round-trip representation), so a client parsing
``sample_probabilities`` back into a float64 array recovers **byte-identical**
values to a direct in-process ``mc_predict`` call -- the integration suite
asserts exactly that through a real socket.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

import numpy as np

from .executor import SamplingConfig
from .microbatcher import QueueFull
from .registry import (
    ModelRegistry,
    RollbackUnavailableError,
    UnknownVersionError,
    VersionConflictError,
)
from .server import PredictionServer, ServerClosed, ServerConfig

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..models.zoo import ReplicaSpec

__all__ = ["ServingGateway", "GatewayConfig"]

_SAMPLING_FIELDS = frozenset(SamplingConfig.__dataclass_fields__)


@dataclass(frozen=True)
class GatewayConfig:
    """Wire-level knobs of the HTTP gateway."""

    host: str = "127.0.0.1"
    port: int = 0
    """TCP port; ``0`` binds an ephemeral port (read it from ``address``)."""
    predict_timeout_s: float = 60.0
    """Per-request budget awaiting the serving future; exceeding it is 504."""
    max_body_bytes: int = 64 * 1024 * 1024
    """Requests with a larger ``Content-Length`` are refused with 413."""
    include_sample_probabilities: bool = True
    """Whether ``/predict`` responses carry the full ``(S, rows, classes)``
    tensor (the bit-exactness surface) in addition to the summaries."""


class _GatewayError(Exception):
    """Internal: an HTTP error response with a status code and message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Handler(BaseHTTPRequestHandler):
    """Request handler; the owning gateway hangs off the HTTP server object."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-gateway/1.0"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def gateway(self) -> "ServingGateway":
        return self.server.gateway  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # a serving hot path must not write to stderr per request

    def _respond(self, status: int, payload: dict) -> None:
        if status >= 400:
            # an error may leave an unread request body on the socket, which
            # would corrupt the next keep-alive request; drop the connection
            self.close_connection = True
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> dict:
        length = self.headers.get("Content-Length")
        if length is None:
            raise _GatewayError(411, "Content-Length is required")
        try:
            n_bytes = int(length)
        except ValueError:
            raise _GatewayError(400, "malformed Content-Length") from None
        if n_bytes < 0:
            # read(-1) would block until the client closes the socket
            raise _GatewayError(400, "malformed Content-Length")
        if n_bytes > self.gateway.config.max_body_bytes:
            raise _GatewayError(
                413, f"request body exceeds {self.gateway.config.max_body_bytes} bytes"
            )
        raw = self.rfile.read(n_bytes)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _GatewayError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(body, dict):
            raise _GatewayError(400, "request body must be a JSON object")
        return body

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._route("POST")

    def _route(self, method: str) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        routes = {
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/stats"): self._handle_stats,
            ("GET", "/models"): self._handle_models,
            ("POST", "/predict"): self._handle_predict,
            ("POST", "/models/deploy"): self._handle_deploy,
            ("POST", "/models/rollback"): self._handle_rollback,
        }
        handler = routes.get((method, path))
        try:
            if handler is None:
                known = sorted({p for (_, p) in routes})
                raise _GatewayError(
                    404, f"no route for {method} {path}; endpoints: {known}"
                )
            handler()
        except _GatewayError as exc:
            self._respond(exc.status, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - last-resort isolation
            self._respond(500, {"error": f"{type(exc).__name__}: {exc}"})

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def _handle_healthz(self) -> None:
        gateway = self.gateway
        active = gateway.prediction_server.active_deployment()
        self._respond(
            200,
            {
                "status": "ok",
                "active_version": active.version,
                "generation": active.generation,
                "n_workers": gateway.server_config.n_workers,
                "loaded_versions": gateway.prediction_server.loaded_versions(),
            },
        )

    def _handle_stats(self) -> None:
        snapshot = asdict(self.gateway.prediction_server.stats())
        # JSON object keys are strings; make the int-keyed histogram explicit
        snapshot["occupancy_histogram"] = {
            str(key): value
            for key, value in snapshot["occupancy_histogram"].items()
        }
        self._respond(200, snapshot)

    def _handle_models(self) -> None:
        gateway = self.gateway
        registry = gateway.registry
        active = registry.active
        loaded = set(gateway.prediction_server.loaded_versions())
        self._respond(
            200,
            {
                "active_version": active.version if active else None,
                "generation": active.generation if active else 0,
                "rollback_target": registry.rollback_target,
                "versions": [
                    {
                        "version": entry.version,
                        "fingerprint": entry.fingerprint,
                        "loaded": entry.version in loaded,
                        "active": bool(active and active.version == entry.version),
                    }
                    for entry in registry.versions()
                ],
                "history": [
                    {
                        "version": deployment.version,
                        "generation": deployment.generation,
                        "deployed_at": deployment.deployed_at,
                        "rolled_back": deployment.rolled_back,
                    }
                    for deployment in registry.history()
                ],
            },
        )

    def _parse_sampling(self, body: dict) -> SamplingConfig:
        sampling = body.get("sampling", {})
        if not isinstance(sampling, dict):
            raise _GatewayError(400, '"sampling" must be a JSON object')
        unknown = sorted(set(sampling) - _SAMPLING_FIELDS)
        if unknown:
            raise _GatewayError(
                400,
                f"unknown sampling fields {unknown}; "
                f"allowed: {sorted(_SAMPLING_FIELDS)}",
            )
        try:
            return SamplingConfig(**sampling)
        except (TypeError, ValueError) as exc:
            raise _GatewayError(400, f"invalid sampling config: {exc}") from None

    def _parse_inputs(self, body: dict) -> np.ndarray:
        if "x" not in body:
            raise _GatewayError(400, 'the request body needs an "x" input batch')
        try:
            x = np.asarray(body["x"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise _GatewayError(
                400, f'"x" is not a numeric array: {exc}'
            ) from None
        if x.ndim < 2:
            raise _GatewayError(
                400,
                "a request must be batched: expected (rows, ...) input, got "
                f"shape {x.shape}",
            )
        return x

    def _handle_predict(self) -> None:
        gateway = self.gateway
        body = self._read_json_body()
        x = self._parse_inputs(body)
        sampling = self._parse_sampling(body)
        requested = body.get("version")
        if requested is not None and not isinstance(requested, str):
            raise _GatewayError(400, '"version" must be a string')
        try:
            # the admission point: resolve once, report exactly this pin, and
            # submit with the explicit version so a concurrent deploy cannot
            # change what the request is served with
            version, generation = gateway.prediction_server.resolve_version(requested)
            future = gateway.prediction_server.submit(x, sampling, version=version)
        except UnknownVersionError as exc:
            raise _GatewayError(404, str(exc)) from None
        except QueueFull as exc:
            raise _GatewayError(429, str(exc)) from None
        except (ServerClosed, RuntimeError) as exc:
            raise _GatewayError(503, str(exc)) from None
        except ValueError as exc:
            raise _GatewayError(400, str(exc)) from None
        try:
            result = future.result(timeout=gateway.config.predict_timeout_s)
        except TimeoutError:
            raise _GatewayError(
                504,
                f"prediction did not complete within "
                f"{gateway.config.predict_timeout_s}s",
            ) from None
        except ServerClosed as exc:
            raise _GatewayError(503, str(exc)) from None
        except Exception as exc:
            raise _GatewayError(500, f"{type(exc).__name__}: {exc}") from None
        payload = {
            "version": version,
            "generation": generation,
            "predictions": result.predictions.tolist(),
            "entropy": result.entropy.tolist(),
            "mean_probabilities": result.mean_probabilities.tolist(),
        }
        if gateway.config.include_sample_probabilities:
            payload["sample_probabilities"] = result.sample_probabilities.tolist()
        self._respond(200, payload)

    def _handle_deploy(self) -> None:
        body = self._read_json_body()
        version = body.get("version")
        if not isinstance(version, str) or not version:
            raise _GatewayError(400, 'the body needs a "version" string')
        try:
            deployment = self.gateway.prediction_server.deploy(version)
        except UnknownVersionError as exc:
            raise _GatewayError(404, str(exc)) from None
        except VersionConflictError as exc:
            raise _GatewayError(409, str(exc)) from None
        except RuntimeError as exc:
            raise _GatewayError(503, str(exc)) from None
        self._respond(
            200,
            {
                "active_version": deployment.version,
                "generation": deployment.generation,
                "rolled_back": deployment.rolled_back,
            },
        )

    def _handle_rollback(self) -> None:
        length = self.headers.get("Content-Length")
        if length and length.strip() != "0":
            self._read_json_body()  # body is optional; drain it if present
        try:
            deployment = self.gateway.prediction_server.rollback()
        except RollbackUnavailableError as exc:
            raise _GatewayError(409, str(exc)) from None
        except RuntimeError as exc:
            raise _GatewayError(503, str(exc)) from None
        self._respond(
            200,
            {
                "active_version": deployment.version,
                "generation": deployment.generation,
                "rolled_back": deployment.rolled_back,
            },
        )


class _GatewayHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    gateway: "ServingGateway"


class ServingGateway:
    """HTTP front door over a :class:`PredictionServer` + model registry.

    Lifecycle mirrors the server's: :meth:`start` (or a ``with`` block) boots
    the prediction server, binds the socket and begins answering on a
    daemon thread; :meth:`close` shuts the HTTP listener down first (no new
    admissions) and then the serving stack (draining by default).

    ::

        registry = ModelRegistry()
        registry.register("v1", ReplicaSpec.capture(spec, model_v1))
        registry.deploy("v1")
        with ServingGateway(registry, ServerConfig(n_workers=2)) as gateway:
            url = f"http://{gateway.address[0]}:{gateway.address[1]}"
            ...  # POST {url}/predict, POST {url}/models/deploy, ...
    """

    def __init__(
        self,
        model_source: "ModelRegistry | ReplicaSpec",
        server_config: ServerConfig | None = None,
        config: GatewayConfig | None = None,
    ) -> None:
        self.prediction_server = PredictionServer(model_source, server_config)
        self.server_config = server_config or ServerConfig()
        self.config = config or GatewayConfig()
        self._httpd: _GatewayHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._closed = False

    @property
    def registry(self) -> ModelRegistry:
        """The model registry backing the serving stack."""
        return self.prediction_server.registry

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; resolves ephemeral port 0."""
        if self._httpd is None:
            raise RuntimeError("the gateway is not started")
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL of the running gateway."""
        host, port = self.address
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    def start(self) -> "ServingGateway":
        """Boot the serving stack and start answering HTTP requests."""
        if self._httpd is not None:
            raise RuntimeError("gateway already started")
        self.prediction_server.start()
        try:
            self._httpd = _GatewayHTTPServer(
                (self.config.host, self.config.port), _Handler
            )
        except BaseException:
            self.prediction_server.close(drain=False)
            raise
        self._httpd.gateway = self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="serve-gateway",
            daemon=True,
        )
        self._thread.start()
        return self

    def __enter__(self) -> "ServingGateway":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def close(self, drain: bool = True) -> None:
        """Stop listening, then shut the serving stack down."""
        if self._closed:
            return
        self._closed = True
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.prediction_server.close(drain=drain)

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`close` (CLI convenience)."""
        if self._thread is None:
            raise RuntimeError("the gateway is not started")
        try:
            while self._thread.is_alive():
                self._thread.join(timeout=0.5)
        except KeyboardInterrupt:
            self.close(drain=False)


# ----------------------------------------------------------------------
# CLI: boot a demo gateway (used by the CI gateway job's curl probes)
# ----------------------------------------------------------------------
def _build_demo_registry(model_name: str, n_versions: int) -> ModelRegistry:
    from ..models.zoo import ReplicaSpec, get_model

    spec = get_model(model_name, reduced=True)
    registry = ModelRegistry()
    for index in range(1, n_versions + 1):
        # distinct build seeds -> genuinely different weights per version, so
        # a deploy/rollback visibly changes the served bytes
        replica = ReplicaSpec.capture(
            spec, spec.build_bayesian(seed=100 + index), build_seed=0
        )
        registry.register(f"v{index}", replica)
    registry.deploy("v1")
    return registry


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.serve.gateway``: serve a freshly built model zoo entry."""
    import argparse

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8123)
    parser.add_argument("--model", default="B-MLP", help="zoo name (reduced variant)")
    parser.add_argument(
        "--versions", type=int, default=2, help="how many versions to register"
    )
    parser.add_argument(
        "--workers", type=int, default=0, help="worker processes (0 = inline)"
    )
    args = parser.parse_args(argv)
    registry = _build_demo_registry(args.model, args.versions)
    gateway = ServingGateway(
        registry,
        ServerConfig(n_workers=args.workers),
        GatewayConfig(host=args.host, port=args.port),
    )
    gateway.start()
    host, port = gateway.address
    print(f"serving {args.model} ({args.versions} versions) on http://{host}:{port}",
          flush=True)
    gateway.serve_forever()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI job
    import sys

    sys.exit(main())
