"""HTTP serving gateway: the versioned ``/v1`` wire API over ``PredictionServer``.

This is the boundary real clients cross: a stdlib-only
(:class:`http.server.ThreadingHTTPServer`) JSON-over-HTTP front-end layered
on the versioned serving stack.  The stable wire surface is versioned under
``/v1``; the PR 5 unversioned paths (``/predict``, ``/healthz``, ...) remain
as aliases that answer identically plus a ``Deprecation: true`` header.

``POST /v1/predict``
    Body ``{"x": [[...], ...], "sampling": {...}, "version": "v2"?}``.
    ``x`` is one request's input batch (first axis = rows); ``sampling``
    holds any subset of the :class:`~repro.serve.executor.SamplingConfig`
    fields (unknown fields are rejected); ``version`` optionally pins a
    loaded model version (canary traffic), otherwise the request is pinned
    to the version active at admission.  The response carries the pin
    (``version``, ``generation``) plus ``predictions``, ``entropy``,
    ``mean_probabilities`` and ``sample_probabilities``.  Large
    ``sample_probabilities`` tensors are sent with chunked transfer
    encoding, one Monte-Carlo sample per chunk, so the gateway never
    buffers the whole ``(S, rows, classes)`` JSON in memory -- the bytes
    on the wire are identical to the buffered encoding either way.

``GET /v1/healthz``
    Liveness and rollout state (active version/generation, worker count).

``GET /v1/stats``
    The :class:`~repro.serve.stats.StatsSnapshot` (per-version counters,
    kernel-backend and fused-tile telemetry, the ``coalescing`` block
    proving cross-connection tile sharing), plus the gateway's
    ``admission`` block (admitted / shed counters), the per-tenant
    ``tenants`` block, and a ``queue`` block (pending rows, blocked
    waiters, the current ``Retry-After`` estimate).

``GET /v1/models``
    Registered versions (fingerprints, loaded flags), the active deployment
    and the deploy history.

``POST /v1/models/deploy`` / ``POST /v1/models/rollback``
    Hot swap: ``{"version": "v2"}`` activates a registered version;
    rollback re-activates the previously active one.  In-flight requests
    finish on their pinned version -- see
    :meth:`~repro.serve.server.PredictionServer.deploy`.

``GET /v1/metrics``
    Prometheus text exposition (0.0.4): gateway push counters
    (``repro_gateway_*``) plus pull-model families scraped live from the
    serving stack (``repro_requests_total``, ``repro_request_latency_ms``,
    ``repro_admission_requests_total``, ``repro_fusion_events_total``,
    ``repro_kernel_calls_total``, ...).  See :mod:`repro.obs`.

``GET /v1/trace/<id>`` / ``GET /v1/traces?slowest=N``
    Per-request span trees from the bounded trace ring.  Every traced
    predict response carries its trace id in the ``X-Request-Id`` header;
    ``/v1/traces`` returns the slowest-N exemplars.  Tracing rides headers
    and side channels only -- the predict response *body* is byte-identical
    with tracing on, off (``REPRO_OBS=0``) or sampled.

**Errors** are a structured envelope::

    {"error": {"code": "<machine_readable>", "message": "...",
               "retry_after_s": 1.25}}        # retry_after_s on 429 only

with stable codes (``bad_request``, ``invalid_json``, ``truncated_body``,
``invalid_sampling``, ``invalid_input``, ``length_required``,
``body_too_large``, ``not_found``, ``unknown_version``,
``version_conflict``, ``rollback_unavailable``, ``rate_limited``,
``overloaded``, ``unavailable``, ``timeout``, ``internal``).

**Admission control** (multi-tenant overload policy): tenants are
identified by a header (default ``X-Tenant``) and mapped to tiers
(:class:`~repro.serve.admission.AdmissionConfig`).  A tenant over its
token-bucket rate is shed with ``429`` + ``Retry-After`` before touching
the serving queue; row-budget backpressure from the
:class:`~repro.serve.microbatcher.MicroBatcher` is likewise surfaced as
``429`` + ``Retry-After`` (computed from the queue depth and the recent
drain rate) instead of blocking the handler thread -- a tier may buy a
bounded wait (``max_wait_ms``) and a ``priority`` that sheds last.  An
admitted request is *never* dropped: it either completes or fails with an
explicit 5xx.

Bit-exactness across the wire: responses are JSON with floats serialised via
``repr`` (Python's shortest round-trip representation), so a client parsing
``sample_probabilities`` back into a float64 array recovers **byte-identical**
values to a direct in-process ``mc_predict`` call -- the integration suite
asserts exactly that through a real socket, on ``/v1`` and the legacy
aliases, while overload traffic is being shed around the asserted requests.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from dataclasses import asdict, dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

import numpy as np

from ..obs.adapters import bind_serving_collectors
from ..obs.metrics import MetricsRegistry, obs_enabled
from .admission import AdmissionConfig, AdmissionController, RateLimitedError
from .executor import SamplingConfig
from .microbatcher import QueueFull
from .registry import (
    ModelRegistry,
    RollbackUnavailableError,
    UnknownVersionError,
    VersionConflictError,
)
from .server import PredictionServer, ServerClosed, ServerConfig
from .worker import WorkerCrashError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..models.zoo import ReplicaSpec

__all__ = ["ServingGateway", "GatewayConfig"]

_SAMPLING_FIELDS = frozenset(SamplingConfig.__dataclass_fields__)

#: Unversioned (PR 5) paths kept as deprecated aliases of the /v1 routes.
_LEGACY_ALIASES = {
    "/predict": "/v1/predict",
    "/healthz": "/v1/healthz",
    "/stats": "/v1/stats",
    "/models": "/v1/models",
    "/models/deploy": "/v1/models/deploy",
    "/models/rollback": "/v1/models/rollback",
}


@dataclass(frozen=True)
class GatewayConfig:
    """Wire-level knobs of the HTTP gateway."""

    host: str = "127.0.0.1"
    port: int = 0
    """TCP port; ``0`` binds an ephemeral port (read it from ``address``)."""
    predict_timeout_s: float = 60.0
    """Per-request budget awaiting the serving future; exceeding it is 504."""
    max_body_bytes: int = 64 * 1024 * 1024
    """Requests with a larger ``Content-Length`` are refused with 413."""
    include_sample_probabilities: bool = True
    """Whether ``/v1/predict`` responses carry the full ``(S, rows, classes)``
    tensor (the bit-exactness surface) in addition to the summaries."""
    admission: AdmissionConfig | None = None
    """Tenant identification and tier policies; ``None`` is the default
    single-tier, unlimited, non-blocking policy."""
    retry_after_floor_s: float = 0.05
    """Lower clamp of the computed ``Retry-After`` hint."""
    retry_after_default_s: float = 1.0
    """``Retry-After`` before the drain-rate estimator has warmed up."""
    retry_after_cap_s: float = 30.0
    """Upper clamp of the computed ``Retry-After`` hint."""
    stream_threshold_bytes: int = 4 * 1024 * 1024
    """Predict responses whose ``sample_probabilities`` JSON is estimated
    above this are sent chunked, one sample per chunk (identical bytes)."""
    access_log_path: str | None = None
    """Opt-in structured access log: append one JSON line per request to
    this path (the ``REPRO_ACCESS_LOG`` environment variable is the
    fallback).  Never written to the response socket."""


class _GatewayError(Exception):
    """Internal: an HTTP error response with a status, code and message."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after_s = retry_after_s


class _Handler(BaseHTTPRequestHandler):
    """Request handler; the owning gateway hangs off the HTTP server object."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-gateway/2.0"
    # Nagle + the peer's delayed ACK stalls keep-alive round trips for
    # ~40ms when the unbuffered header writes straddle packets
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def gateway(self) -> "ServingGateway":
        return self.server.gateway  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # a serving hot path must not write to stderr per request

    def _send_common_headers(
        self,
        status: int,
        retry_after_s: float | None,
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self._responded_status = status
        self.send_header("Content-Type", content_type)
        if self._request_id is not None:
            # the trace id doubles as the request id; it rides a header so
            # the response *body* stays byte-identical with tracing off
            self.send_header("X-Request-Id", self._request_id)
        if self._deprecated:
            self.send_header("Deprecation", "true")
        if retry_after_s is not None:
            # the header is integer seconds (RFC 9110); the envelope carries
            # the precise float
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after_s))))

    def _respond(
        self, status: int, payload: dict, retry_after_s: float | None = None
    ) -> None:
        if status >= 400 and not self._body_consumed:
            # an unread request body would corrupt the next keep-alive
            # request on this socket; drop the connection.  A fully-read
            # body keeps the connection reusable even after a 4xx.
            self.close_connection = True
        body = json.dumps(payload).encode()
        self._send_common_headers(status, retry_after_s)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_text(self, status: int, text: str) -> None:
        body = text.encode()
        self._send_common_headers(
            status, None, content_type="text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_error(self, exc: _GatewayError) -> None:
        error: dict = {"code": exc.code, "message": str(exc)}
        if exc.retry_after_s is not None:
            error["retry_after_s"] = exc.retry_after_s
        self._respond(exc.status, {"error": error}, retry_after_s=exc.retry_after_s)

    def _read_json_body(self) -> dict:
        length = self.headers.get("Content-Length")
        if length is None:
            raise _GatewayError(411, "length_required", "Content-Length is required")
        try:
            n_bytes = int(length)
        except ValueError:
            raise _GatewayError(
                400, "bad_request", "malformed Content-Length"
            ) from None
        if n_bytes < 0:
            # read(-1) would block until the client closes the socket
            raise _GatewayError(400, "bad_request", "malformed Content-Length")
        if n_bytes > self.gateway.config.max_body_bytes:
            raise _GatewayError(
                413,
                "body_too_large",
                f"request body exceeds {self.gateway.config.max_body_bytes} bytes",
            )
        # rfile.read(n) may return fewer bytes than requested (slow clients,
        # interrupted transfers); loop until complete or the stream ends
        chunks: list[bytes] = []
        remaining = n_bytes
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 1 << 16))
            if not chunk:
                raise _GatewayError(
                    400,
                    "truncated_body",
                    f"request body truncated: expected {n_bytes} bytes, "
                    f"got {n_bytes - remaining}",
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        self._body_consumed = True
        raw = b"".join(chunks)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _GatewayError(
                400, "invalid_json", f"request body is not valid JSON: {exc}"
            ) from None
        if not isinstance(body, dict):
            raise _GatewayError(
                400, "invalid_json", "request body must be a JSON object"
            )
        return body

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._route("POST")

    def _route(self, method: str) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        self._deprecated = False
        # GET requests carry no body; POST bodies are unread until
        # _read_json_body drains them (keep-alive safety on errors)
        self._body_consumed = method == "GET"
        self._route_started = time.monotonic()
        self._responded_status = 0
        self._request_id: str | None = None
        self._trace_handle = None
        self._access: dict | None = None
        canonical = _LEGACY_ALIASES.get(path)
        if canonical is not None:
            self._deprecated = True
            path = canonical
        routes = {
            ("GET", "/v1/healthz"): self._handle_healthz,
            ("GET", "/v1/stats"): self._handle_stats,
            ("GET", "/v1/models"): self._handle_models,
            ("GET", "/v1/metrics"): self._handle_metrics,
            ("GET", "/v1/traces"): self._handle_traces,
            ("POST", "/v1/predict"): self._handle_predict,
            ("POST", "/v1/models/deploy"): self._handle_deploy,
            ("POST", "/v1/models/rollback"): self._handle_rollback,
        }
        handler = routes.get((method, path))
        if handler is None and method == "GET" and path.startswith("/v1/trace/"):
            trace_id = path[len("/v1/trace/"):]
            handler = lambda: self._handle_trace(trace_id)  # noqa: E731
        try:
            if handler is None:
                known = sorted({p for (_, p) in routes} | {"/v1/trace/<id>"})
                raise _GatewayError(
                    404,
                    "not_found",
                    f"no route for {method} {path}; endpoints: {known}",
                )
            handler()
        except _GatewayError as exc:
            if exc.status == 429 and self._access is not None:
                self._access["shed_reason"] = exc.code
            self._respond_error(exc)
        except Exception as exc:  # pragma: no cover - last-resort isolation
            self._respond_error(
                _GatewayError(500, "internal", f"{type(exc).__name__}: {exc}")
            )
        finally:
            self._finalize_request(method, path)

    def _finalize_request(self, method: str, path: str) -> None:
        """Close the request trace, push gateway metrics, write the access log.

        Runs after the response bytes are on the wire, so none of it can
        perturb the payload.  ``finish`` is idempotent: handlers that already
        closed the handle with a precise status ("ok", "aborted") win over
        the status-code fallback here.
        """
        gateway = self.gateway
        status = self._responded_status
        handle = self._trace_handle
        if handle is not None:
            if status == 429:
                handle.finish("shed")
            elif status >= 400 or status == 0:
                handle.finish("error")
            else:
                handle.finish("ok")
        latency_ms = (time.monotonic() - self._route_started) * 1e3
        access = self._access
        if gateway._obs_enabled and access is not None:
            tier = access.get("tier") or "standard"
            gateway._m_requests.labels(
                tenant=access.get("tenant") or "-", tier=tier, status=str(status)
            ).inc()
            gateway._m_latency.labels(tier=tier).observe(latency_ms)
            reason = access.get("shed_reason")
            if reason:
                gateway._m_shed.labels(reason=reason).inc()
        log = gateway.access_log
        if log is not None:
            record = {
                "ts": round(time.time(), 6),
                "method": method,
                "path": path,
                "status": status,
                "latency_ms": round(latency_ms, 3),
                "tenant": access.get("tenant") if access else None,
                "tier": access.get("tier") if access else None,
                "request_id": self._request_id,
            }
            if access and access.get("shed_reason"):
                record["shed_reason"] = access["shed_reason"]
            log.write(record)

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def _handle_healthz(self) -> None:
        gateway = self.gateway
        active = gateway.prediction_server.active_deployment()
        self._respond(
            200,
            {
                "status": "ok",
                "active_version": active.version,
                "generation": active.generation,
                "n_workers": gateway.server_config.n_workers,
                "loaded_versions": gateway.prediction_server.loaded_versions(),
            },
        )

    def _handle_stats(self) -> None:
        gateway = self.gateway
        snapshot = asdict(gateway.prediction_server.stats())
        # JSON object keys are strings; make the int-keyed histogram explicit
        snapshot["occupancy_histogram"] = {
            str(key): value
            for key, value in snapshot["occupancy_histogram"].items()
        }
        snapshot["admission"] = gateway.admission.snapshot()
        snapshot["tenants"] = gateway.admission.tenants_snapshot()
        snapshot["queue"] = {
            "pending_rows": gateway.prediction_server.pending_rows,
            "waiting_requests": gateway.prediction_server.waiting_requests,
            "retry_after_s_estimate": gateway.compute_retry_after_s(),
        }
        self._respond(200, snapshot)

    def _handle_models(self) -> None:
        gateway = self.gateway
        registry = gateway.registry
        active = registry.active
        loaded = set(gateway.prediction_server.loaded_versions())
        self._respond(
            200,
            {
                "active_version": active.version if active else None,
                "generation": active.generation if active else 0,
                "rollback_target": registry.rollback_target,
                "versions": [
                    {
                        "version": entry.version,
                        "fingerprint": entry.fingerprint,
                        "loaded": entry.version in loaded,
                        "active": bool(active and active.version == entry.version),
                    }
                    for entry in registry.versions()
                ],
                "history": [
                    {
                        "version": deployment.version,
                        "generation": deployment.generation,
                        "deployed_at": deployment.deployed_at,
                        "rolled_back": deployment.rolled_back,
                    }
                    for deployment in registry.history()
                ],
            },
        )

    def _handle_metrics(self) -> None:
        registry = self.gateway.metrics
        registry.collect()  # refresh pull-model families from live snapshots
        self._respond_text(200, registry.render())

    def _handle_trace(self, trace_id: str) -> None:
        record = self.gateway.tracer.get(trace_id)
        if record is None:
            raise _GatewayError(
                404,
                "not_found",
                f"no recorded trace {trace_id!r} (the ring keeps the most "
                f"recent traces plus the slowest exemplars)",
            )
        self._respond(200, record)

    def _handle_traces(self) -> None:
        query = parse_qs(urlsplit(self.path).query)
        try:
            n = int(query.get("slowest", ["8"])[0])
        except ValueError:
            raise _GatewayError(
                400, "bad_request", '"slowest" must be an integer'
            ) from None
        tracer = self.gateway.tracer
        self._respond(
            200,
            {
                "traces": tracer.slowest(n),
                "recorded": tracer.recorded_count,
                "open": tracer.open_count,
            },
        )

    def _parse_sampling(self, body: dict) -> SamplingConfig:
        sampling = body.get("sampling", {})
        if not isinstance(sampling, dict):
            raise _GatewayError(
                400, "invalid_sampling", '"sampling" must be a JSON object'
            )
        unknown = sorted(set(sampling) - _SAMPLING_FIELDS)
        if unknown:
            raise _GatewayError(
                400,
                "invalid_sampling",
                f"unknown sampling fields {unknown}; "
                f"allowed: {sorted(_SAMPLING_FIELDS)}",
            )
        try:
            return SamplingConfig(**sampling)
        except (TypeError, ValueError) as exc:
            raise _GatewayError(
                400, "invalid_sampling", f"invalid sampling config: {exc}"
            ) from None

    def _parse_inputs(self, body: dict) -> np.ndarray:
        if "x" not in body:
            raise _GatewayError(
                400, "invalid_input", 'the request body needs an "x" input batch'
            )
        try:
            x = np.asarray(body["x"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise _GatewayError(
                400, "invalid_input", f'"x" is not a numeric array: {exc}'
            ) from None
        if x.ndim < 2:
            raise _GatewayError(
                400,
                "invalid_input",
                "a request must be batched: expected (rows, ...) input, got "
                f"shape {x.shape}",
            )
        return x

    def _handle_predict(self) -> None:
        gateway = self.gateway
        admission = gateway.admission
        body = self._read_json_body()
        x = self._parse_inputs(body)
        sampling = self._parse_sampling(body)
        requested = body.get("version")
        if requested is not None and not isinstance(requested, str):
            raise _GatewayError(400, "invalid_input", '"version" must be a string')
        tenant = admission.resolve_tenant(
            self.headers.get(admission.config.tenant_header)
        )
        tier_name, _ = admission.tier_of(tenant)
        self._access = {"tenant": tenant, "tier": tier_name}
        handle = gateway.tracer.begin(
            kind="predict", tenant=tenant, tier=tier_name, rows=int(x.shape[0])
        )
        if handle is not None:
            # the gateway owns the handle's lifetime: the server threads its
            # queue_wait/execute/worker spans through it but must not finish
            # it before the serialization span below is recorded
            handle.deferred = True
            self._trace_handle = handle
            self._request_id = handle.trace_id
        try:
            policy = admission.admit(tenant)
        except RateLimitedError as exc:
            raise _GatewayError(
                429, "rate_limited", str(exc), retry_after_s=exc.retry_after_s
            ) from None
        admitted_at = time.monotonic()
        if handle is not None:
            handle.add_span("admission", self._route_started, admitted_at)
        # one source tag per client socket: a tile pooling several distinct
        # tags is cross-connection coalescing, surfaced in /v1/stats
        source = f"{self.client_address[0]}:{self.client_address[1]}"
        try:
            # the admission point: resolve once, report exactly this pin, and
            # submit with the explicit version so a concurrent deploy cannot
            # change what the request is served with
            version, generation = gateway.prediction_server.resolve_version(requested)
            future = gateway.prediction_server.submit(
                x,
                sampling,
                version=version,
                block=policy.max_wait_ms > 0,
                timeout=(policy.max_wait_ms / 1e3) if policy.max_wait_ms > 0 else None,
                priority=policy.priority,
                source=source,
                trace=handle,
            )
        except UnknownVersionError as exc:
            raise _GatewayError(404, "unknown_version", str(exc)) from None
        except QueueFull as exc:
            admission.record_shed(tenant)
            retry_after = gateway.compute_retry_after_s(exc.pending_rows)
            raise _GatewayError(
                429,
                "overloaded",
                f"serving queue is full ({exc.reason}): {exc}",
                retry_after_s=retry_after,
            ) from None
        except (ServerClosed, RuntimeError) as exc:
            raise _GatewayError(503, "unavailable", str(exc)) from None
        except ValueError as exc:
            raise _GatewayError(400, "invalid_input", str(exc)) from None
        admission.record_admitted(tenant, rows=int(x.shape[0]))
        waiting_from = admitted_at
        try:
            result = future.result(timeout=gateway.config.predict_timeout_s)
        except TimeoutError:
            raise _GatewayError(
                504,
                "timeout",
                f"prediction did not complete within "
                f"{gateway.config.predict_timeout_s}s",
            ) from None
        except ServerClosed as exc:
            if handle is not None:
                handle.finish("aborted")
            raise _GatewayError(503, "unavailable", str(exc)) from None
        except Exception as exc:
            if handle is not None and isinstance(exc, WorkerCrashError):
                handle.finish("aborted")
            raise _GatewayError(
                500, "internal", f"{type(exc).__name__}: {exc}"
            ) from None
        serialization_from = time.monotonic()
        if handle is not None:
            handle.add_span(
                "waiting_room", waiting_from, serialization_from, version=version
            )
        payload = {
            "version": version,
            "generation": generation,
            "predictions": result.predictions.tolist(),
            "entropy": result.entropy.tolist(),
            "mean_probabilities": result.mean_probabilities.tolist(),
        }
        streamed = False
        if not gateway.config.include_sample_probabilities:
            self._respond(200, payload)
        else:
            samples = result.sample_probabilities
            # ~17 digits + sign/dot/exponent/comma per float64 repr; a
            # deliberate overestimate only moves responses into the
            # (byte-identical) streaming path earlier
            estimated_bytes = samples.size * 26
            if estimated_bytes < gateway.config.stream_threshold_bytes:
                payload["sample_probabilities"] = samples.tolist()
                self._respond(200, payload)
            else:
                streamed = True
                self._respond_predict_streaming(payload, samples)
        if handle is not None:
            handle.add_span(
                "serialization",
                serialization_from,
                time.monotonic(),
                streamed=streamed,
            )
            handle.finish("ok")

    def _respond_predict_streaming(self, payload: dict, samples: np.ndarray) -> None:
        """Send the predict payload chunked, one Monte-Carlo sample at a time.

        ``json.dumps`` serialises floats via ``repr`` whether the tensor is
        dumped whole or per-sample, and ``sample_probabilities`` is appended
        exactly where the buffered encoding would place it -- so the
        concatenated chunks are byte-identical to the non-streaming body.
        Peak memory is O(rows * classes) instead of O(S * rows * classes).
        """
        self._send_common_headers(200, None)
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        head = json.dumps(payload)
        assert head.endswith("}")
        self._write_chunk(head[:-1].encode() + b', "sample_probabilities": [')
        for index in range(samples.shape[0]):
            piece = json.dumps(samples[index].tolist())
            if index:
                # json.dumps' default item separator, so the concatenation
                # matches the buffered encoding byte for byte
                piece = ", " + piece
            self._write_chunk(piece.encode())
        self._write_chunk(b"]}")
        self.wfile.write(b"0\r\n\r\n")

    def _write_chunk(self, data: bytes) -> None:
        if not data:  # a zero-length chunk would terminate the stream
            return
        self.wfile.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")

    def _handle_deploy(self) -> None:
        body = self._read_json_body()
        version = body.get("version")
        if not isinstance(version, str) or not version:
            raise _GatewayError(
                400, "invalid_input", 'the body needs a "version" string'
            )
        try:
            deployment = self.gateway.prediction_server.deploy(version)
        except UnknownVersionError as exc:
            raise _GatewayError(404, "unknown_version", str(exc)) from None
        except VersionConflictError as exc:
            raise _GatewayError(409, "version_conflict", str(exc)) from None
        except RuntimeError as exc:
            raise _GatewayError(503, "unavailable", str(exc)) from None
        self._respond(
            200,
            {
                "active_version": deployment.version,
                "generation": deployment.generation,
                "rolled_back": deployment.rolled_back,
            },
        )

    def _handle_rollback(self) -> None:
        length = self.headers.get("Content-Length")
        if length and length.strip() != "0":
            self._read_json_body()  # body is optional; drain it if present
        else:
            self._body_consumed = True
        try:
            deployment = self.gateway.prediction_server.rollback()
        except RollbackUnavailableError as exc:
            raise _GatewayError(409, "rollback_unavailable", str(exc)) from None
        except RuntimeError as exc:
            raise _GatewayError(503, "unavailable", str(exc)) from None
        self._respond(
            200,
            {
                "active_version": deployment.version,
                "generation": deployment.generation,
                "rolled_back": deployment.rolled_back,
            },
        )


class _AccessLog:
    """Opt-in structured access log: one compact JSON line per request.

    Appends to a regular file under a lock (handler threads are concurrent)
    and flushes per line so an external tailer sees complete records.  It is
    a side channel only -- nothing here ever touches the response socket.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8")

    def write(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            if self._file is None:
                return
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class _GatewayHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # socketserver's default accept backlog of 5 resets connections under a
    # multi-tenant burst; shedding is the admission controller's job, not
    # the kernel's
    request_queue_size = 128
    gateway: "ServingGateway"


class ServingGateway:
    """HTTP front door over a :class:`PredictionServer` + model registry.

    Lifecycle mirrors the server's: :meth:`start` (or a ``with`` block) boots
    the prediction server, binds the socket and begins answering on a
    daemon thread; :meth:`close` shuts the HTTP listener down first (no new
    admissions) and then the serving stack (draining by default).

    ::

        registry = ModelRegistry()
        registry.register("v1", ReplicaSpec.capture(spec, model_v1))
        registry.deploy("v1")
        with ServingGateway(registry, ServerConfig(n_workers=2)) as gateway:
            url = f"http://{gateway.address[0]}:{gateway.address[1]}"
            ...  # POST {url}/v1/predict, POST {url}/v1/models/deploy, ...
    """

    def __init__(
        self,
        model_source: "ModelRegistry | ReplicaSpec",
        server_config: ServerConfig | None = None,
        config: GatewayConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.prediction_server = PredictionServer(model_source, server_config)
        self.server_config = server_config or ServerConfig()
        self.config = config or GatewayConfig()
        self.admission = AdmissionController(self.config.admission)
        self._httpd: _GatewayHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._closed = False
        # observability: resolved at construction so two gateways built under
        # different REPRO_OBS values coexist in one process
        self._obs_enabled = obs_enabled()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._serving_collector = None
        if self._obs_enabled:
            self._serving_collector = bind_serving_collectors(self.metrics, self)
        self._m_requests = self.metrics.counter(
            "repro_gateway_requests_total",
            "Predict requests seen by the gateway, by tenant/tier/HTTP status.",
            ("tenant", "tier", "status"),
        )
        self._m_latency = self.metrics.histogram(
            "repro_gateway_request_latency_ms",
            "End-to-end gateway predict handler latency, milliseconds.",
            ("tier",),
        )
        self._m_shed = self.metrics.counter(
            "repro_gateway_shed_total",
            "Predict requests shed at the gateway, by error code.",
            ("reason",),
        )
        self.access_log: _AccessLog | None = None

    @property
    def registry(self) -> ModelRegistry:
        """The model registry backing the serving stack."""
        return self.prediction_server.registry

    @property
    def tracer(self):
        """The request :class:`~repro.obs.trace.Tracer` (owned by the server)."""
        return self.prediction_server.tracer

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; resolves ephemeral port 0."""
        if self._httpd is None:
            raise RuntimeError("the gateway is not started")
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL of the running gateway."""
        host, port = self.address
        return f"http://{host}:{port}"

    def compute_retry_after_s(self, pending_rows: int | None = None) -> float:
        """Estimate when a shed client should retry.

        The queue depth divided by the recent drain rate is how long the
        backlog needs to clear; clamped to
        ``[retry_after_floor_s, retry_after_cap_s]`` and defaulting to
        ``retry_after_default_s`` while the rate estimator is cold.
        """
        if pending_rows is None:
            pending_rows = self.prediction_server.pending_rows
        rate = self.prediction_server.drain_rate_rows_per_s()
        config = self.config
        if rate is None or rate <= 0:
            estimate = config.retry_after_default_s
        else:
            estimate = pending_rows / rate
        estimate = min(max(estimate, config.retry_after_floor_s), config.retry_after_cap_s)
        return math.ceil(estimate * 1e3) / 1e3

    # ------------------------------------------------------------------
    def start(self) -> "ServingGateway":
        """Boot the serving stack and start answering HTTP requests."""
        if self._httpd is not None:
            raise RuntimeError("gateway already started")
        log_path = self.config.access_log_path or os.environ.get("REPRO_ACCESS_LOG")
        if log_path:
            self.access_log = _AccessLog(log_path)
        self.prediction_server.start()
        try:
            self._httpd = _GatewayHTTPServer(
                (self.config.host, self.config.port), _Handler
            )
        except BaseException:
            self.prediction_server.close(drain=False)
            raise
        self._httpd.gateway = self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="serve-gateway",
            daemon=True,
        )
        self._thread.start()
        return self

    def __enter__(self) -> "ServingGateway":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def close(self, drain: bool = True) -> None:
        """Stop listening, then shut the serving stack down."""
        if self._closed:
            return
        self._closed = True
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.prediction_server.close(drain=drain)
        if self._serving_collector is not None:
            # a collector scraping a closed server would raise
            self.metrics.unregister_collector(self._serving_collector)
            self._serving_collector = None
        if self.access_log is not None:
            self.access_log.close()
            self.access_log = None

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`close` (CLI convenience)."""
        if self._thread is None:
            raise RuntimeError("the gateway is not started")
        try:
            while self._thread.is_alive():
                self._thread.join(timeout=0.5)
        except KeyboardInterrupt:
            self.close(drain=False)


# ----------------------------------------------------------------------
# CLI: boot a demo gateway (used by the CI gateway job via the client SDK)
# ----------------------------------------------------------------------
def _build_demo_registry(
    model_name: str, n_versions: int, registry_dir: str | None = None
) -> ModelRegistry:
    from ..models.zoo import ReplicaSpec, get_model

    registry = ModelRegistry() if registry_dir is None else ModelRegistry.open(registry_dir)
    if registry.versions():
        # a restored persistent registry already carries its versions, active
        # pointer and history -- the whole point of persistence
        if registry.active is None:
            registry.deploy(registry.versions()[0].version)
        return registry
    spec = get_model(model_name, reduced=True)
    for index in range(1, n_versions + 1):
        # distinct build seeds -> genuinely different weights per version, so
        # a deploy/rollback visibly changes the served bytes
        replica = ReplicaSpec.capture(
            spec, spec.build_bayesian(seed=100 + index), build_seed=0
        )
        registry.register(f"v{index}", replica)
    registry.deploy("v1")
    return registry


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.serve.gateway``: serve a freshly built model zoo entry."""
    import argparse

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8123)
    parser.add_argument("--model", default="B-MLP", help="zoo name (reduced variant)")
    parser.add_argument(
        "--versions", type=int, default=2, help="how many versions to register"
    )
    parser.add_argument(
        "--workers", type=int, default=0, help="worker processes (0 = inline)"
    )
    parser.add_argument(
        "--registry-dir",
        default=None,
        help="persist the registry here; an existing directory is restored "
        "(versions, active pointer, generation, history) instead of rebuilt",
    )
    parser.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        help="per-tenant requests/s for the standard tier (default: unlimited)",
    )
    parser.add_argument(
        "--access-log",
        default=None,
        help="append one JSON line per request to this file "
        "(REPRO_ACCESS_LOG is the env fallback)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        help="fraction of predict requests to trace, 0..1 (deterministic "
        "counter-based sampling, no RNG)",
    )
    args = parser.parse_args(argv)
    registry = _build_demo_registry(args.model, args.versions, args.registry_dir)
    admission = None
    if args.rate_limit is not None:
        from .admission import TierPolicy

        admission = AdmissionConfig(
            tiers={"standard": TierPolicy(rate_per_s=args.rate_limit)}
        )
    gateway = ServingGateway(
        registry,
        ServerConfig(n_workers=args.workers, trace_sample_rate=args.trace_sample),
        GatewayConfig(
            host=args.host,
            port=args.port,
            admission=admission,
            access_log_path=args.access_log,
        ),
    )
    gateway.start()
    host, port = gateway.address
    print(f"serving {args.model} ({args.versions} versions) on http://{host}:{port}",
          flush=True)
    gateway.serve_forever()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI job
    import sys

    sys.exit(main())
