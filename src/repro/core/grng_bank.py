"""Batched Gaussian random number generation over an LFSR bank.

:class:`GrngBank` is the vectorised counterpart of
:class:`~repro.core.grng.LfsrGaussianRNG`: it drives one
:class:`~repro.core.lfsr_array.LfsrArray` row per Monte-Carlo sample and
converts pattern popcounts into standardised Gaussian variables for *all*
rows with one set of packed-kernel calls.  Values are bit-identical to the
scalar generator (property-tested), because both share the same seeds,
recurrence kernel and CLT conversion.

Two interfaces are exposed:

* the batched array interface (:meth:`GrngBank.epsilon_blocks`,
  :meth:`GrngBank.epsilon_blocks_reverse`) for callers that operate on every
  sample at once;
* per-row :class:`BankedGaussianRNG` views that are drop-in compatible with
  the scalar generator, so :class:`~repro.core.streams.EpsilonStream`
  policies and :class:`~repro.core.sampler.WeightSampler` work unchanged.

**Lockstep prefetching.**  The BNN trainers walk the Monte-Carlo samples one
after another, but every sample requests the *same* sequence of block shapes
(one per Bayesian layer).  With ``lockstep=True`` the bank exploits that: the
first row to request a block triggers one batched kernel call that produces
the block for *every* row; the other rows' values are queued and served when
their streams ask.  The same speculation covers reversed retrieval, and
checkpoint replays are batched through a per-row ledger of generated blocks.
Any deviation from lockstep (an external register write, a mismatched
request) falls back to exact per-row generation, so speculation can never
change results -- only speed.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .backend import dispatch
from .bitops import pack_int_rows, unpack_bits
from .grng import GRNGMode, LfsrGaussianRNG, ReplayError
from .lfsr import FibonacciLFSR
from .lfsr_array import LfsrArray

__all__ = ["BankedGaussianRNG", "GrngBank", "LfsrRowView"]

_clt_standardise = dispatch("clt_standardise")


@dataclass
class _PrefetchedBlock:
    """One speculatively generated block awaiting consumption by its row."""

    reverse: bool
    count: int
    values: np.ndarray
    pre_state: int
    pre_sum: int


@dataclass
class _LedgerEntry:
    """Record of one generated forward block (the checkpoint-replay source)."""

    pre_state: int
    count: int
    post_state: int


@dataclass
class _ReplayedBlock:
    """One batch-replayed block awaiting its row's retrieval request."""

    start_state: int
    count: int
    values: np.ndarray
    end_state: int


class GrngBank:
    """A bank of CLT Gaussian generators stepped in lockstep.

    Parameters
    ----------
    n_rows:
        Number of generators (Monte-Carlo samples).  Ignored when
        ``seed_indices`` is given.
    n_bits:
        LFSR width shared by every row (256 in the paper).
    seed_indices:
        Deterministic seed selector per row, hashed exactly like
        ``FibonacciLFSR.from_seed_index``.  Defaults to ``range(n_rows)``.
    taps:
        Optional explicit tap positions shared by every row.
    stride:
        Register shifts per emitted variable (see the scalar generator).
    lockstep:
        Enable speculative cross-row batching for the per-row views.  The
        batched array interface is always vectorised; this flag only controls
        whether single-row requests may be served by prefetching for every
        row at once.
    """

    def __init__(
        self,
        n_rows: int | None = None,
        n_bits: int = 256,
        seed_indices: Sequence[int] | None = None,
        taps: tuple[int, ...] | None = None,
        stride: int = 1,
        lockstep: bool = False,
    ) -> None:
        if stride < 1:
            raise ValueError("stride must be at least 1 shift per variable")
        if seed_indices is None:
            if n_rows is None or n_rows < 1:
                raise ValueError("a GrngBank needs at least one row")
            seed_indices = range(n_rows)
        self._array = LfsrArray.from_seed_indices(n_bits, list(seed_indices), taps)
        n_rows = self._array.n_rows
        self._n = n_bits
        self._stride = stride
        self._mean = n_bits / 2.0
        self._std = math.sqrt(n_bits / 4.0)
        self._lockstep = lockstep
        self._sums = self._array.popcounts()
        self._generated = np.zeros(n_rows, dtype=np.int64)
        self._retrieved = np.zeros(n_rows, dtype=np.int64)
        self._modes = [GRNGMode.IDLE] * n_rows
        self._queues: list[deque[_PrefetchedBlock]] = [deque() for _ in range(n_rows)]
        self._replay_queues: list[deque[_ReplayedBlock]] = [
            deque() for _ in range(n_rows)
        ]
        self._ledgers: list[list[_LedgerEntry]] = [[] for _ in range(n_rows)]
        self._dirty = [False] * n_rows

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of generators in the bank."""
        return self._array.n_rows

    @property
    def n_bits(self) -> int:
        """LFSR width shared by every row."""
        return self._n

    @property
    def stride(self) -> int:
        """Register shifts performed per emitted variable."""
        return self._stride

    @property
    def taps(self) -> tuple[int, ...]:
        """Tap positions shared by every row."""
        return self._array.taps

    @property
    def lockstep(self) -> bool:
        """Whether per-row requests may be served by cross-row prefetching."""
        return self._lockstep

    @property
    def lfsr_array(self) -> LfsrArray:
        """The underlying packed register bank."""
        return self._array

    @property
    def resolution(self) -> float:
        """Smallest representable step between two Gaussian values."""
        return 1.0 / self._std

    @property
    def generated_counts(self) -> np.ndarray:
        """Variables produced in forward mode, per row (a copy)."""
        return self._generated.copy()

    @property
    def retrieved_counts(self) -> np.ndarray:
        """Variables retrieved in reverse mode, per row (a copy)."""
        return self._retrieved.copy()

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return (
            f"GrngBank(n_rows={self.n_rows}, n_bits={self._n}, "
            f"stride={self._stride}, lockstep={self._lockstep})"
        )

    # ------------------------------------------------------------------
    # raw batched generation (physical register states)
    # ------------------------------------------------------------------
    def _standardise(self, popcounts: np.ndarray) -> np.ndarray:
        # Integer-to-double conversion is exact for popcounts, so every
        # eligible backend of the dispatch point produces byte-identical
        # float64 values whatever the popcount dtype.
        return _clt_standardise(popcounts, self._mean, self._std)

    #: Upper bound on register shifts per packed-kernel call.  One giant call
    #: materialises the whole bit sequence at once and falls out of cache;
    #: chunked calls continue the same register stream, so the emitted values
    #: are bit-identical -- this is purely a locality knob.
    _KERNEL_STEP_LIMIT = 1 << 21

    def _generate_chunked(self, block_fn, rows: Sequence[int] | None, count: int) -> np.ndarray:
        """Split a generation call into cache-resident kernel chunks.

        Chunked calls continue the same register stream, so the concatenated
        values are bit-identical to one call; this is purely a locality knob.
        """
        chunk = max(1, self._KERNEL_STEP_LIMIT // self._stride)
        if count <= chunk:
            return block_fn(rows, count)
        n_selected = self.n_rows if rows is None else len(rows)
        values = np.empty((n_selected, count), dtype=np.float64)
        offset = 0
        while offset < count:
            size = min(chunk, count - offset)
            values[:, offset : offset + size] = block_fn(rows, size)
            offset += size
        return values

    def _generate_forward(
        self, rows: Sequence[int] | None, count: int
    ) -> np.ndarray:
        return self._generate_chunked(self._generate_forward_block, rows, count)

    def _generate_forward_block(
        self, rows: Sequence[int] | None, count: int
    ) -> np.ndarray:
        steps = count * self._stride
        # The strided kernel computes only the popcounts the GRNG emits (one
        # per ``stride`` shifts) instead of a dense per-shift running sum;
        # integer popcounts are exact, so the emitted values are bit-identical
        # for any stride.
        emitted = self._array.window_popcounts(
            steps, rows=rows, stride=self._stride
        )
        selection = slice(None) if rows is None else np.asarray(rows)
        self._sums[selection] = emitted[:, -1]
        return self._standardise(emitted)

    def _generate_reverse(
        self, rows: Sequence[int] | None, count: int
    ) -> np.ndarray:
        return self._generate_chunked(self._generate_reverse_block, rows, count)

    def _generate_reverse_block(
        self, rows: Sequence[int] | None, count: int
    ) -> np.ndarray:
        n = self._n
        steps = count * self._stride
        selection = slice(None) if rows is None else np.asarray(rows)
        head_bits = self._array.state_bits(rows)
        current_sums = self._sums[selection].astype(np.int32)
        recovered = self._array.generate_bits_reverse(steps, rows=rows).astype(
            np.int32
        )
        # Stepping back from pattern t to t-1 changes the sum by
        # (recovered tail of t-1) - (head of t); heads of successive earlier
        # patterns are the register contents R1, R2, ... of the pre-retrieval
        # pattern, continuing into the recovered tail stream.
        heads = np.empty_like(recovered)
        limit = min(steps, n)
        heads[:, :limit] = head_bits[:, :limit]
        if steps > n:
            heads[:, n:] = recovered[:, : steps - n]
        np.subtract(recovered, heads, out=recovered)
        if self._stride == 1:
            delta = np.cumsum(recovered, axis=1, out=recovered)
            sums = np.empty_like(delta)
            sums[:, 0] = current_sums
            if steps > 1:
                sums[:, 1:] = current_sums[:, None] + delta[:, :-1]
            self._sums[selection] = current_sums + delta[:, -1]
            return self._standardise(sums)
        # Strided emission needs the cumulative delta only at block
        # boundaries: reduce per-block, then cumsum over count entries
        # instead of count * stride steps (bit-identical integer arithmetic).
        blocks = recovered.reshape(recovered.shape[0], count, self._stride).sum(
            axis=2, dtype=np.int32
        )
        delta = np.cumsum(blocks, axis=1, out=blocks)
        sums = np.empty_like(delta)
        sums[:, 0] = current_sums
        if count > 1:
            sums[:, 1:] = current_sums[:, None] + delta[:, :-1]
        self._sums[selection] = current_sums + delta[:, -1]
        return self._standardise(sums)

    # ------------------------------------------------------------------
    # batched array interface
    # ------------------------------------------------------------------
    def epsilon_blocks(self, count: int) -> np.ndarray:
        """Generate ``count`` Gaussian variables for every row at once.

        Returns an ``(n_rows, count)`` float64 array; row ``i`` is exactly
        what the scalar generator with the same seed index would produce.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros((self.n_rows, 0), dtype=np.float64)
        self._materialise_all()
        values, _, _ = self._generate_all(reverse=False, count=count)
        self._generated += count
        self._modes = [GRNGMode.FORWARD] * self.n_rows
        return values

    def epsilon_blocks_reverse(self, count: int) -> np.ndarray:
        """Retrieve the previous ``count`` variables per row (newest first).

        Row ``i`` equals ``epsilon_block_reverse(count)`` of the matching
        scalar generator; registers are left ``count * stride`` patterns
        earlier.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros((self.n_rows, 0), dtype=np.float64)
        self._materialise_all()
        values = self._generate_reverse(None, count)
        self._retrieved += count
        self._modes = [GRNGMode.REVERSE] * self.n_rows
        return values

    def states(self) -> list[int]:
        """Logical register values of every row, as Python integers.

        Pending speculative blocks are materialised first so the returned
        values always reflect what each row's consumer would observe.
        """
        self._materialise_all()
        return self._array.states()

    def set_states(self, states: Sequence[int]) -> None:
        """Overwrite every row's register and resynchronise the bit sums.

        Rows are marked dirty (suspending lockstep speculation until the next
        :meth:`end_iteration`), exactly like a per-row external state write.
        """
        if len(states) != self.n_rows:
            raise ValueError(
                f"expected {self.n_rows} states, got {len(states)}"
            )
        self._materialise_all()
        for row, state in enumerate(states):
            self._array.set_state(row, int(state))
            self._replay_queues[row].clear()
            self._dirty[row] = True
        self._sums = self._array.popcounts()

    def replay_blocks(
        self,
        start_states: Sequence[int],
        count: int,
        expected_end_states: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Replay one contiguous span of ``count`` variables for every row.

        This is the whole-span batched counterpart of
        :meth:`row_replay_block`: the registers are rewound to
        ``start_states`` (one checkpoint per row), the span is regenerated
        with a single forward kernel call, and the landing patterns are
        verified against ``expected_end_states`` (the pre-retrieval
        patterns).  Registers are left on the span *end* -- callers that
        retrieve a whole backward pass at once continue from exactly the
        pattern the forward stage reached.  The replay counts as retrieval,
        not generation, so shift counters are rewound by ``count * stride``
        like the per-row replay.

        Returns an ``(n_rows, count)`` float64 array, bit-identical to the
        concatenated per-layer replays of the same span.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if len(start_states) != self.n_rows:
            raise ValueError(
                f"expected {self.n_rows} start states, got {len(start_states)}"
            )
        if count == 0:
            return np.zeros((self.n_rows, 0), dtype=np.float64)
        self._materialise_all()
        saved_states = self._array.states()
        saved_sums = self._sums.copy()
        for row, state in enumerate(start_states):
            self._array.set_state(row, int(state))
        values = self._generate_forward(None, count)
        if expected_end_states is not None:
            landed = self._array.states()
            mismatched = [
                row
                for row in range(self.n_rows)
                if landed[row] != int(expected_end_states[row])
            ]
            if mismatched:
                # Failed replay must not move anything: put every row's
                # register, sum and shift counter back where they were
                # before the call, then flag the rows that diverged.
                for row in range(self.n_rows):
                    self._array.set_state(row, saved_states[row])
                    self._array.adjust_shift_count(row, -count * self._stride)
                self._sums = saved_sums
                for row in mismatched:
                    self._dirty[row] = True
                raise ReplayError(
                    "checkpoint replay did not land on the pre-retrieval "
                    f"pattern for rows {mismatched}"
                )
        for row in range(self.n_rows):
            self._array.adjust_shift_count(row, -count * self._stride)
            self._drop_ledger_span(row, count)
        self._generated += count
        self._modes = [GRNGMode.FORWARD] * self.n_rows
        return values

    def _drop_ledger_span(self, row: int, count: int) -> None:
        """Pop the ledger entries covered by a whole-span replay."""
        ledger = self._ledgers[row]
        covered = 0
        while ledger and covered < count:
            covered += ledger[-1].count
            ledger.pop()

    def _generate_all(
        self, reverse: bool, count: int
    ) -> tuple[np.ndarray, list[int], np.ndarray]:
        """Generate for every row, recording ledger entries when tracking.

        Returns the values together with the pre-block states and sums, so
        speculation can queue them without re-reading the register bank.
        """
        pre_states = self._array.states()
        pre_sums = self._sums.copy()
        if reverse:
            values = self._generate_reverse(None, count)
        else:
            values = self._generate_forward(None, count)
        if self._lockstep and not reverse:
            post_states = self._array.states()
            for row in range(self.n_rows):
                self._ledgers[row].append(
                    _LedgerEntry(pre_states[row], count, post_states[row])
                )
        return values, pre_states, pre_sums

    # ------------------------------------------------------------------
    # lockstep bookkeeping
    # ------------------------------------------------------------------
    def _materialise_row(self, row: int) -> None:
        """Rewind a row's physical register to its logical state.

        Called whenever a row must leave the speculative fast path: pending
        prefetched blocks are discarded and the register is put back where
        the row's consumer believes it is.  The row is marked dirty, which
        suspends cross-row speculation until :meth:`end_iteration`.
        """
        queue = self._queues[row]
        if not queue:
            return
        head = queue[0]
        steps = sum(
            entry.count * self._stride * (-1 if entry.reverse else 1)
            for entry in queue
        )
        self._array.set_state(row, head.pre_state)
        self._sums[row] = head.pre_sum
        self._array.adjust_shift_count(row, -steps)
        queue.clear()
        self._dirty[row] = True

    def _materialise_replay_row(self, row: int) -> None:
        """Drop a row's pending replayed blocks.

        Batched replays restore every sibling's physical register before
        queueing values, so pending replays never leave the register away
        from its logical position -- discarding them is pure cache
        invalidation, plus the dirty mark that suspends speculation.
        """
        replay_queue = self._replay_queues[row]
        if not replay_queue:
            return
        replay_queue.clear()
        self._dirty[row] = True

    def _materialise_all(self) -> None:
        for row in range(self.n_rows):
            self._materialise_row(row)
            self._materialise_replay_row(row)

    def _can_speculate(self) -> bool:
        return self._lockstep and not any(self._dirty)

    def _speculate(self, reverse: bool, count: int, requester: int) -> np.ndarray:
        """One batched call serving ``requester`` now and queueing the rest."""
        values, pre_states, pre_sums = self._generate_all(reverse, count)
        for row in range(self.n_rows):
            if row == requester:
                continue
            self._queues[row].append(
                _PrefetchedBlock(
                    reverse=reverse,
                    count=count,
                    values=values[row],
                    pre_state=pre_states[row],
                    pre_sum=int(pre_sums[row]),
                )
            )
        return values[requester]

    def end_iteration(self) -> None:
        """Re-arm lockstep speculation at a training-iteration boundary.

        Leftover prefetched blocks are discarded (rewinding their rows to the
        logical state), replay caches and ledgers are cleared, and every row
        is marked clean again.  :class:`~repro.core.checkpoint.StreamBank`
        calls this from ``finish_iteration``.
        """
        for row in range(self.n_rows):
            self._materialise_row(row)
            self._materialise_replay_row(row)
            self._ledgers[row].clear()
        self._dirty = [False] * self.n_rows

    # ------------------------------------------------------------------
    # per-row interface (used by BankedGaussianRNG views)
    # ------------------------------------------------------------------
    def row_view(self, row: int) -> "BankedGaussianRNG":
        """A scalar-compatible view of generator ``row``."""
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range for {self.n_rows} rows")
        return BankedGaussianRNG(self, row)

    def row_epsilon_block(self, row: int, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        queue = self._queues[row]
        if queue and not queue[0].reverse and queue[0].count == count:
            entry = queue.popleft()
            values = entry.values
        else:
            if queue:
                self._materialise_row(row)
            if self._can_speculate():
                values = self._speculate(reverse=False, count=count, requester=row)
            else:
                pre_state = (
                    self._array.get_state(row) if self._lockstep else None
                )
                values = self._generate_forward([row], count)[0]
                if self._lockstep:
                    assert pre_state is not None
                    self._ledgers[row].append(
                        _LedgerEntry(pre_state, count, self._array.get_state(row))
                    )
        self._generated[row] += count
        self._modes[row] = GRNGMode.FORWARD
        return values

    def row_epsilon_block_reverse(self, row: int, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        queue = self._queues[row]
        if queue and queue[0].reverse and queue[0].count == count:
            entry = queue.popleft()
            values = entry.values
        else:
            if queue:
                self._materialise_row(row)
            if self._can_speculate():
                values = self._speculate(reverse=True, count=count, requester=row)
            else:
                values = self._generate_reverse([row], count)[0]
        self._retrieved[row] += count
        self._modes[row] = GRNGMode.REVERSE
        return values

    def row_replay_block(
        self,
        row: int,
        start_state: int,
        count: int,
        expected_end_state: int | None = None,
    ) -> np.ndarray:
        """Checkpoint replay for one row, batched across rows when possible.

        Lockstep banks keep a ledger of every generated forward block; when
        all rows are due to replay blocks of the same size (the LIFO backward
        walk of the trainers), the first request replays *every* row's
        checkpointed block with one batched kernel call and caches the
        siblings' values.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        if self._queues[row]:
            self._materialise_row(row)
        replay_queue = self._replay_queues[row]
        if replay_queue:
            entry = replay_queue[0]
            if (
                entry.count == count
                and entry.start_state == start_state
                and (
                    expected_end_state is None
                    or entry.end_state == expected_end_state
                )
            ):
                replay_queue.popleft()
                # The retrieval now takes logical effect: the register moves
                # onto the replayed checkpoint with a resynchronised sum.
                self._array.set_state(row, entry.start_state)
                self._sums[row] = self._array.popcounts([row])[0]
                self._generated[row] += count
                self._modes[row] = GRNGMode.FORWARD
                return entry.values
            self._materialise_replay_row(row)
        if self._can_batch_replay(row, start_state, count, expected_end_state):
            return self._batched_replay(row, count)
        return self._single_replay(row, start_state, count, expected_end_state)

    def _can_batch_replay(
        self,
        row: int,
        start_state: int,
        count: int,
        expected_end_state: int | None,
    ) -> bool:
        if not self._can_speculate():
            return False
        # Sibling rows may still hold unconsumed forward prefetches (the
        # trainers interleave forward and backward per sample) or pending
        # replayed blocks; both are fine -- the batch snapshots and restores
        # their physical registers around the replay.  Only the ledgers must
        # agree that every row's most recent unreplayed block has this size.
        for ledger in self._ledgers:
            if not ledger or ledger[-1].count != count:
                return False
        tail = self._ledgers[row][-1]
        if tail.pre_state != start_state:
            return False
        return expected_end_state is None or tail.post_state == expected_end_state

    def _batched_replay(self, row: int, count: int) -> np.ndarray:
        """Replay every row's checkpointed tail block with one kernel call.

        The requesting row is left on its checkpoint (standard replay
        semantics); every other row's physical register and sum are restored
        to where they were before the batch, and its values are queued until
        the row's own retrieval request consumes them (which is when the
        register logically moves onto the checkpoint).
        """
        tails = [self._ledgers[j].pop() for j in range(self.n_rows)]
        saved_states = self._array.states()
        saved_sums = self._sums.copy()
        for j in range(self.n_rows):
            self._array.set_state(j, tails[j].pre_state)
        values = self._generate_forward(None, count)
        landed = self._array.states()
        for j in range(self.n_rows):
            self._array.adjust_shift_count(j, -count * self._stride)
            if j == row:
                self._array.set_state(j, tails[j].pre_state)
            else:
                self._array.set_state(j, saved_states[j])
        self._sums = saved_sums
        self._sums[row] = self._array.popcounts([row])[0]
        mismatched = [
            j for j in range(self.n_rows) if landed[j] != tails[j].post_state
        ]
        for j in mismatched:
            self._dirty[j] = True
        if row in mismatched:
            raise ReplayError(
                "checkpoint replay did not land on the pre-retrieval pattern"
            )
        for j in range(self.n_rows):
            if j != row and j not in mismatched:
                self._replay_queues[j].append(
                    _ReplayedBlock(
                        start_state=tails[j].pre_state,
                        count=count,
                        values=values[j],
                        end_state=tails[j].post_state,
                    )
                )
        self._generated[row] += count
        self._modes[row] = GRNGMode.FORWARD
        return values[row]

    def _single_replay(
        self,
        row: int,
        start_state: int,
        count: int,
        expected_end_state: int | None,
    ) -> np.ndarray:
        self._array.set_state(row, start_state)
        values = self._generate_forward([row], count)[0]
        self._generated[row] += count
        self._modes[row] = GRNGMode.FORWARD
        if (
            expected_end_state is not None
            and self._array.get_state(row) != expected_end_state
        ):
            self._dirty[row] = True
            raise ReplayError(
                "checkpoint replay did not land on the pre-retrieval pattern"
            )
        self._array.set_state(row, start_state)
        self._array.adjust_shift_count(row, -count * self._stride)
        self._sums[row] = self._array.popcounts([row])[0]
        ledger = self._ledgers[row]
        if ledger and ledger[-1].count == count and ledger[-1].pre_state == start_state:
            ledger.pop()
        return values

    def row_resync_sum_register(self, row: int) -> None:
        self._materialise_row(row)
        self._sums[row] = self._array.popcounts([row])[0]

    def row_state(self, row: int) -> int:
        queue = self._queues[row]
        if queue:
            return queue[0].pre_state
        replay_queue = self._replay_queues[row]
        if replay_queue:
            return replay_queue[0].end_state
        return self._array.get_state(row)

    def row_set_state(self, row: int, value: int) -> None:
        self._materialise_row(row)
        self._replay_queues[row].clear()
        self._dirty[row] = True
        self._array.set_state(row, value)

    def row_sum_register(self, row: int) -> int:
        queue = self._queues[row]
        if queue:
            return queue[0].pre_sum
        replay_queue = self._replay_queues[row]
        if replay_queue:
            return int(bin(replay_queue[0].end_state).count("1"))
        return int(self._sums[row])

    def row_set_sum_register(self, row: int, value: int) -> None:
        self._materialise_row(row)
        self._replay_queues[row].clear()
        self._dirty[row] = True
        self._sums[row] = int(value)

    def row_shift_count(self, row: int) -> int:
        physical = int(self._array.shift_counts[row])
        queued = sum(
            entry.count * self._stride * (-1 if entry.reverse else 1)
            for entry in self._queues[row]
        )
        return physical - queued


class LfsrRowView:
    """A ``FibonacciLFSR``-shaped window onto one row of a :class:`GrngBank`.

    Exposes the registers the way streams and snapshots expect (``state``,
    ``taps``, ``popcount``, ...) while hiding the bank's speculative
    prefetching: reads always reflect the row's *logical* position, and
    writes transparently drop any speculation for the row.
    """

    def __init__(self, bank: GrngBank, row: int) -> None:
        self._bank = bank
        self._row = row

    @property
    def n_bits(self) -> int:
        """Register length in bits."""
        return self._bank.n_bits

    @property
    def taps(self) -> tuple[int, ...]:
        """1-based tap positions (tail tap included)."""
        return self._bank.taps

    @property
    def state(self) -> int:
        """Current (logical) register contents as an integer."""
        return self._bank.row_state(self._row)

    @state.setter
    def state(self, value: int) -> None:
        self._bank.row_set_state(self._row, value)

    @property
    def shift_count(self) -> int:
        """Net number of forward shifts applied to this row."""
        return self._bank.row_shift_count(self._row)

    @property
    def popcount(self) -> int:
        """Number of set bits in the current pattern."""
        return int(bin(self.state).count("1"))

    def state_bits(self) -> np.ndarray:
        """Return the registers ``R1..Rn`` as a ``uint8`` array."""
        words = pack_int_rows([self.state], self.n_bits)
        return unpack_bits(words, self.n_bits)[0]

    def copy(self) -> FibonacciLFSR:
        """A detached scalar register with this row's logical state."""
        clone = FibonacciLFSR(self.n_bits, seed=self.state, taps=self.taps)
        clone.adjust_shift_count(self.shift_count)
        return clone

    def shift_forward(self) -> int:
        """Advance this row one pattern through the scalar recurrence."""
        scalar = self.copy()
        bit = scalar.shift_forward()
        self._bank.row_set_state(self._row, scalar.state)
        self._bank.lfsr_array.adjust_shift_count(self._row, 1)
        return bit

    def shift_reverse(self) -> int:
        """Step this row back one pattern through the scalar recurrence."""
        scalar = self.copy()
        bit = scalar.shift_reverse()
        self._bank.row_set_state(self._row, scalar.state)
        self._bank.lfsr_array.adjust_shift_count(self._row, -1)
        return bit

    def __repr__(self) -> str:
        return (
            f"LfsrRowView(row={self._row}, n_bits={self.n_bits}, "
            f"state=0x{self.state:x})"
        )


class BankedGaussianRNG:
    """Scalar-compatible Gaussian generator view over one :class:`GrngBank` row.

    Implements the :class:`~repro.core.grng.LfsrGaussianRNG` surface used by
    the epsilon streams, the weight sampler and the snapshots, while routing
    every block operation through the bank so that lockstep workloads are
    served by batched kernel calls.
    """

    def __init__(self, bank: GrngBank, row: int) -> None:
        self._bank = bank
        self._row = row
        self._lfsr_view = LfsrRowView(bank, row)

    # ------------------------------------------------------------------
    # properties (mirror the scalar generator)
    # ------------------------------------------------------------------
    @property
    def bank(self) -> GrngBank:
        """The bank this view belongs to."""
        return self._bank

    @property
    def row(self) -> int:
        """This view's row index within the bank."""
        return self._row

    @property
    def lfsr(self) -> LfsrRowView:
        """The underlying register row (exposed for tests and checkpoints)."""
        return self._lfsr_view

    @property
    def n_bits(self) -> int:
        """Width of the LFSR pattern used per Gaussian variable."""
        return self._bank.n_bits

    @property
    def mode(self) -> GRNGMode:
        """Current operating mode of this row."""
        return self._bank._modes[self._row]

    @property
    def resolution(self) -> float:
        """Smallest representable step between two Gaussian values."""
        return self._bank.resolution

    @property
    def stride(self) -> int:
        """Register shifts performed per emitted variable."""
        return self._bank.stride

    @property
    def generated_count(self) -> int:
        """Number of variables produced in forward mode."""
        return int(self._bank._generated[self._row])

    @property
    def retrieved_count(self) -> int:
        """Number of variables retrieved in reverse mode."""
        return int(self._bank._retrieved[self._row])

    @property
    def sum_register(self) -> int:
        """The running pattern bit-sum register of this row."""
        return self._bank.row_sum_register(self._row)

    @sum_register.setter
    def sum_register(self, value: int) -> None:
        self._bank.row_set_sum_register(self._row, value)

    def set_mode(self, mode: GRNGMode) -> None:
        """Switch the operating mode (models the controller's mode signal)."""
        if not isinstance(mode, GRNGMode):
            raise TypeError(f"expected GRNGMode, got {type(mode).__name__}")
        self._bank._modes[self._row] = mode

    # ------------------------------------------------------------------
    # generation interface
    # ------------------------------------------------------------------
    def next_epsilon(self) -> float:
        """Generate one Gaussian variable by ``stride`` forward shifts."""
        return float(self.epsilon_block(1)[0])

    def previous_epsilon(self) -> float:
        """Retrieve the most recent variable by ``stride`` reverse shifts."""
        return float(self.epsilon_block_reverse(1)[0])

    def epsilon_block(self, count: int) -> np.ndarray:
        """Generate ``count`` variables (batched across rows when in lockstep)."""
        return self._bank.row_epsilon_block(self._row, count)

    def epsilon_block_reverse(self, count: int) -> np.ndarray:
        """Retrieve the previous ``count`` variables (newest first)."""
        return self._bank.row_epsilon_block_reverse(self._row, count)

    def replay_block(
        self,
        start_state: int,
        count: int,
        expected_end_state: int | None = None,
    ) -> np.ndarray:
        """Regenerate a block from a register checkpoint (see the scalar)."""
        return self._bank.row_replay_block(
            self._row, start_state, count, expected_end_state
        )

    def resync_sum_register(self) -> None:
        """Reload the running bit-sum from the current pattern."""
        self._bank.row_resync_sum_register(self._row)

    # ------------------------------------------------------------------
    # copying and diagnostics
    # ------------------------------------------------------------------
    def copy(self) -> LfsrGaussianRNG:
        """A detached scalar generator with this row's logical state."""
        scalar = LfsrGaussianRNG(
            n_bits=self.n_bits,
            seed_index=0,
            taps=self._bank.taps,
            stride=self._bank.stride,
        )
        scalar.lfsr.state = self.lfsr.state
        scalar.sum_register = self.sum_register
        scalar.set_mode(self.mode)
        scalar._generated = self.generated_count
        scalar._retrieved = self.retrieved_count
        return scalar

    def distribution_summary(self, count: int = 4096) -> dict[str, float]:
        """Moments of ``count`` variables from a detached copy."""
        return self.copy().distribution_summary(count)

    def __repr__(self) -> str:
        return (
            f"BankedGaussianRNG(row={self._row}, n_bits={self.n_bits}, "
            f"mode={self.mode.value}, generated={self.generated_count}, "
            f"retrieved={self.retrieved_count})"
        )
