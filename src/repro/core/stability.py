"""Runtime BLAS row-stability prover for fused serving tiles.

Serving tiles pool many requests, but PR 3 deliberately ran one
``mc_forward`` per request: BLAS libraries select different micro-kernels
for different GEMM M dimensions, so the folded ``(sum_rows, features)``
product is **not** guaranteed to be byte-identical per row to the
standalone per-request products.  On the container this repo develops on,
OpenBLAS really does diverge: 1-row blocks always take a different (gemv)
path, and some (K, N) classes are unstable at *every* block size.

This module turns that hazard into a runtime proof:

* :class:`RowStabilityProbe` empirically tests, per
  ``(kind, dtype, K, N, splits)`` shape class, whether the folded GEMM is
  byte-identical to the per-request blocks recomputed from fresh
  contiguous operands -- including adversarial patterns (1-row blocks,
  prime sizes, cache-line straddles).  Verdicts are cached per process
  under a signature that covers the numpy version, the battery version
  and the active kernel-backend selection, so switching backends
  invalidates them.
* The ``fused`` backends of the ``fused_sample_matmul`` / ``fused_im2col``
  dispatch points in :mod:`repro.core.backend` consult the probe from
  their ``supports`` hook, and their conformance gate *is* the probe
  contract: the reference implementation recomputes every request block
  standalone, so any fused result that survives the gate is bit-exact by
  construction.  Where the probe rejects a class, dispatch silently takes
  the per-block reference path -- still fused at the tile level, never
  wrong.
* :func:`folded_splits` / :func:`scaled_active_splits` carry the
  per-request row counts of a fused tile down to :mod:`repro.nn.functional`
  through a thread-local, so layer code needs no signature changes.

``REPRO_FUSED`` controls the tile-fusion mode: ``0`` disables fusion,
``1`` demands it (warning once if the probe verdict blocks it), anything
else -- including unset -- means ``auto`` (fuse exactly when the verdict
passes).

CLI::

    python -m repro.core.stability --report
"""

from __future__ import annotations

import argparse
import hashlib
import os
import threading
import warnings
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

import numpy as np

from . import backend as _backend

__all__ = [
    "RowStabilityProbe",
    "StabilityVerdict",
    "probe",
    "fused_mode",
    "folded_splits",
    "active_splits",
    "scaled_active_splits",
    "main",
]


# ----------------------------------------------------------------------
# fusion mode (REPRO_FUSED)
# ----------------------------------------------------------------------
def fused_mode() -> str:
    """The tile-fusion mode: ``"off"``, ``"on"`` or ``"auto"``.

    Read from ``REPRO_FUSED`` on every call so tests and operators can flip
    it without restarting the process.
    """
    raw = os.environ.get("REPRO_FUSED", "").strip().lower()
    if raw in ("0", "off", "false", "never"):
        return "off"
    if raw in ("1", "on", "true", "force"):
        return "on"
    return "auto"


# ----------------------------------------------------------------------
# folded-splits context (threaded down to nn.functional)
# ----------------------------------------------------------------------
_context = threading.local()


@contextmanager
def folded_splits(splits) -> Iterator[None]:
    """Mark the enclosed forward pass as a fused tile of ``splits`` rows."""
    normalised = tuple(int(s) for s in splits)
    if not normalised or any(s < 1 for s in normalised):
        raise ValueError(f"splits must be positive row counts, got {splits!r}")
    previous = getattr(_context, "splits", None)
    _context.splits = normalised
    try:
        yield
    finally:
        _context.splits = previous


def active_splits() -> tuple[int, ...] | None:
    """The per-request row counts of the active fused tile, if any."""
    return getattr(_context, "splits", None)


def scaled_active_splits(m_total: int) -> tuple[int, ...] | None:
    """Active splits rescaled to an ``m_total``-row folded dimension.

    Layers see different M dimensions for the same tile (a conv column
    matrix has ``rows * out_h * out_w`` rows); as long as ``m_total`` is an
    integer multiple of the tile's row total, every request's span scales
    with it.  Returns ``None`` when no tile is active or the dimension does
    not divide evenly (the caller then runs the unfused path).
    """
    splits = active_splits()
    if splits is None or len(splits) < 2:
        return None
    base = sum(splits)
    if base <= 0 or m_total % base:
        return None
    scale = m_total // base
    if scale == 1:
        return splits
    return tuple(s * scale for s in splits)


# ----------------------------------------------------------------------
# shape classes
# ----------------------------------------------------------------------
def bucket_rows(m_total: int) -> int:
    """Bucket a folded row count to the next power of two (min 1)."""
    if m_total <= 1:
        return 1
    return 1 << (int(m_total) - 1).bit_length()


@dataclass(frozen=True)
class ShapeClass:
    """One probed GEMM class: ``kind`` is ``"nn"`` (``A @ B``) or ``"nt"``
    (``A @ B.T``, the conv column idiom)."""

    kind: str
    dtype: str
    k: int
    n: int
    splits: tuple[int, ...]

    @property
    def m_total(self) -> int:
        return sum(self.splits)

    @property
    def bucket(self) -> int:
        return bucket_rows(self.m_total)

    def bucket_key(self) -> tuple[str, str, int, int, int]:
        """Coarse key used for report aggregation."""
        return (self.kind, self.dtype, self.k, self.n, self.bucket)


@dataclass(frozen=True)
class StabilityVerdict:
    """The signed per-process verdict over the generic fusion machinery."""

    ok: bool
    components: Mapping[str, bool]
    signature: str
    details: tuple[str, ...] = ()


def _case_rng(*key: Any) -> np.random.Generator:
    # hash() is salted per process; derive a stable seed so probe data is
    # reproducible across processes and runs
    digest = hashlib.sha256(repr(key).encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


class RowStabilityProbe:
    """Empirical per-shape-class row-stability prover (cached per process)."""

    #: bump when the battery changes; invalidates cached verdict signatures
    BATTERY_VERSION = 1

    def __init__(self, max_cached_classes: int = 512) -> None:
        self._lock = threading.RLock()
        self._classes: OrderedDict[ShapeClass, bool] = OrderedDict()
        self._max_cached_classes = int(max_cached_classes)
        self._verdicts: dict[str, StabilityVerdict] = {}
        self._warned_signatures: set[str] = set()
        self._battery_runs = 0  # probing effort, exposed for tests/report

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def signature(self) -> str:
        """A short digest naming what the cached verdicts are valid for."""
        payload = repr(
            (
                self.BATTERY_VERSION,
                np.__version__,
                # covers both channels: explicit pins and REPRO_BACKEND,
                # which the registry folds into the selection at import
                sorted(_backend.current_selection().items()),
            )
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def clear(self) -> None:
        """Drop all cached class verdicts and process verdicts (tests)."""
        with self._lock:
            self._classes.clear()
            self._verdicts.clear()
            self._warned_signatures.clear()

    # ------------------------------------------------------------------
    # the single GEMM funnel -- every probe matmul goes through here, so a
    # test can monkeypatch one method to simulate an unstable BLAS
    # ------------------------------------------------------------------
    def _gemm(self, a: np.ndarray, b: np.ndarray, out=None) -> np.ndarray:
        return np.matmul(a, b, out=out)

    # ------------------------------------------------------------------
    # per-shape-class battery
    # ------------------------------------------------------------------
    def splits_ok(self, kind: str, dtype, k: int, n: int, splits) -> bool:
        """Is the folded GEMM byte-identical to its per-request blocks?

        Probes the *exact* runtime configuration -- ``kind`` (``"nn"`` or
        ``"nt"``), dtype, inner/output dimensions and the exact ordered
        split pattern -- with synthetic data (two independent draws).
        Rounding behaviour depends on shapes, strides and kernel selection,
        not on operand values, so a synthetic pass transfers to the served
        bytes; the conformance gate and the property suite re-check that
        transfer end to end.
        """
        cls = ShapeClass(
            kind=str(kind),
            dtype=np.dtype(dtype).str,
            k=int(k),
            n=int(n),
            splits=tuple(int(s) for s in splits),
        )
        if cls.kind not in ("nn", "nt"):
            raise ValueError(f"unknown GEMM kind {cls.kind!r}")
        with self._lock:
            cached = self._classes.get(cls)
            if cached is not None:
                self._classes.move_to_end(cls)
                return cached
        ok = self._run_class_battery(cls)
        with self._lock:
            self._classes[cls] = ok
            self._classes.move_to_end(cls)
            while len(self._classes) > self._max_cached_classes:
                self._classes.popitem(last=False)
        return ok

    def _run_class_battery(self, cls: ShapeClass) -> bool:
        with self._lock:
            self._battery_runs += 1
        dtype = np.dtype(cls.dtype)
        m = cls.m_total
        for draw in range(2):
            rng = _case_rng("row-stability", cls, draw)
            a = rng.standard_normal((m, cls.k)).astype(dtype)
            if cls.kind == "nn":
                b = rng.standard_normal((cls.k, cls.n)).astype(dtype)
                b_op = b
            else:
                b = rng.standard_normal((cls.n, cls.k)).astype(dtype)
                b_op = b.T
            whole = self._gemm(a, b_op)
            # call-to-call determinism rides along: a nondeterministic BLAS
            # (or monkeypatched funnel) must fail the class, not fuse
            again = self._gemm(a, b_op)
            if whole.tobytes() != again.tobytes():
                return False
            lo = 0
            for rows in cls.splits:
                hi = lo + rows
                block = self._gemm(np.ascontiguousarray(a[lo:hi]), b_op)
                if whole[lo:hi].tobytes() != block.tobytes():
                    return False
                lo = hi
        return True

    # ------------------------------------------------------------------
    # generic fusion verdict (the tile-level gate)
    # ------------------------------------------------------------------
    def verdict(self) -> StabilityVerdict:
        """The cached per-process verdict over the generic fused machinery.

        ``ok`` gates *tile* fusion (concatenation + folded forward + output
        slicing).  Individual GEMM classes that the probe rejects do NOT
        fail this verdict -- they simply run per-block inside the fused
        tile via the ``fused_sample_matmul`` reference path.
        """
        signature = self.signature()
        with self._lock:
            cached = self._verdicts.get(signature)
        if cached is not None:
            return cached
        components: dict[str, bool] = {}
        details: list[str] = []
        for name, check in (
            ("gemm_determinism", self._probe_gemm_determinism),
            ("elementwise_offsets", self._probe_elementwise),
            ("softmax_rows", self._probe_softmax),
            ("folded_matmul_gate", self._probe_matmul_gate),
            ("folded_im2col_gate", self._probe_im2col_gate),
        ):
            try:
                ok = bool(check())
            except Exception as exc:  # a crashing battery is a failed one
                ok = False
                details.append(f"{name}: {type(exc).__name__}: {exc}")
            components[name] = ok
        verdict = StabilityVerdict(
            ok=all(components.values()),
            components=components,
            signature=signature,
            details=tuple(details),
        )
        with self._lock:
            self._verdicts[signature] = verdict
        return verdict

    def allows(self) -> bool:
        """Should the executor fuse tiles right now (mode + verdict)?"""
        mode = fused_mode()
        if mode == "off":
            return False
        verdict = self.verdict()
        if not verdict.ok and mode == "on":
            with self._lock:
                warned = verdict.signature in self._warned_signatures
                self._warned_signatures.add(verdict.signature)
            if not warned:
                warnings.warn(
                    "REPRO_FUSED=1 requested but the row-stability verdict "
                    f"failed ({verdict.components}); serving falls back to "
                    "the per-request path to preserve bit-exactness",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return verdict.ok

    def _probe_gemm_determinism(self) -> bool:
        # same operands, repeated calls, fresh copies and out= variants must
        # all agree -- the baseline assumption behind per-block recomposition
        for dtype in (np.float64, np.float32):
            rng = _case_rng("determinism", np.dtype(dtype).str)
            a = rng.standard_normal((37, 64)).astype(dtype)
            b = rng.standard_normal((64, 10)).astype(dtype)
            first = self._gemm(a, b)
            if first.tobytes() != self._gemm(a, b).tobytes():
                return False
            if first.tobytes() != self._gemm(a.copy(), b.copy()).tobytes():
                return False
            out = np.empty_like(first)
            self._gemm(a, b, out=out)
            if first.tobytes() != out.tobytes():
                return False
        return True

    def _probe_elementwise(self) -> bool:
        # exp / add / mul / maximum are exact per-element IEEE operations:
        # a row computed inside a folded slab must match the same row
        # computed in a standalone block at any offset
        rng = _case_rng("elementwise")
        x = rng.standard_normal((40, 8))
        bias = rng.standard_normal(8)
        for fn in (
            np.exp,
            lambda v: v + bias,
            lambda v: v * 1.7,
            lambda v: np.maximum(v, 0.0),
        ):
            whole = fn(x)
            for lo, hi in ((0, 1), (3, 8), (17, 40), (39, 40)):
                block = fn(np.ascontiguousarray(x[lo:hi]))
                if whole[lo:hi].tobytes() != block.tobytes():
                    return False
        return True

    def _probe_softmax(self) -> bool:
        # the served probabilities come from softmax over a folded
        # (S, rows, classes) slab; row spans must match standalone blocks,
        # and the out= variant must match the allocating one
        from ..nn import functional as F

        rng = _case_rng("softmax")
        x = rng.standard_normal((2, 29, 10))
        whole = F.softmax(x)
        lo = 0
        for rows in (1, 2, 3, 5, 7, 11):
            hi = lo + rows
            block = F.softmax(np.ascontiguousarray(x[:, lo:hi]))
            if np.ascontiguousarray(whole[:, lo:hi]).tobytes() != block.tobytes():
                return False
            lo = hi
        out = np.empty_like(x)
        F.softmax_into(x, out)
        return out.tobytes() == whole.tobytes()

    def _probe_matmul_gate(self) -> bool:
        try:
            return _backend.verify_backend("fused_sample_matmul", "fused")
        except _backend.BackendConformanceError:
            return False

    def _probe_im2col_gate(self) -> bool:
        try:
            return _backend.verify_backend("fused_im2col", "fused")
        except _backend.BackendConformanceError:
            return False

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def class_report(self) -> list[dict[str, Any]]:
        """Probed classes aggregated into coarse shape buckets."""
        with self._lock:
            entries = list(self._classes.items())
        buckets: OrderedDict[tuple, dict[str, Any]] = OrderedDict()
        for cls, ok in entries:
            key = cls.bucket_key()
            row = buckets.get(key)
            if row is None:
                row = buckets[key] = {
                    "kind": cls.kind,
                    "dtype": cls.dtype,
                    "k": cls.k,
                    "n": cls.n,
                    "m_bucket": cls.bucket,
                    "stable_patterns": 0,
                    "unstable_patterns": 0,
                }
            row["stable_patterns" if ok else "unstable_patterns"] += 1
        return list(buckets.values())

    def report(self) -> dict[str, Any]:
        """Everything ``--report`` prints, as a dict (quickstart uses it)."""
        verdict = self.verdict()
        return {
            "signature": verdict.signature,
            "mode": fused_mode(),
            "fusion_allowed": verdict.ok and fused_mode() != "off",
            "verdict": {
                "ok": verdict.ok,
                "components": dict(verdict.components),
                "details": list(verdict.details),
            },
            "battery_runs": self._battery_runs,
            "classes": self.class_report(),
        }


#: the process-wide probe consulted by kernel dispatch and the executor
probe = RowStabilityProbe()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _demo_classes() -> list[tuple[str, str, int, int, tuple[int, ...]]]:
    # representative serving shapes: the quickstart MLP layers (196->128,
    # 128->10) and a conv column idiom, under typical and adversarial splits
    classes = []
    for kind, k, n in (("nn", 196, 128), ("nn", 128, 10), ("nt", 18, 8)):
        for dtype in ("<f8", "<f4"):
            for splits in (
                (16, 16, 16, 16),
                (1, 1, 1, 1),
                (1, 2, 3, 5, 7, 19),
            ):
                classes.append((kind, dtype, k, n, splits))
    return classes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.stability",
        description="Probe the installed BLAS for folded-GEMM row stability.",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="probe representative serving shape classes and print the "
        "fusion verdict",
    )
    args = parser.parse_args(argv)
    if not args.report:
        parser.print_help()
        return 0
    for kind, dtype, k, n, splits in _demo_classes():
        probe.splits_ok(kind, dtype, k, n, splits)
    report = probe.report()
    print(f"row-stability signature : {report['signature']}")
    print(f"REPRO_FUSED mode        : {report['mode']}")
    print(f"tile fusion allowed     : {report['fusion_allowed']}")
    print("verdict components:")
    for name, ok in report["verdict"]["components"].items():
        print(f"  {'PASS' if ok else 'FAIL'}  {name}")
    for line in report["verdict"]["details"]:
        print(f"        {line}")
    print("probed GEMM classes (aggregated by shape bucket):")
    header = f"  {'kind':<5}{'dtype':<7}{'K':>5}{'N':>5}{'M<=':>6}  stable/unstable patterns"
    print(header)
    for row in report["classes"]:
        print(
            f"  {row['kind']:<5}{row['dtype']:<7}{row['k']:>5}{row['n']:>5}"
            f"{row['m_bucket']:>6}  {row['stable_patterns']}/{row['unstable_patterns']}"
        )
    print(
        "note: an unstable class never blocks tile fusion -- its GEMMs run "
        "per-block inside the fused tile (bit-exact by construction)."
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    raise SystemExit(main())
