"""Per-sample stream banks and LFSR snapshots.

The Shift-BNN accelerator trains the ``S`` Monte-Carlo samples of a BNN on
``S`` Sample Processing Units that run in parallel, each with its own set of
GRNGs.  The software trainer mirrors that organisation with a
:class:`StreamBank`: one epsilon stream per sample, seeded deterministically so
that runs are reproducible and so that the baseline (stored) and Shift-BNN
(reversible) trainers see *exactly the same* random variables when given the
same bank seed.

:class:`LfsrSnapshot` captures and restores the full state of a stream's
generator, which is how the trainer realigns streams between iterations and
how tests assert bit-exact equivalence.

Besides the per-sample :class:`~repro.core.sampler.WeightSampler` objects, a
bank exposes :meth:`StreamBank.batched_sampler`: one
:class:`~repro.core.sampler.BatchedWeightSampler` that serves ``(S, *shape)``
weight/epsilon tensors for *all* samples per call straight from the shared
bank's batched kernels -- the epsilon source of the batched FW/BW/GC
pipeline.  Both interfaces draw from the same registers and produce the same
bits; within one training iteration a caller should use one or the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Literal, Sequence, Union

from .grng import LfsrGaussianRNG
from .grng_bank import BankedGaussianRNG, GrngBank
from .sampler import BatchedWeightSampler, WeightSampler
from .streams import EpsilonStream, ReversibleGaussianStream, StoredGaussianStream

__all__ = ["LfsrSnapshot", "StreamBank", "StreamPolicy"]

StreamPolicy = Literal["stored", "reversible", "reversible-hw"]

#: Generators a snapshot or stream bank can drive: the scalar reference
#: implementation or a row view of a batched bank.
GaussianGenerator = Union[LfsrGaussianRNG, BankedGaussianRNG]


@dataclass(frozen=True)
class LfsrSnapshot:
    """Immutable snapshot of a GRNG's register and bit-sum."""

    n_bits: int
    taps: tuple[int, ...]
    state: int
    sum_register: int

    @classmethod
    def capture(cls, grng: GaussianGenerator) -> "LfsrSnapshot":
        """Snapshot the generator's register and its *actual* running sum.

        The sum register is read from the generator rather than recomputed
        from the pattern, so a generator whose accumulator has drifted from
        the register (e.g. after an external state write without a resync)
        round-trips exactly instead of being silently healed.
        """
        return cls(
            n_bits=grng.n_bits,
            taps=grng.lfsr.taps,
            state=grng.lfsr.state,
            sum_register=grng.sum_register,
        )

    def restore(self, grng: GaussianGenerator) -> None:
        """Write this snapshot back into ``grng``, sum register included."""
        if grng.n_bits != self.n_bits or grng.lfsr.taps != self.taps:
            raise ValueError("snapshot was captured from an incompatible generator")
        grng.lfsr.state = self.state
        grng.sum_register = self.sum_register


class StreamBank:
    """A bank of per-sample epsilon streams with deterministic seeding.

    Parameters
    ----------
    n_samples:
        Number of Monte-Carlo samples ``S`` (one stream / SPU each).
    policy:
        ``"stored"`` for the baseline store-and-fetch behaviour,
        ``"reversible"`` for Shift-BNN's checkpointed regeneration, or
        ``"reversible-hw"`` for literal step-accurate reverse shifting.
    seed:
        Bank-level seed; sample ``i`` uses seed index ``seed * stride + i`` so
        two banks built with the same ``seed`` produce identical epsilons
        regardless of policy.
    lfsr_bits:
        Width of each GRNG's LFSR (256 in the paper).
    grng_stride:
        Register shifts per Gaussian variable.  ``1`` is the hardware-faithful
        sliding-window mode; ``lfsr_bits`` (non-overlapping patterns) gives
        effectively independent variables and is what the functional BNN
        trainers use by default.  The reversal property holds for any stride.
    lockstep:
        Enable the shared bank's speculative cross-sample prefetching for the
        per-sample samplers (default).  ``False`` serves every per-row
        request with its own kernel call -- the pre-lockstep per-sample
        behaviour, kept as a benchmark baseline and for workloads whose
        samples deliberately diverge.  Values are identical either way.
    sample_indices:
        Which of the run's canonical Monte-Carlo samples this bank hosts
        (default: ``0 .. n_samples-1``).  A distributed shard worker passes
        its shard here: row ``j`` is then seeded as canonical sample
        ``sample_indices[j]`` would be, so the union of the shard banks
        reproduces a full bank's epsilon bits exactly, regardless of how the
        samples are partitioned.
    """

    _SEED_STRIDE = 1024

    def __init__(
        self,
        n_samples: int,
        policy: StreamPolicy = "reversible",
        seed: int = 0,
        lfsr_bits: int = 256,
        bytes_per_value: int = 2,
        grng_stride: int = 1,
        lockstep: bool = True,
        sample_indices: Sequence[int] | None = None,
    ) -> None:
        if n_samples < 1:
            raise ValueError("a stream bank needs at least one sample")
        if policy not in ("stored", "reversible", "reversible-hw"):
            raise ValueError(f"unknown stream policy {policy!r}")
        if sample_indices is None:
            sample_indices = range(n_samples)
        self._sample_indices = tuple(int(index) for index in sample_indices)
        if len(self._sample_indices) != n_samples:
            raise ValueError(
                f"sample_indices carries {len(self._sample_indices)} entries "
                f"for {n_samples} samples"
            )
        if any(index < 0 for index in self._sample_indices):
            raise ValueError("sample indices must be non-negative")
        self._n_samples = n_samples
        self._policy: StreamPolicy = policy
        self._seed = seed
        self._lfsr_bits = lfsr_bits
        # All per-sample generators live in one packed GrngBank and draw in
        # lockstep: the first sample to request a layer's block triggers one
        # batched kernel call serving every sample.  Seeding matches the
        # scalar generators bit for bit, so values are policy- and
        # engine-independent.
        self._grng_bank = GrngBank(
            n_bits=lfsr_bits,
            seed_indices=[
                seed * self._SEED_STRIDE + sample_index
                for sample_index in self._sample_indices
            ],
            stride=grng_stride,
            lockstep=lockstep,
        )
        self._streams: list[EpsilonStream] = [
            self._build_stream(self._grng_bank.row_view(sample_index), bytes_per_value)
            for sample_index in range(n_samples)
        ]
        self._samplers = [WeightSampler(stream) for stream in self._streams]
        self._batched_sampler: BatchedWeightSampler | None = None

    def _build_stream(
        self, grng: GaussianGenerator, bytes_per_value: int
    ) -> EpsilonStream:
        if self._policy == "stored":
            return StoredGaussianStream(grng, bytes_per_value=bytes_per_value)
        use_checkpoints = self._policy == "reversible"
        return ReversibleGaussianStream(
            grng, bytes_per_value=bytes_per_value, use_checkpoints=use_checkpoints
        )

    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Number of Monte-Carlo samples (streams) in the bank."""
        return self._n_samples

    @property
    def policy(self) -> StreamPolicy:
        """The epsilon-management policy used by every stream in the bank."""
        return self._policy

    @property
    def sample_indices(self) -> tuple[int, ...]:
        """Canonical Monte-Carlo sample index hosted by each row."""
        return self._sample_indices

    @property
    def streams(self) -> Sequence[EpsilonStream]:
        """The per-sample streams, indexable by sample number."""
        return tuple(self._streams)

    @property
    def samplers(self) -> Sequence[WeightSampler]:
        """The per-sample weight samplers, indexable by sample number."""
        return tuple(self._samplers)

    def sampler(self, sample_index: int) -> WeightSampler:
        """Return the weight sampler of Monte-Carlo sample ``sample_index``."""
        return self._samplers[sample_index]

    def batched_sampler(self) -> BatchedWeightSampler:
        """A sampler serving all ``S`` samples per call from the shared bank.

        The batched sampler draws ``(S, *weight_shape)`` tensors straight from
        the lockstep :class:`~repro.core.grng_bank.GrngBank` kernels while
        updating the same per-sample :class:`~repro.core.streams.StreamUsage`
        records as the per-sample samplers would, so traffic totals stay
        policy-comparable.  It shares the bank's register state with the
        per-sample samplers; within one iteration use either interface, not
        both.
        """
        if self._batched_sampler is None:
            self._batched_sampler = BatchedWeightSampler(
                self._grng_bank,
                [stream.usage for stream in self._streams],
                policy=self._policy,
            )
        return self._batched_sampler

    def __iter__(self) -> Iterator[WeightSampler]:
        return iter(self._samplers)

    def __len__(self) -> int:
        return self._n_samples

    # ------------------------------------------------------------------
    def snapshots(self) -> list[LfsrSnapshot]:
        """Capture a snapshot of every stream's generator."""
        return [LfsrSnapshot.capture(stream.grng) for stream in self._streams]

    def restore(self, snapshots: Sequence[LfsrSnapshot]) -> None:
        """Restore every stream's generator from ``snapshots``."""
        if len(snapshots) != self._n_samples:
            raise ValueError(
                f"expected {self._n_samples} snapshots, got {len(snapshots)}"
            )
        for snapshot, stream in zip(snapshots, self._streams):
            snapshot.restore(stream.grng)

    def load_generator_states(self, snapshots: Sequence[LfsrSnapshot]) -> None:
        """Restore every generator at a step boundary and re-arm speculation.

        :meth:`restore` marks the written rows dirty (suspending lockstep
        speculation defensively); at a step boundary every row is restored
        together and provably in phase, so the bank is immediately re-armed.
        This is how a distributed shard worker adopts the coordinator's
        canonical generator states before executing a step, and how
        checkpoint loading rewinds a bank onto the saved trajectory.
        """
        self.restore(snapshots)
        self._grng_bank.end_iteration()

    def usage_state_dicts(self) -> list[dict[str, int]]:
        """Per-sample traffic counters, in row order (checkpoint / wire format)."""
        return [stream.usage.state_dict() for stream in self._streams]

    def load_usage_state_dicts(self, states: Sequence[dict[str, int]]) -> None:
        """Restore the per-sample traffic counters captured by
        :meth:`usage_state_dicts`."""
        if len(states) != self._n_samples:
            raise ValueError(
                f"expected {self._n_samples} usage records, got {len(states)}"
            )
        for stream, state in zip(self._streams, states):
            stream.usage.load_state_dict(state)

    def reset_usage(self) -> None:
        """Zero every stream's traffic counters (shard workers, step start)."""
        for stream in self._streams:
            stream.usage.reset()

    @property
    def grng_bank(self) -> GrngBank:
        """The shared batched generator bank backing every stream."""
        return self._grng_bank

    def finish_iteration(self) -> None:
        """Check that every stream consumed all its blocks this iteration.

        Also re-arms the bank's lockstep speculation: per-iteration register
        restores mark rows dirty, and the iteration boundary is the point
        where all rows are provably back in phase.
        """
        if self._batched_sampler is not None:
            self._batched_sampler.finish_iteration()
        for sampler in self._samplers:
            sampler.finish_iteration()
        self._grng_bank.end_iteration()

    def total_offchip_epsilon_bytes(self) -> int:
        """Off-chip bytes moved for epsilons across all samples (read + write)."""
        return sum(
            stream.usage.offchip_write_bytes + stream.usage.offchip_read_bytes
            for stream in self._streams
        )

    def total_epsilon_footprint_bytes(self) -> int:
        """Peak epsilon memory footprint across all samples."""
        return sum(stream.usage.footprint_bytes for stream in self._streams)
