"""Word-packed bit-sequence primitives shared by the scalar and array LFSRs.

The LFSR recurrence ``b(t) = XOR_p b(t - p)`` (tap offsets ``p``, tail tap
``n`` included) is linear over GF(2), which admits two big software
optimisations that this module implements once for both
:class:`~repro.core.lfsr.FibonacciLFSR` (one register) and
:class:`~repro.core.lfsr_array.LfsrArray` (a bank of registers in lockstep):

* **word packing** -- sequences are stored 64 bits per ``uint64`` word, so one
  XOR instruction advances 64 recurrence positions per register instead of one
  ``uint8`` element;
* **polynomial squaring (leapfrogging)** -- if the feedback polynomial ``P``
  annihilates the bit sequence, so does ``P**(2**k)``, and squaring over GF(2)
  keeps the tap count unchanged while doubling every offset.  Once ``2**k * n``
  bits of history exist, chunks of ``2**k * min_tap`` bits can be produced per
  set of tap XORs, so the number of chunk iterations grows only
  logarithmically with the block length instead of linearly.

Bit convention: bit ``i`` of the sequence lives at bit ``i % 64`` of word
``i // 64`` (little-endian within and across words, matching
``np.packbits(..., bitorder="little")`` on little-endian hosts).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "words_for_bits",
    "pack_bits",
    "unpack_bits",
    "pack_int_rows",
    "unpack_int_rows",
    "fill_lfsr_sequence",
    "run_lfsr_block",
    "run_lfsr_block_packed",
]

_WORD = 64


def words_for_bits(n_bits: int) -> int:
    """Number of 64-bit words needed to hold ``n_bits`` bits."""
    return (n_bits + _WORD - 1) >> 6


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(N, L)`` uint8 bit matrix into ``(N, words_for_bits(L))`` words."""
    n_rows, n_bits = bits.shape
    n_words = words_for_bits(n_bits)
    packed = np.packbits(np.ascontiguousarray(bits), axis=1, bitorder="little")
    if packed.shape[1] != n_words * 8:
        padded = np.zeros((n_rows, n_words * 8), dtype=np.uint8)
        padded[:, : packed.shape[1]] = packed
        packed = padded
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack ``(N, W)`` uint64 words into the first ``n_bits`` bits per row."""
    raw = np.ascontiguousarray(words).view(np.uint8)
    return np.unpackbits(raw, axis=1, bitorder="little")[:, :n_bits]


def pack_int_rows(values: Sequence[int], n_bits: int) -> np.ndarray:
    """Pack non-negative Python integers into a ``(N, W)`` uint64 word matrix."""
    n_words = words_for_bits(n_bits)
    raw = b"".join(int(value).to_bytes(n_words * 8, "little") for value in values)
    return np.frombuffer(raw, dtype="<u8").reshape(len(values), n_words).astype(np.uint64)


def unpack_int_rows(words: np.ndarray) -> list[int]:
    """Inverse of :func:`pack_int_rows`: one Python integer per row."""
    data = np.ascontiguousarray(words.astype("<u8")).tobytes()
    row_bytes = words.shape[1] * 8
    return [
        int.from_bytes(data[i * row_bytes : (i + 1) * row_bytes], "little")
        for i in range(words.shape[0])
    ]


def _extract(
    seq: np.ndarray, start: int, length: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Read ``length`` bits at bit offset ``start`` into packed words.

    With ``out`` (a ``(N, >= words_for_bits(length))`` uint64 workspace) the
    result is written into ``out``'s leading words and no temporaries are
    allocated -- the chunked recurrence calls this in a tight loop.
    """
    word0, shift = start >> 6, start & 63
    n_words = words_for_bits(length)
    head = seq[:, word0 : word0 + n_words]
    if out is None:
        if shift == 0:
            return head.copy()
        return (head >> shift) | (
            seq[:, word0 + 1 : word0 + 1 + n_words] << (_WORD - shift)
        )
    view = out[:, :n_words]
    if shift == 0:
        view[:] = head
        return view
    np.right_shift(head, shift, out=view)
    view |= seq[:, word0 + 1 : word0 + 1 + n_words] << (_WORD - shift)
    return view


def _deposit(seq: np.ndarray, start: int, values: np.ndarray, length: int) -> None:
    """OR ``length`` bits into ``seq`` at bit offset ``start`` (region must be 0)."""
    tail = length & 63
    if tail:
        values[:, -1] &= np.uint64((1 << tail) - 1)
    word0, shift = start >> 6, start & 63
    n_words = values.shape[1]
    if shift == 0:
        seq[:, word0 : word0 + n_words] |= values
    else:
        seq[:, word0 : word0 + n_words] |= values << shift
        seq[:, word0 + 1 : word0 + 1 + n_words] |= values >> (_WORD - shift)


def fill_lfsr_sequence(
    seq: np.ndarray, n_bits: int, count: int, offsets: Sequence[int]
) -> None:
    """Extend a packed bit sequence by ``count`` bits of the tap recurrence.

    ``seq`` is a ``(N, W)`` uint64 matrix whose first ``n_bits`` bits per row
    are already filled (and everything beyond them is zero).  ``offsets`` are
    the ascending tap offsets of ``b(t) = XOR_p b(t - p)`` with
    ``max(offsets) == n_bits``.

    Chunks are produced with the squared-polynomial tap sets
    ``{2**k * p}`` as soon as ``2**k * n_bits`` bits of history exist, which
    the identity ``P(x)**2 = P(x**2)`` over GF(2) makes valid: each squaring
    level doubles the chunk length at a constant number of word-XOR passes.
    """
    offsets = tuple(offsets)
    min_offset = offsets[0]
    position, end = n_bits, n_bits + count
    level = 0
    # Two reusable workspaces sized for the largest possible chunk keep the
    # tap XOR loop free of per-chunk temporaries.
    scratch_words = words_for_bits(count) + 1
    acc_buf = np.empty((seq.shape[0], scratch_words), dtype=np.uint64)
    tap_buf = np.empty_like(acc_buf)
    while position < end:
        while (n_bits << (level + 1)) <= position:
            level += 1
        length = min(min_offset << level, end - position)
        acc = _extract(seq, position - (offsets[0] << level), length, out=acc_buf)
        for offset in offsets[1:]:
            acc ^= _extract(seq, position - (offset << level), length, out=tap_buf)
        _deposit(seq, position, acc, length)
        position += length


def run_lfsr_block(
    state_words: np.ndarray,
    n_bits: int,
    count: int,
    offsets: Sequence[int],
    reverse: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Run ``count`` recurrence steps for every register row.

    ``state_words`` holds the registers ``R1..Rn`` packed little-endian (bit
    ``j`` is ``R(j+1)``).  For ``reverse=False`` the forward tap ``offsets``
    are expected, for ``reverse=True`` the mirrored ones.

    Returns ``(seq_bits, new_state_words)`` where ``seq_bits`` is the
    ``(N, n_bits + count)`` uint8 bit sequence -- per row the ``n_bits`` of
    history followed by the ``count`` freshly produced bits -- and
    ``new_state_words`` is the packed end-of-block register state.
    """
    seq_words, new_state_words = run_lfsr_block_packed(
        state_words, n_bits, count, offsets, reverse
    )
    return unpack_bits(seq_words, n_bits + count), new_state_words


def run_lfsr_block_packed(
    state_words: np.ndarray,
    n_bits: int,
    count: int,
    offsets: Sequence[int],
    reverse: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`run_lfsr_block` without the final bit unpack.

    Returns ``(seq_words, new_state_words)``: the produced sequence stays
    word-packed (bit ``i`` of a row at bit ``i % 64`` of word ``i // 64``),
    which lets popcount-style consumers reduce it with
    :func:`numpy.bitwise_count` instead of materialising ``n_bits + count``
    bytes per row.  Bits beyond ``n_bits + count`` in the returned words are
    zero.
    """
    total = n_bits + count
    seq = np.zeros(
        (state_words.shape[0], words_for_bits(total) + 2), dtype=np.uint64
    )
    state_bits = unpack_bits(state_words, n_bits)
    # Forward time order is oldest-bit-first, i.e. Rn..R1; reversed time order
    # starts from the current head, i.e. R1..Rn.
    history = state_bits if reverse else state_bits[:, ::-1]
    seq[:, : words_for_bits(n_bits)] = pack_bits(history)
    fill_lfsr_sequence(seq, n_bits, count, offsets)
    window_words = _extract(seq, count, n_bits)
    tail = n_bits & 63
    if tail:
        window_words[:, -1] &= np.uint64((1 << tail) - 1)
    if reverse:
        new_state_words = window_words
    else:
        new_state_words = pack_bits(unpack_bits(window_words, n_bits)[:, ::-1])
    return seq, new_state_words
