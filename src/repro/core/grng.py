"""Gaussian random number generation from LFSR patterns.

The Shift-BNN accelerator (like VIBNN before it) synthesises Gaussian random
variables from uniformly-distributed LFSR bits using the Central Limit
Theorem: the number of ones among ``n`` independent fair bits follows
``B(n, 0.5)``, which approximates ``N(0.5 n, 0.25 n)`` for large ``n``.  The
paper's GRNG tracks the pattern bit-sum incrementally (adding the head-bit
update and subtracting the dropped bit) instead of re-counting with an adder
tree.

:class:`LfsrGaussianRNG` models that unit: it owns one
:class:`~repro.core.lfsr.FibonacciLFSR`, converts pattern popcounts into
standardised Gaussian variables, and supports the three operating modes the
paper describes (forward, reverse, idle).
"""

from __future__ import annotations

import math
from enum import Enum

import numpy as np

from .backend import dispatch
from .lfsr import FibonacciLFSR

__all__ = ["GRNGMode", "LfsrGaussianRNG", "ReplayError"]

_clt_standardise = dispatch("clt_standardise")


class GRNGMode(Enum):
    """Operating modes of the GRNG (Section 6.2 of the paper)."""

    FORWARD = "forward"
    REVERSE = "reverse"
    IDLE = "idle"


class ReplayError(RuntimeError):
    """Raised when a checkpoint replay does not land on the expected pattern.

    This is the software analogue of the consistency check a Shift-BNN stream
    performs when it regenerates a block from a block-boundary register
    checkpoint: the replay must end exactly on the pattern the register held
    before the retrieval, otherwise the register was tampered with between the
    training stages.
    """


class LfsrGaussianRNG:
    """CLT-based Gaussian random number generator over a Fibonacci LFSR.

    Each generated variable corresponds to one LFSR pattern: the register is
    shifted once, the pattern's bit-sum is updated incrementally, and the sum
    is standardised to ``eps = (sum - n/2) / sqrt(n/4)`` so that ``eps`` is
    approximately ``N(0, 1)``.

    Parameters
    ----------
    n_bits:
        LFSR width; the paper uses 256-bit registers.
    seed_index:
        Deterministic seed selector; distinct GRNG instances (one per PE slice
        in the hardware, one per Monte-Carlo sample in the software trainer)
        should use distinct indices.
    taps:
        Optional explicit tap positions forwarded to the LFSR.
    stride:
        Number of register shifts per emitted variable.  ``1`` matches the
        hardware exactly (one pattern per weight) but makes consecutive
        variables a slow random walk because neighbouring patterns share
        ``n_bits - 1`` bits.  ``n_bits`` uses non-overlapping patterns and
        yields effectively independent variables; the functional BNN trainer
        defaults to that mode.  LFSR reversal retrieves the identical values
        for any stride.
    """

    def __init__(
        self,
        n_bits: int = 256,
        seed_index: int = 0,
        taps: tuple[int, ...] | None = None,
        stride: int = 1,
    ) -> None:
        if stride < 1:
            raise ValueError("stride must be at least 1 shift per variable")
        self._lfsr = FibonacciLFSR.from_seed_index(n_bits, seed_index, taps=taps)
        self._n = n_bits
        self._stride = stride
        self._mean = n_bits / 2.0
        self._std = math.sqrt(n_bits / 4.0)
        self._mode = GRNGMode.IDLE
        # The hardware keeps the running bit-sum in a register seeded with the
        # popcount of the initial pattern; we model the same register.
        self._sum_register = self._lfsr.popcount
        self._generated = 0
        self._retrieved = 0

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def lfsr(self) -> FibonacciLFSR:
        """The underlying shift register (exposed for tests and checkpoints)."""
        return self._lfsr

    @property
    def n_bits(self) -> int:
        """Width of the LFSR pattern used per Gaussian variable."""
        return self._n

    @property
    def mode(self) -> GRNGMode:
        """Current operating mode (forward / reverse / idle)."""
        return self._mode

    @property
    def resolution(self) -> float:
        """Smallest representable step between two Gaussian values."""
        return 1.0 / self._std

    @property
    def stride(self) -> int:
        """Register shifts performed per emitted variable."""
        return self._stride

    @property
    def generated_count(self) -> int:
        """Number of variables produced in forward mode."""
        return self._generated

    @property
    def retrieved_count(self) -> int:
        """Number of variables retrieved in reverse mode."""
        return self._retrieved

    @property
    def sum_register(self) -> int:
        """The running pattern bit-sum register (the hardware accumulator)."""
        return self._sum_register

    @sum_register.setter
    def sum_register(self, value: int) -> None:
        self._sum_register = int(value)

    # ------------------------------------------------------------------
    # mode control
    # ------------------------------------------------------------------
    def set_mode(self, mode: GRNGMode) -> None:
        """Switch the operating mode (models the controller's mode signal)."""
        if not isinstance(mode, GRNGMode):
            raise TypeError(f"expected GRNGMode, got {type(mode).__name__}")
        self._mode = mode

    # ------------------------------------------------------------------
    # scalar (hardware-faithful) interface
    # ------------------------------------------------------------------
    def _standardise(self, popcount: float | np.ndarray) -> float | np.ndarray:
        return _clt_standardise(popcount, self._mean, self._std)

    def next_epsilon(self) -> float:
        """Generate one Gaussian variable by ``stride`` forward shifts."""
        if self._mode is not GRNGMode.FORWARD:
            self._mode = GRNGMode.FORWARD
        for _ in range(self._stride):
            before_tail = (self._lfsr.state >> (self._n - 1)) & 1
            head = self._lfsr.shift_forward()
            # Incremental bit-update: the sum changes by (new head - dropped tail).
            self._sum_register += head - before_tail
        self._generated += 1
        return float(self._standardise(self._sum_register))

    def previous_epsilon(self) -> float:
        """Retrieve the most recent Gaussian variable by ``stride`` reverse shifts.

        The value returned equals the one :meth:`next_epsilon` produced for
        that pattern; the register is left ``stride`` patterns earlier.
        """
        if self._mode is not GRNGMode.REVERSE:
            self._mode = GRNGMode.REVERSE
        current = float(self._standardise(self._sum_register))
        for _ in range(self._stride):
            head_before = self._lfsr.state & 1
            tail = self._lfsr.shift_reverse()
            self._sum_register += tail - head_before
        self._retrieved += 1
        return current

    # ------------------------------------------------------------------
    # block (vectorised) interface
    # ------------------------------------------------------------------
    def epsilon_block(self, count: int) -> np.ndarray:
        """Generate ``count`` Gaussian variables with vectorised shifting.

        Equivalent to ``count`` calls to :meth:`next_epsilon` but orders of
        magnitude faster; used by the software training substrate.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        self._mode = GRNGMode.FORWARD
        popcounts = self._lfsr.window_popcounts(count * self._stride)
        self._sum_register = int(popcounts[-1])
        self._generated += count
        emitted = popcounts[self._stride - 1 :: self._stride]
        return self._standardise(emitted.astype(np.float64))

    def epsilon_block_reverse(self, count: int) -> np.ndarray:
        """Retrieve the previous ``count`` Gaussian variables (newest first).

        ``epsilon_block_reverse(k)`` returns exactly
        ``epsilon_block(k)[::-1]`` for the block that was generated last, and
        leaves the register where it was before that block was generated.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        self._mode = GRNGMode.REVERSE
        # The current pattern's value is emitted first, then the register steps
        # back; vectorise by recovering the dropped tail bits in one pass.
        n = self._n
        steps = count * self._stride
        head_bits = self._lfsr.state_bits().astype(np.int64)  # R1..Rn, current
        current_sum = self._sum_register
        recovered = self._lfsr.generate_bits_reverse(steps).astype(np.int64)
        # Stepping back from pattern t to t-1 changes the sum by
        # (recovered tail of t-1) - (head of t).  Heads of successive earlier
        # patterns are the register contents R1, R2, ... of the current one,
        # continuing into the recovered tail stream once the window is exceeded.
        heads = np.empty(steps, dtype=np.int64)
        limit = min(steps, n)
        heads[:limit] = head_bits[:limit]
        if steps > n:
            heads[n:] = recovered[: steps - n]
        delta = np.cumsum(recovered - heads)
        sums = np.empty(steps, dtype=np.int64)
        sums[0] = current_sum
        if steps > 1:
            sums[1:] = current_sum + delta[:-1]
        self._sum_register = int(current_sum + delta[-1])
        self._retrieved += count
        emitted = sums[:: self._stride]
        return self._standardise(emitted.astype(np.float64))

    def replay_block(
        self,
        start_state: int,
        count: int,
        expected_end_state: int | None = None,
    ) -> np.ndarray:
        """Regenerate a block of ``count`` variables from a register checkpoint.

        Models how a Shift-BNN stream serves a retrieval from a block-boundary
        checkpoint: the register is rewound to ``start_state``, the block is
        regenerated with the fast forward generator, and -- when
        ``expected_end_state`` is given -- the replay is checked to land
        exactly on that pattern (raising :class:`ReplayError` otherwise, with
        the register left where the replay ended).  On success the register is
        put back on ``start_state`` with a resynchronised sum register, ready
        to serve the next (earlier) block.
        """
        self._lfsr.state = start_state
        values = self.epsilon_block(count)
        if expected_end_state is not None and self._lfsr.state != expected_end_state:
            raise ReplayError(
                "checkpoint replay did not land on the pre-retrieval pattern"
            )
        self._lfsr.state = start_state
        # A replay is net-zero register movement; undo the counter advance.
        self._lfsr.adjust_shift_count(-count * self._stride)
        self.resync_sum_register()
        return values

    def resync_sum_register(self) -> None:
        """Reload the running bit-sum from the current pattern.

        Needed after the register state is overwritten externally (e.g. when a
        stream restores a block-boundary checkpoint).
        """
        self._sum_register = self._lfsr.popcount

    # ------------------------------------------------------------------
    # copying and diagnostics
    # ------------------------------------------------------------------
    def copy(self) -> "LfsrGaussianRNG":
        """Return an independent generator with identical state and counters.

        All scalar attributes are carried over wholesale (so newly added
        fields can never silently desync) and the underlying LFSR is cloned.
        """
        clone = object.__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone._lfsr = self._lfsr.copy()
        return clone

    def distribution_summary(self, count: int = 4096) -> dict[str, float]:
        """Generate ``count`` variables from a copy and summarise their moments.

        Used by tests and by the GRNG-width ablation; the generator itself is
        not advanced.
        """
        samples = self.copy().epsilon_block(count)
        return {
            "mean": float(np.mean(samples)),
            "std": float(np.std(samples)),
            "skew": float(_skewness(samples)),
            "min": float(np.min(samples)),
            "max": float(np.max(samples)),
        }

    def __repr__(self) -> str:
        return (
            f"LfsrGaussianRNG(n_bits={self._n}, mode={self._mode.value}, "
            f"generated={self._generated}, retrieved={self._retrieved})"
        )


def _skewness(samples: np.ndarray) -> float:
    centred = samples - samples.mean()
    std = samples.std()
    if std == 0:
        return 0.0
    return float(np.mean(centred**3) / std**3)
