"""Fibonacci Linear Feedback Shift Registers with reversible shifting.

This module is the bit-level heart of the Shift-BNN reproduction.  The paper's
central observation (Section 4) is that the LFSRs used to generate Gaussian
random variables for Bayesian weight sampling are *reversible*: shifting the
register in the opposite direction, with a mirrored tap selection, reproduces
every previous pattern exactly.  Backpropagation consumes the random variables
in the reverse of the order in which the forward pass produced them, so the
accelerator can regenerate them locally instead of spilling them to DRAM.

Two execution styles are provided:

* step-wise ``shift_forward`` / ``shift_reverse`` -- a faithful model of the
  hardware register, one pattern per call;
* vectorised ``generate_bits`` -- a NumPy block generator used by the software
  training substrate, producing the identical bit sequence orders of magnitude
  faster.  Property tests assert the two styles agree bit for bit.

Register convention
-------------------
Registers are named ``R1 .. Rn`` as in Fig. 4 of the paper.  ``R1`` is the head
(receives the feedback bit on a forward shift) and ``Rn`` is the tail (dropped
on a forward shift).  Internally the state is a Python integer whose bit ``j``
(0-based) stores register ``R(j+1)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .backend import dispatch
from .bitops import pack_int_rows, unpack_bits, unpack_int_rows

_lfsr_step_block = dispatch("lfsr_step_block")
_window_popcounts = dispatch("window_popcounts")

__all__ = [
    "MAXIMAL_TAPS",
    "FibonacciLFSR",
    "LFSRStateError",
    "mirrored_taps",
    "normalise_taps",
    "parity",
    "seed_from_index",
]


#: Tap positions (1-based, tail tap ``n`` included) of maximal-length Fibonacci
#: LFSR feedback polynomials, following the standard XNOR/XOR tap tables
#: (Xilinx XAPP 052 and common references).  The 256-bit entry is the
#: polynomial x^256 + x^254 + x^251 + x^246 + 1 used by the paper's GRNG.
MAXIMAL_TAPS: dict[int, tuple[int, ...]] = {
    4: (4, 3),
    8: (8, 6, 5, 4),
    16: (16, 15, 13, 4),
    24: (24, 23, 22, 17),
    32: (32, 22, 2, 1),
    48: (48, 47, 21, 20),
    64: (64, 63, 61, 60),
    96: (96, 94, 49, 47),
    128: (128, 126, 101, 99),
    192: (192, 190, 178, 177),
    256: (256, 254, 251, 246),
}


class LFSRStateError(ValueError):
    """Raised when an LFSR is constructed or driven into an invalid state."""


def parity(value: int) -> int:
    """Return the XOR (parity) of all bits of a non-negative integer."""
    if value < 0:
        raise ValueError("parity is defined for non-negative integers only")
    return bin(value).count("1") & 1


def mirrored_taps(n_bits: int, taps: tuple[int, ...]) -> tuple[int, ...]:
    """Return the tap set of the time-reversed LFSR.

    If the forward head-bit sequence obeys ``b(t) = XOR_p b(t - p)`` for tap
    offsets ``p`` (with ``n`` always a tap), the reversed sequence obeys the
    same recurrence with offsets ``n - p`` (and ``n``).  This is the register
    selection highlighted in blue in Fig. 8(b) of the paper.
    """
    if n_bits not in taps:
        raise LFSRStateError("the tail position n must be a tap")
    mirrored = sorted({n_bits - p for p in taps if p != n_bits} | {n_bits})
    return tuple(mirrored)


def normalise_taps(n_bits: int, taps: tuple[int, ...] | None) -> tuple[int, ...]:
    """Validate a tap selection and return it sorted ascending.

    ``taps=None`` selects the maximal-length polynomial from
    :data:`MAXIMAL_TAPS` when one is tabulated for ``n_bits``.
    """
    if n_bits < 2:
        raise LFSRStateError(f"an LFSR needs at least 2 bits, got {n_bits}")
    if taps is None:
        if n_bits not in MAXIMAL_TAPS:
            raise LFSRStateError(
                f"no default tap table entry for {n_bits}-bit LFSRs; "
                "pass taps= explicitly"
            )
        taps = MAXIMAL_TAPS[n_bits]
    taps = tuple(sorted(set(int(t) for t in taps)))
    if not taps or taps[-1] != n_bits:
        raise LFSRStateError("the tail position n must be included in the taps")
    if taps[0] < 1:
        raise LFSRStateError("tap positions are 1-based and must be >= 1")
    if len(taps) < 2:
        raise LFSRStateError("at least two taps are required for a useful LFSR")
    return taps


def seed_from_index(n_bits: int, index: int) -> int:
    """Deterministic, well-spread, non-zero seed for register ``index``.

    A splitmix-style integer hash folded to the register width; guarantees
    distinct non-zero seeds for the index range used by the accelerator
    (hundreds of GRNGs).
    """
    if index < 0:
        raise LFSRStateError("seed index must be non-negative")
    value = 0
    word = index + 0x9E3779B97F4A7C15
    chunks = (n_bits + 63) // 64
    for chunk in range(chunks):
        word = (word + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        mixed = word
        mixed = ((mixed ^ (mixed >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        mixed = ((mixed ^ (mixed >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        mixed ^= mixed >> 31
        value |= mixed << (64 * chunk)
    value &= (1 << n_bits) - 1
    if value == 0:
        value = 1
    return value


@dataclass(frozen=True)
class _TapMasks:
    """Precomputed bit masks for fast integer shifting."""

    full: int
    feedback: int
    reverse_feedback: int


class FibonacciLFSR:
    """A Fibonacci (many-to-one) LFSR with forward and reverse shifting.

    Parameters
    ----------
    n_bits:
        Register length.  The paper's GRNG uses 256 bits.
    seed:
        Initial register contents as a non-zero integer below ``2**n_bits``.
        The all-zero state is a fixed point of the recurrence and is rejected.
    taps:
        1-based tap positions.  Defaults to the maximal-length polynomial from
        :data:`MAXIMAL_TAPS` when available.

    Examples
    --------
    >>> lfsr = FibonacciLFSR(8, seed=0b11110000)
    >>> first = lfsr.state
    >>> _ = [lfsr.shift_forward() for _ in range(5)]
    >>> _ = [lfsr.shift_reverse() for _ in range(5)]
    >>> lfsr.state == first
    True
    """

    def __init__(
        self,
        n_bits: int,
        seed: int,
        taps: tuple[int, ...] | None = None,
    ) -> None:
        taps = normalise_taps(n_bits, taps)
        self._n = n_bits
        self._taps = taps
        self._masks = self._build_masks(n_bits, taps)
        self.state = seed
        self._shift_count = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _build_masks(n_bits: int, taps: tuple[int, ...]) -> _TapMasks:
        full = (1 << n_bits) - 1
        feedback = 0
        for p in taps:
            feedback |= 1 << (p - 1)
        # Reverse feedback reads the head bit plus the registers one past each
        # non-tail tap (Eq. 3 of the paper): R1, R(a+1), R(b+1), R(c+1).
        reverse = 1  # head register R1
        for p in taps:
            if p != n_bits:
                reverse |= 1 << p
        return _TapMasks(full=full, feedback=feedback, reverse_feedback=reverse)

    @classmethod
    def from_seed_index(
        cls, n_bits: int, index: int, taps: tuple[int, ...] | None = None
    ) -> "FibonacciLFSR":
        """Build an LFSR with a deterministic, well-spread non-zero seed.

        ``index`` selects a distinct seed (e.g. one per GRNG instance in an
        SPU).  The seed is produced by a splitmix-style integer hash folded to
        the register width, which guarantees distinct non-zero seeds for the
        index range used by the accelerator (hundreds of GRNGs).
        """
        return cls(n_bits, seed=seed_from_index(n_bits, index), taps=taps)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def n_bits(self) -> int:
        """Register length in bits."""
        return self._n

    @property
    def taps(self) -> tuple[int, ...]:
        """1-based tap positions (tail tap included)."""
        return self._taps

    @property
    def state(self) -> int:
        """Current register contents as an integer (bit ``j`` is ``R(j+1)``)."""
        return self._state

    @state.setter
    def state(self, value: int) -> None:
        if not isinstance(value, int):
            raise LFSRStateError("LFSR state must be an integer")
        if value <= 0 or value > self._masks.full:
            raise LFSRStateError(
                f"LFSR state must be a non-zero {self._n}-bit integer, got {value!r}"
            )
        self._state = value

    @property
    def shift_count(self) -> int:
        """Net number of forward shifts applied since construction."""
        return self._shift_count

    @property
    def popcount(self) -> int:
        """Number of set bits in the current pattern (the GRNG bit sum)."""
        return bin(self._state).count("1")

    def state_bits(self) -> np.ndarray:
        """Return the registers ``R1..Rn`` as a ``uint8`` array."""
        words = pack_int_rows([self._state], self._n)
        return unpack_bits(words, self._n)[0]

    # ------------------------------------------------------------------
    # step-wise shifting (hardware-faithful)
    # ------------------------------------------------------------------
    def shift_forward(self) -> int:
        """Advance one pattern (forward mode); return the new head bit.

        The feedback bit is the XOR of the tap registers of the *previous*
        pattern; every other register takes its left neighbour's value and the
        tail value is dropped.
        """
        state = self._state
        feedback = parity(state & self._masks.feedback)
        self._state = ((state << 1) & self._masks.full) | feedback
        self._shift_count += 1
        return feedback

    def shift_reverse(self) -> int:
        """Step back one pattern (reverse mode); return the recovered tail bit.

        Implements Eq. 3 of the paper: the dropped tail bit of the previous
        pattern is the XOR of the current head register with the registers one
        position past each non-tail tap.
        """
        state = self._state
        tail = parity(state & self._masks.reverse_feedback)
        self._state = (state >> 1) | (tail << (self._n - 1))
        self._shift_count -= 1
        return tail

    def shift_forward_by(self, count: int) -> None:
        """Advance ``count`` patterns using the vectorised generator."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count:
            self.generate_bits(count)

    def shift_reverse_by(self, count: int) -> None:
        """Step back ``count`` patterns using the vectorised reverse generator."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count:
            self.generate_bits_reverse(count)

    def adjust_shift_count(self, delta: int) -> None:
        """Book-keeping hook for callers that rewind the register externally.

        A checkpoint replay, for example, is net-zero register movement: the
        caller restores the state and rewinds the counter by the shifts the
        replay performed.
        """
        self._shift_count += delta

    # ------------------------------------------------------------------
    # vectorised block generation
    # ------------------------------------------------------------------
    def _run_block_packed(self, count: int, reverse: bool) -> np.ndarray:
        """Run ``count`` packed recurrence steps; return the packed sequence."""
        offsets = mirrored_taps(self._n, self._taps) if reverse else self._taps
        words = pack_int_rows([self._state], self._n)
        seq_words, new_words = _lfsr_step_block(
            words, self._n, count, offsets, reverse
        )
        self._state = unpack_int_rows(new_words)[0]
        self._shift_count += -count if reverse else count
        return seq_words

    def _run_block(self, count: int, reverse: bool) -> np.ndarray:
        """Run ``count`` packed recurrence steps; return the full bit sequence."""
        seq_words = self._run_block_packed(count, reverse)
        return unpack_bits(seq_words, self._n + count)[0]

    def generate_bits(self, count: int) -> np.ndarray:
        """Produce the next ``count`` head bits (forward shifts), vectorised.

        Returns the bits in generation order.  The register state and shift
        counter are updated exactly as ``count`` calls to
        :meth:`shift_forward` would have left them.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros(0, dtype=np.uint8)
        return self._run_block(count, reverse=False)[self._n :].copy()

    def generate_bits_reverse(self, count: int) -> np.ndarray:
        """Recover the previous ``count`` dropped tail bits (reverse shifts).

        The bits are returned in retrieval order (most recently dropped
        first), matching ``count`` calls to :meth:`shift_reverse`.  The
        reversed-time sequence ``c(s) = b(T - s)`` obeys the mirrored-tap
        recurrence and starts from the current registers ``R1..Rn``.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros(0, dtype=np.uint8)
        return self._run_block(count, reverse=True)[self._n :].copy()

    def window_popcounts(self, count: int) -> np.ndarray:
        """Return the pattern popcounts after each of the next ``count`` shifts.

        This is the quantity the GRNG's adder tree (or the paper's incremental
        bit-update generator) computes for every pattern.  The register ends in
        the same state as :meth:`generate_bits` would leave it.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros(0, dtype=np.int32)
        seq_words = self._run_block_packed(count, reverse=False)
        popcounts = _window_popcounts(seq_words, self._n, count, 1)
        # Backends may emit any exact integer dtype; keep this method's
        # documented int32 contract.
        return np.asarray(popcounts[0], dtype=np.int32)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def copy(self) -> "FibonacciLFSR":
        """Return an independent LFSR with the same taps, state and counter."""
        clone = FibonacciLFSR(self._n, seed=self._state, taps=self._taps)
        clone._shift_count = self._shift_count
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FibonacciLFSR):
            return NotImplemented
        return (
            self._n == other._n
            and self._taps == other._taps
            and self._state == other._state
        )

    def __hash__(self) -> int:  # states are mutable; keep instances unhashable
        raise TypeError("FibonacciLFSR instances are mutable and unhashable")

    def __repr__(self) -> str:
        return (
            f"FibonacciLFSR(n_bits={self._n}, taps={self._taps}, "
            f"state=0x{self._state:x}, shift_count={self._shift_count})"
        )
