"""Pluggable kernel-backend dispatch with a bit-exactness conformance gate.

Every hot kernel of the engine -- packed LFSR stepping, strided window
popcounts, CLT standardisation, per-sample matmul and the im2col lowering --
is a named *dispatch point* in this registry.  The NumPy code the repo grew up
with is registered under the name ``"reference"`` for each point and is the
always-available oracle; alternative implementations (a different NumPy
strategy, an optional numba jit, one day a C extension or GPU path) register
against the same dispatch point and become *eligible* only after passing that
point's conformance gate: a fixed battery of inputs spanning the kernel's
domain (dtypes, strides 1 and 256, degenerate shapes) on which the candidate
must reproduce the oracle **bit for bit**.  The repo's crown-jewel contract --
served and distributed answers byte-identical to the standalone engine -- is
thereby preserved by construction: a backend that would change a single bit
can never be dispatched to.

Selection
---------
Per-kernel selection is explicit and observable:

* the environment variable ``REPRO_BACKEND`` (read once at import, reloadable
  via :meth:`KernelRegistry.load_env`) accepts a comma-separated list of
  ``kernel=backend`` pairs and/or bare backend names; a bare name applies to
  every dispatch point that registers it, so ``REPRO_BACKEND=reference``
  forces the oracle everywhere;
* :func:`set_backend` / :func:`using` force a backend programmatically (tests
  and benchmarks);
* without a forced choice each dispatch point walks its *default chain* --
  an ordered preference list -- and picks the first backend that is available,
  gate-eligible and whose :attr:`BackendImpl.supports` predicate accepts the
  call's actual arguments.  Domain-restricted fast paths (the word-aligned
  packed popcount) therefore fall back per call, exactly like the hand-written
  branches they replaced.

The active selection is captured in
:class:`~repro.models.zoo.ReplicaSpec` so serving and distributed workers
rebuild replicas on the same backends as the process that captured them, and
per-(kernel, backend) call/row counters feed ``ServerStats`` and the gateway's
``GET /stats`` so operators can see which implementations actually ran.

``python -m repro.core.backend --list`` prints the registry; ``--verify``
runs every available backend through its conformance gate.
"""

from __future__ import annotations

import argparse
import os
import threading
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from importlib.util import find_spec
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from . import bitops

__all__ = [
    "BackendConformanceError",
    "BackendImpl",
    "KernelBackendError",
    "KernelRegistry",
    "UnknownBackendError",
    "apply_selection",
    "counters_snapshot",
    "current_selection",
    "dispatch",
    "kernel_names",
    "list_backends",
    "registry",
    "reset_counters",
    "set_backend",
    "stats_snapshot",
    "using",
    "verify_backend",
]


class KernelBackendError(RuntimeError):
    """Base error for kernel-backend registry problems."""


class UnknownBackendError(KernelBackendError):
    """An unregistered kernel or backend name was requested."""


class BackendConformanceError(KernelBackendError):
    """A backend failed its bit-exactness conformance gate.

    Raised when a forced backend is not bit-identical to the reference oracle
    on the gate's input battery; such a backend is never dispatched to.
    """


@dataclass(frozen=True)
class BackendImpl:
    """One registered implementation of a dispatch point.

    ``fn`` takes the kernel's canonical arguments.  ``supports`` (called with
    the same arguments) narrows the input domain the backend handles --
    unsupported calls fall through to the next backend in the chain.
    ``available`` gates on the environment (e.g. an importable toolchain);
    unavailable backends self-skip everywhere, including the conformance
    suite, so optional numba/cython registrations cost nothing in containers
    without the toolchain.
    """

    name: str
    fn: Callable[..., Any]
    description: str = ""
    supports: Callable[..., bool] | None = field(default=None, repr=False)
    available: Callable[[], bool] | None = field(default=None, repr=False)

    def is_available(self) -> bool:
        if self.available is None:
            return True
        try:
            return bool(self.available())
        except Exception:  # pragma: no cover - defensive
            return False


@dataclass
class _Kernel:
    """A dispatch point: its backends, default chain and conformance gate."""

    name: str
    doc: str
    chain: tuple[str, ...]
    rows_of: Callable[..., int]
    conformance_cases: Callable[[], list[dict[str, Any]]]
    check: Callable[[dict[str, Any], Any, Any], None]
    backends: dict[str, BackendImpl] = field(default_factory=dict)

    #: Name every kernel's oracle is registered under.
    REFERENCE = "reference"


def _copy_case(case: Mapping[str, Any]) -> dict[str, Any]:
    """Deep-copy the array arguments of a conformance case.

    Each backend (and the oracle) runs on its own copies, so kernels that
    write into an ``out`` argument cannot leak state between runs.
    """
    return {
        key: value.copy() if isinstance(value, np.ndarray) else value
        for key, value in case.items()
    }


class KernelRegistry:
    """Thread-safe registry of dispatch points and their backends."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._kernels: dict[str, _Kernel] = {}
        self._forced: dict[str, str] = {}
        # (kernel, backend) -> True | the stored gate failure.  The gate runs
        # lazily on a backend's first non-reference dispatch and is cached.
        self._eligibility: dict[tuple[str, str], Any] = {}
        self._counters: dict[tuple[str, str], list[int]] = {}
        self._warned: set[str] = set()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_kernel(
        self,
        name: str,
        *,
        doc: str,
        chain: Sequence[str],
        rows_of: Callable[..., int],
        conformance_cases: Callable[[], list[dict[str, Any]]],
        check: Callable[[dict[str, Any], Any, Any], None],
    ) -> None:
        with self._lock:
            if name in self._kernels:
                raise KernelBackendError(f"kernel {name!r} is already registered")
            self._kernels[name] = _Kernel(
                name=name,
                doc=doc,
                chain=tuple(chain),
                rows_of=rows_of,
                conformance_cases=conformance_cases,
                check=check,
            )

    def register_backend(self, kernel: str, impl: BackendImpl) -> None:
        with self._lock:
            entry = self._kernel(kernel)
            if impl.name in entry.backends:
                raise KernelBackendError(
                    f"backend {impl.name!r} is already registered for {kernel!r}"
                )
            entry.backends[impl.name] = impl

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def _kernel(self, name: str) -> _Kernel:
        try:
            return self._kernels[name]
        except KeyError:
            raise UnknownBackendError(
                f"unknown kernel {name!r}; registered: {sorted(self._kernels)}"
            ) from None

    def kernel_names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._kernels))

    def backend_names(self, kernel: str) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._kernel(kernel).backends))

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def set_backend(self, kernel: str, backend: str | None) -> None:
        """Force ``kernel`` onto ``backend`` (``None`` restores the chain)."""
        with self._lock:
            entry = self._kernel(kernel)
            if backend is None:
                self._forced.pop(kernel, None)
                return
            if backend not in entry.backends:
                raise UnknownBackendError(
                    f"unknown backend {backend!r} for kernel {kernel!r}; "
                    f"registered: {sorted(entry.backends)}"
                )
            self._forced[kernel] = backend

    @contextmanager
    def using(self, kernel: str, backend: str | None) -> Iterator[None]:
        """Temporarily force a backend (benchmarks and tests)."""
        with self._lock:
            previous = self._forced.get(kernel)
        self.set_backend(kernel, backend)
        try:
            yield
        finally:
            self.set_backend(kernel, previous)

    def current_selection(self) -> dict[str, str]:
        """The explicitly forced ``{kernel: backend}`` choices (may be empty)."""
        with self._lock:
            return dict(self._forced)

    def apply_selection(self, selection: Mapping[str, str]) -> None:
        """Replace the forced choices wholesale (replica rebuilds use this)."""
        items = dict(selection)
        with self._lock:
            for kernel, backend in items.items():
                entry = self._kernel(kernel)
                if backend not in entry.backends:
                    raise UnknownBackendError(
                        f"unknown backend {backend!r} for kernel {kernel!r}"
                    )
            self._forced = items

    def load_env(self, value: str | None = None) -> None:
        """Parse ``REPRO_BACKEND`` into forced selections.

        ``value=None`` reads the environment variable.  The format is a
        comma-separated list of ``kernel=backend`` pairs and/or bare backend
        names; a bare name is applied to every kernel that registers a
        backend of that name.  Unknown names warn and are skipped (a typo in
        the environment must not take the engine down).
        """
        if value is None:
            value = os.environ.get("REPRO_BACKEND", "")
        selection: dict[str, str] = {}
        for token in value.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" in token:
                kernel, _, backend = token.partition("=")
                kernel, backend = kernel.strip(), backend.strip()
                with self._lock:
                    entry = self._kernels.get(kernel)
                if entry is None or backend not in entry.backends:
                    self._warn_once(
                        f"REPRO_BACKEND: ignoring unknown selection {token!r}"
                    )
                    continue
                selection[kernel] = backend
            else:
                matched = False
                with self._lock:
                    for kernel, entry in self._kernels.items():
                        if token in entry.backends:
                            selection[kernel] = token
                            matched = True
                if not matched:
                    self._warn_once(
                        f"REPRO_BACKEND: no kernel registers a backend "
                        f"named {token!r}; ignoring"
                    )
        with self._lock:
            self._forced = selection

    def _warn_once(self, message: str) -> None:
        with self._lock:
            if message in self._warned:
                return
            self._warned.add(message)
        warnings.warn(message, RuntimeWarning, stacklevel=3)

    # ------------------------------------------------------------------
    # conformance gate
    # ------------------------------------------------------------------
    def verify_backend(self, kernel: str, backend: str) -> bool:
        """Run the conformance gate for ``backend`` now (bypassing the cache).

        Returns ``True`` on a bit-identical pass; raises
        :class:`BackendConformanceError` on any mismatch and
        :class:`KernelBackendError` when the backend is unavailable in this
        environment.
        """
        entry = self._kernel(kernel)
        if backend not in entry.backends:
            raise UnknownBackendError(
                f"unknown backend {backend!r} for kernel {kernel!r}"
            )
        impl = entry.backends[backend]
        if not impl.is_available():
            raise KernelBackendError(
                f"backend {backend!r} for kernel {kernel!r} is not available "
                "in this environment"
            )
        outcome = self._run_conformance(entry, impl)
        with self._lock:
            self._eligibility[(kernel, backend)] = outcome
        if outcome is not True:
            raise outcome
        return True

    def _run_conformance(
        self, kernel: _Kernel, impl: BackendImpl
    ) -> Any:
        """Gate ``impl`` against the oracle; return ``True`` or the failure."""
        reference = kernel.backends[_Kernel.REFERENCE]
        for index, case in enumerate(kernel.conformance_cases()):
            if impl.supports is not None and not impl.supports(**_copy_case(case)):
                continue
            expected = reference.fn(**_copy_case(case))
            try:
                got = impl.fn(**_copy_case(case))
                kernel.check(case, expected, got)
            except Exception as exc:
                shapes = {
                    key: (value.shape, str(value.dtype))
                    if isinstance(value, np.ndarray)
                    else value
                    for key, value in case.items()
                }
                return BackendConformanceError(
                    f"backend {impl.name!r} failed the {kernel.name!r} "
                    f"conformance gate on case {index} ({shapes}): {exc}"
                )
        return True

    def _is_eligible(self, kernel: _Kernel, impl: BackendImpl) -> bool:
        """Lazily gate ``impl``; the reference oracle is eligible by fiat."""
        if impl.name == _Kernel.REFERENCE:
            return True
        key = (kernel.name, impl.name)
        with self._lock:
            outcome = self._eligibility.get(key)
        if outcome is None:
            outcome = self._run_conformance(kernel, impl)
            with self._lock:
                self._eligibility[key] = outcome
        return outcome is True

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _resolve(self, kernel: _Kernel, args: tuple, kwargs: dict) -> BackendImpl:
        with self._lock:
            forced = self._forced.get(kernel.name)
        if forced is not None:
            impl = kernel.backends.get(forced)
            if impl is None:  # pragma: no cover - set_backend validates
                raise UnknownBackendError(
                    f"unknown backend {forced!r} for kernel {kernel.name!r}"
                )
            if impl.is_available():
                if not self._is_eligible(kernel, impl):
                    # An explicitly selected backend that fails the gate is a
                    # hard error: silently answering from the oracle would
                    # mask the nonconformance the selection was probing.
                    with self._lock:
                        raise self._eligibility[(kernel.name, impl.name)]
                if impl.supports is None or impl.supports(*args, **kwargs):
                    return impl
                # Forced but outside the backend's input domain: the oracle
                # answers (bit-identical by definition of eligibility).
            else:
                self._warn_once(
                    f"backend {forced!r} for kernel {kernel.name!r} is not "
                    "available in this environment; using the default chain"
                )
                return self._resolve_chain(kernel, args, kwargs)
            return kernel.backends[_Kernel.REFERENCE]
        return self._resolve_chain(kernel, args, kwargs)

    def _resolve_chain(
        self, kernel: _Kernel, args: tuple, kwargs: dict
    ) -> BackendImpl:
        for name in kernel.chain:
            impl = kernel.backends[name]
            if not impl.is_available():
                continue
            if not self._is_eligible(kernel, impl):
                continue
            if impl.supports is not None and not impl.supports(*args, **kwargs):
                continue
            return impl
        return kernel.backends[_Kernel.REFERENCE]

    def call(self, kernel_name: str, /, *args: Any, **kwargs: Any) -> Any:
        """Dispatch one kernel call through the selected backend."""
        kernel = self._kernel(kernel_name)
        impl = self._resolve(kernel, args, kwargs)
        rows = kernel.rows_of(*args, **kwargs)
        key = (kernel_name, impl.name)
        with self._lock:
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = [0, 0]
            counter[0] += 1
            counter[1] += int(rows)
        return impl.fn(*args, **kwargs)

    def dispatch(self, kernel: str) -> Callable[..., Any]:
        """A callable bound to ``kernel`` that resolves its backend per call."""
        self._kernel(kernel)  # fail fast on typos at import time

        def run(*args: Any, **kwargs: Any) -> Any:
            return self.call(kernel, *args, **kwargs)

        run.__name__ = kernel
        run.__qualname__ = f"dispatch({kernel!r})"
        run.__doc__ = self._kernels[kernel].doc
        return run

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def reset_counters(self) -> None:
        with self._lock:
            self._counters.clear()

    def counters_snapshot(self) -> dict[str, dict[str, dict[str, int]]]:
        """``{kernel: {backend: {"calls", "rows"}}}`` for backends that ran."""
        with self._lock:
            snapshot: dict[str, dict[str, dict[str, int]]] = {}
            for (kernel, backend), (calls, rows) in sorted(self._counters.items()):
                snapshot.setdefault(kernel, {})[backend] = {
                    "calls": calls,
                    "rows": rows,
                }
            return snapshot

    def stats_snapshot(self) -> dict[str, dict[str, Any]]:
        """The selection and counters per kernel, for ``ServerStats``.

        ``selection`` is the forced backend name or ``"auto"`` (default
        chain); ``backends`` holds the call/row counters of every backend
        that actually ran in this process.
        """
        counters = self.counters_snapshot()
        with self._lock:
            return {
                name: {
                    "selection": self._forced.get(name, "auto"),
                    "backends": counters.get(name, {}),
                }
                for name in sorted(self._kernels)
            }

    def list_backends(self) -> list[dict[str, Any]]:
        """Registry contents for the CLI and tests (no gate side effects)."""
        with self._lock:
            listing = []
            for name in sorted(self._kernels):
                kernel = self._kernels[name]
                backends = []
                for backend_name in sorted(kernel.backends):
                    impl = kernel.backends[backend_name]
                    outcome = self._eligibility.get((name, backend_name))
                    if backend_name == _Kernel.REFERENCE:
                        verified = "oracle"
                    elif outcome is True:
                        verified = "passed"
                    elif outcome is not None:
                        verified = "failed"
                    else:
                        verified = "unverified"
                    backends.append(
                        {
                            "name": backend_name,
                            "description": impl.description,
                            "available": impl.is_available(),
                            "conformance": verified,
                        }
                    )
                listing.append(
                    {
                        "kernel": name,
                        "doc": kernel.doc,
                        "selection": self._forced.get(name, "auto"),
                        "chain": list(kernel.chain),
                        "backends": backends,
                    }
                )
            return listing


# ----------------------------------------------------------------------
# built-in dispatch points
# ----------------------------------------------------------------------
def _numba_available() -> bool:
    return find_spec("numba") is not None


# -- lfsr_step_block ---------------------------------------------------
def _lfsr_step_block_reference(state_words, n_bits, count, offsets, reverse):
    return bitops.run_lfsr_block_packed(state_words, n_bits, count, offsets, reverse)


#: Bits produced per chunk by the chunked LFSR fill (a cache-locality knob).
_CHUNK_BITS = 1 << 16


def _lfsr_step_block_chunked(state_words, n_bits, count, offsets, reverse):
    # The recurrence has a unique extension given ``n_bits`` of history, so
    # producing it in bounded chunks (each continuing from the bits the
    # previous chunk deposited) is bit-identical to one whole-block fill;
    # only the leapfrog scheduling -- and therefore the working set -- moves.
    total = n_bits + count
    seq = np.zeros(
        (state_words.shape[0], bitops.words_for_bits(total) + 2), dtype=np.uint64
    )
    state_bits = bitops.unpack_bits(state_words, n_bits)
    history = state_bits if reverse else state_bits[:, ::-1]
    seq[:, : bitops.words_for_bits(n_bits)] = bitops.pack_bits(history)
    produced = 0
    while produced < count:
        size = min(_CHUNK_BITS, count - produced)
        bitops.fill_lfsr_sequence(seq, n_bits + produced, size, offsets)
        produced += size
    window = bitops.unpack_bits(seq, total)[:, count:]
    new_state_words = bitops.pack_bits(window if reverse else window[:, ::-1])
    return seq, new_state_words


def _lfsr_taps(n_bits: int) -> tuple[int, ...]:
    # Ascending, as the kernel contract (and normalise_taps) requires.
    taps = {
        8: (4, 5, 6, 8),
        16: (4, 13, 15, 16),
        256: (246, 251, 254, 256),
    }
    return taps[n_bits]


def _mirrored(n_bits: int, taps: tuple[int, ...]) -> tuple[int, ...]:
    return tuple(sorted({n_bits - p for p in taps if p != n_bits} | {n_bits}))


def _random_state_words(rng, rows: int, n_bits: int) -> np.ndarray:
    words = rng.integers(
        0, 1 << 64, size=(rows, bitops.words_for_bits(n_bits)), dtype=np.uint64
    )
    tail = n_bits & 63
    if tail:
        words[:, -1] &= np.uint64((1 << tail) - 1)
    words[:, 0] |= np.uint64(1)  # the all-zero state is a recurrence fixed point
    return words


def _lfsr_step_block_cases() -> list[dict[str, Any]]:
    rng = np.random.default_rng(0xC0FFEE)
    cases = []
    for n_bits, count, rows, reverse in (
        (256, 512, 1, False),
        (256, 640, 3, True),
        (256, 64, 2, False),  # count < n_bits
        (256, _CHUNK_BITS + 320, 2, False),  # crosses a chunk boundary
        (16, 100, 2, False),
        (16, 96, 2, True),
        (8, 3, 1, False),  # degenerate: tiny block
    ):
        taps = _lfsr_taps(n_bits)
        offsets = _mirrored(n_bits, taps) if reverse else taps
        cases.append(
            {
                "state_words": _random_state_words(rng, rows, n_bits),
                "n_bits": n_bits,
                "count": count,
                "offsets": offsets,
                "reverse": reverse,
            }
        )
    return cases


def _check_lfsr_step_block(case, expected, got) -> None:
    total = case["n_bits"] + case["count"]
    exp_seq, exp_state = expected
    got_seq, got_state = got
    if got_seq.dtype != np.uint64 or got_state.dtype != np.uint64:
        raise AssertionError("sequence and state words must be uint64")
    if got_seq.shape[1] < bitops.words_for_bits(total):
        raise AssertionError("sequence buffer too small for the produced bits")
    if not np.array_equal(
        bitops.unpack_bits(exp_seq, total), bitops.unpack_bits(got_seq, total)
    ):
        raise AssertionError("produced bit sequence differs from the oracle")
    if np.any(bitops.unpack_bits(got_seq, got_seq.shape[1] * 64)[:, total:]):
        raise AssertionError("bits beyond n_bits + count must be zero")
    if not np.array_equal(exp_state, got_state):
        raise AssertionError("end-of-block register state differs from the oracle")


# -- window_popcounts --------------------------------------------------
def _window_popcounts_reference(seq_words, n_bits, count, stride):
    # Dense per-shift int64 running sum, then slice the emitted positions:
    # the simplest arithmetic over the widest dtype is the oracle.
    seq = bitops.unpack_bits(seq_words, n_bits + count)
    delta = seq[:, n_bits:].astype(np.int64) - seq[:, :count]
    popcounts = np.cumsum(delta, axis=1)
    popcounts += seq[:, :n_bits].sum(axis=1, dtype=np.int64)[:, None]
    return popcounts[:, stride - 1 :: stride]


def _window_popcounts_cumsum(seq_words, n_bits, count, stride):
    seq = bitops.unpack_bits(seq_words, n_bits + count)
    rows = seq.shape[0]
    if stride == 1:
        # One narrow cumsum instead of two wide ones; int16 is exact because
        # every intermediate is bounded by the register width (<= 256).
        delta = seq[:, n_bits:].astype(np.int16)
        delta -= seq[:, :count]
        popcounts = np.cumsum(delta, axis=1, out=delta)
        popcounts += seq[:, :n_bits].sum(axis=1, dtype=np.int16)[:, None]
        return popcounts
    # Per emitted position only the *block* sums of entering/leaving bits are
    # needed: two reductions plus a cumsum over count/stride entries.
    blocks = count // stride
    delta = seq[:, n_bits:].reshape(rows, blocks, stride).sum(axis=2, dtype=np.int32)
    delta -= seq[:, :count].reshape(rows, blocks, stride).sum(axis=2, dtype=np.int32)
    popcounts = np.cumsum(delta, axis=1, out=delta)
    popcounts += seq[:, :n_bits].sum(axis=1, dtype=np.int32)[:, None]
    return popcounts


def _window_popcounts_packed(seq_words, n_bits, count, stride):
    # Word-aligned strided emission: popcount the packed words directly --
    # no per-bit unpack of the sequence at all.
    word_pc = np.bitwise_count(seq_words[:, : (n_bits + count) // 64])
    n_words = n_bits // 64
    words_per_block = stride // 64
    blocks = count // stride
    rows = word_pc.shape[0]
    delta = (
        word_pc[:, n_words:]
        .reshape(rows, blocks, words_per_block)
        .sum(axis=2, dtype=np.int32)
    )
    delta -= (
        word_pc[:, : count // 64]
        .reshape(rows, blocks, words_per_block)
        .sum(axis=2, dtype=np.int32)
    )
    popcounts = np.cumsum(delta, axis=1, out=delta)
    popcounts += word_pc[:, :n_words].sum(axis=1, dtype=np.int32)[:, None]
    return popcounts


def _window_popcounts_packed_supports(seq_words, n_bits, count, stride):
    return stride > 1 and n_bits % 64 == 0 and stride % 64 == 0


def _random_seq_words(rng, rows: int, total_bits: int) -> np.ndarray:
    n_words = bitops.words_for_bits(total_bits) + 2
    words = rng.integers(0, 1 << 64, size=(rows, n_words), dtype=np.uint64)
    full, tail = total_bits >> 6, total_bits & 63
    words[:, full + (1 if tail else 0) :] = 0
    if tail:
        words[:, full] &= np.uint64((1 << tail) - 1)
    return words


def _window_popcounts_cases() -> list[dict[str, Any]]:
    rng = np.random.default_rng(0xBEEF)
    cases = []
    for n_bits, count, stride, rows in (
        (256, 1024, 1, 1),
        (256, 1024, 1, 3),
        (256, 1024, 256, 3),  # the paper's strided emission (packed-eligible)
        (256, 256, 256, 1),  # degenerate: a single emitted position
        (256, 512, 64, 2),  # word-aligned, narrower stride
        (256, 768, 3, 2),  # non-word-aligned stride
        (16, 96, 1, 2),  # register width not word-aligned
        (8, 40, 4, 1),
    ):
        cases.append(
            {
                "seq_words": _random_seq_words(rng, rows, n_bits + count),
                "n_bits": n_bits,
                "count": count,
                "stride": stride,
            }
        )
    return cases


def _check_window_popcounts(case, expected, got) -> None:
    # Backends may pick any integer dtype (int16 cumsum vs int32 block sums);
    # popcounts are exact small integers, so the float64 epsilon values
    # downstream are byte-identical whenever the integer values agree.
    if got.dtype.kind not in "iu":
        raise AssertionError(f"popcounts must be integers, got {got.dtype}")
    if got.shape != expected.shape:
        raise AssertionError(f"shape {got.shape} != oracle {expected.shape}")
    if not np.array_equal(np.asarray(expected, np.int64), np.asarray(got, np.int64)):
        raise AssertionError("popcount values differ from the oracle")


# -- clt_standardise ---------------------------------------------------
def _clt_standardise_reference(popcounts, mean, std):
    return (np.asarray(popcounts) - mean) / std


def _clt_standardise_inplace(popcounts, mean, std):
    # np.subtract on the int popcounts produces the float64 array directly
    # (integer-to-double conversion is exact) and the division reuses it.
    values = np.subtract(popcounts, mean)
    values /= std
    return values


_numba_clt_fn = None


def _clt_standardise_numba(popcounts, mean, std):
    global _numba_clt_fn
    if _numba_clt_fn is None:
        import numba

        @numba.njit(cache=False)
        def kern(values, mean, std):  # pragma: no cover - jit-compiled
            for i in range(values.size):
                values[i] = (values[i] - mean) / std

        _numba_clt_fn = kern
    values = np.array(popcounts, dtype=np.float64)
    _numba_clt_fn(values.reshape(-1), float(mean), float(std))
    return values


def _clt_standardise_cases() -> list[dict[str, Any]]:
    rng = np.random.default_rng(0xFACADE)
    n = 256
    mean, std = n / 2.0, float(np.sqrt(n / 4.0))
    pops32 = rng.integers(0, n + 1, size=(4, 96), dtype=np.int32)
    return [
        {"popcounts": pops32, "mean": mean, "std": std},
        {"popcounts": pops32.astype(np.int16), "mean": mean, "std": std},
        {"popcounts": pops32.astype(np.int64), "mean": mean, "std": std},
        {"popcounts": pops32[0].astype(np.float64), "mean": mean, "std": std},
        {"popcounts": pops32[0, :7], "mean": mean, "std": std},
        {"popcounts": np.int64(137), "mean": mean, "std": std},  # scalar path
        {"popcounts": np.zeros((3, 0), dtype=np.int16), "mean": mean, "std": std},
        {"popcounts": rng.integers(0, 17, size=33, dtype=np.int16), "mean": 8.0,
         "std": 2.0},
    ]


def _check_clt_standardise(case, expected, got) -> None:
    expected, got = np.asarray(expected), np.asarray(got)
    if got.dtype != np.float64:
        raise AssertionError(f"epsilon values must be float64, got {got.dtype}")
    if got.shape != expected.shape:
        raise AssertionError(f"shape {got.shape} != oracle {expected.shape}")
    if expected.tobytes() != got.tobytes():
        raise AssertionError("standardised values are not byte-identical")


# -- sample_matmul -----------------------------------------------------
def _sample_matmul_reference(a, b, out):
    # One 2-D matmul per sample: each slice is then byte-identical to the
    # sequential per-sample call (a stacked 3-D matmul may take a different
    # BLAS path and is not guaranteed to round identically).
    shared_a = a.ndim == 2
    for s in range(b.shape[0]):
        np.matmul(a if shared_a else a[s], b[s], out=out[s])
    return out


def _sample_matmul_dot(a, b, out):
    # np.dot and np.matmul reach the same cblas *gemm for 2-D float64
    # operands; the gate verifies the bit-identity claim anyway.
    shared_a = a.ndim == 2
    for s in range(b.shape[0]):
        np.dot(a if shared_a else a[s], b[s], out=out[s])
    return out


def _sample_matmul_dot_supports(a, b, out):
    return (
        a.dtype == np.float64
        and b.dtype == np.float64
        and out.dtype == np.float64
        and out.flags.c_contiguous
    )


def _sample_matmul_cases() -> list[dict[str, Any]]:
    rng = np.random.default_rng(0xD00D)
    cases = []
    for a_shape, b_shape, dtype in (
        ((3, 4, 5), (3, 5, 2), np.float64),
        ((4, 5), (3, 5, 2), np.float64),  # shared operand broadcast
        ((1, 7, 7), (1, 7, 7), np.float64),  # single sample
        ((2, 4, 0), (2, 0, 3), np.float64),  # degenerate inner dimension
        ((2, 0, 5), (2, 5, 3), np.float64),  # degenerate row count
        ((3, 4, 5), (3, 5, 2), np.float32),
    ):
        a = rng.standard_normal(a_shape).astype(dtype)
        b = rng.standard_normal(b_shape).astype(dtype)
        out = np.empty((b.shape[0], a.shape[-2], b.shape[-1]), dtype=dtype)
        cases.append({"a": a, "b": b, "out": out})
    return cases


def _check_sample_matmul(case, expected, got) -> None:
    if got.dtype != expected.dtype:
        raise AssertionError(f"dtype {got.dtype} != oracle {expected.dtype}")
    if got.shape != expected.shape:
        raise AssertionError(f"shape {got.shape} != oracle {expected.shape}")
    if expected.tobytes() != got.tobytes():
        raise AssertionError("per-sample products are not byte-identical")


# -- im2col ------------------------------------------------------------
def _conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def _im2col_reference(x, kernel, stride, padding):
    batch, channels, height, width = x.shape
    out_h = _conv_out_size(height, kernel, stride, padding)
    out_w = _conv_out_size(width, kernel, stride, padding)
    if padding:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    cols = np.empty((batch, channels, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for row in range(kernel):
        row_end = row + stride * out_h
        for col in range(kernel):
            col_end = col + stride * out_w
            cols[:, :, row, col, :, :] = x[:, :, row:row_end:stride, col:col_end:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, channels * kernel * kernel
    )
    # The reshape can legally return a *view* with exotic strides (batch=1 is
    # the common case), and BLAS rounds `strided_A @ B` differently from
    # `contiguous_A @ B`.  Normalising the layout here pins one operand class
    # for every caller -- standalone, per-request-block and fused-tile conv
    # paths then all feed the GEMM identically-strided matrices, which is a
    # precondition of the row-stability proof in ``repro.core.stability``.
    return np.ascontiguousarray(cols), out_h, out_w


def _im2col_strided_view(x, kernel, stride, padding):
    # Pure data movement through a zero-copy window view; the final reshape
    # is the only pass over the data.  Gathers exactly the same elements in
    # exactly the same order as the loop, hence bit-identical.
    batch, channels, height, width = x.shape
    out_h = _conv_out_size(height, kernel, stride, padding)
    out_w = _conv_out_size(width, kernel, stride, padding)
    if padding:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch * out_h * out_w, channels * kernel * kernel
    )
    # same layout normalisation as the reference (see there): downstream GEMM
    # bytes must not depend on whether the reshape copied or aliased
    return np.ascontiguousarray(cols), out_h, out_w


def _im2col_cases() -> list[dict[str, Any]]:
    rng = np.random.default_rng(0xCAB)
    cases = []
    for x_shape, kernel, stride, padding, dtype in (
        ((2, 3, 8, 8), 3, 1, 1, np.float64),
        ((1, 1, 5, 5), 1, 1, 0, np.float64),  # pointwise kernel
        ((2, 2, 9, 9), 3, 2, 0, np.float64),  # strided window
        ((1, 2, 3, 3), 3, 1, 0, np.float64),  # window exactly covers the input
        ((0, 2, 6, 6), 3, 1, 1, np.float64),  # degenerate empty batch
        ((2, 3, 8, 8), 3, 1, 1, np.float32),
    ):
        x = rng.standard_normal(x_shape).astype(dtype)
        cases.append({"x": x, "kernel": kernel, "stride": stride, "padding": padding})
    return cases


def _check_im2col(case, expected, got) -> None:
    exp_cols, exp_h, exp_w = expected
    got_cols, got_h, got_w = got
    if (got_h, got_w) != (exp_h, exp_w):
        raise AssertionError(f"output size {(got_h, got_w)} != {(exp_h, exp_w)}")
    if got_cols.dtype != exp_cols.dtype:
        raise AssertionError(f"dtype {got_cols.dtype} != oracle {exp_cols.dtype}")
    if got_cols.shape != exp_cols.shape:
        raise AssertionError(f"shape {got_cols.shape} != oracle {exp_cols.shape}")
    if np.ascontiguousarray(exp_cols).tobytes() != np.ascontiguousarray(
        got_cols
    ).tobytes():
        raise AssertionError("column matrices are not byte-identical")


# -- fused folded kernels (serving-tile fusion behind the stability probe) --
def _validate_splits(total: int, splits) -> tuple[int, ...]:
    splits = tuple(int(s) for s in splits)
    if not splits or any(s < 1 for s in splits):
        raise ValueError(f"splits must be positive row counts, got {splits!r}")
    if sum(splits) != total:
        raise ValueError(
            f"splits {splits!r} sum to {sum(splits)}, expected {total}"
        )
    return splits


def _fused_sample_matmul_reference(a, b, out, splits, trans_b=False):
    # The per-request oracle: each split block is computed from *fresh
    # contiguous* operands into a fresh output, exactly the byte sequence a
    # standalone per-request forward performs -- so "reference" here IS the
    # unfused serving path, by construction rather than by comparison.
    splits = _validate_splits(out.shape[-2], splits)
    shared_a = a.ndim == 2
    lo = 0
    for rows in splits:
        hi = lo + rows
        if trans_b:
            # conv idiom: `cols @ flat_weights[s].T` with a fresh result
            for s in range(b.shape[0]):
                a_blk = np.ascontiguousarray(a[lo:hi] if shared_a else a[s, lo:hi])
                out[s, lo:hi] = a_blk @ b[s].T
        else:
            a_blk = np.ascontiguousarray(a[lo:hi] if shared_a else a[:, lo:hi])
            out_blk = np.empty(
                (b.shape[0], rows, b.shape[-1]), dtype=out.dtype
            )
            registry.call("sample_matmul", a_blk, b, out_blk)
            out[:, lo:hi] = out_blk
        lo = hi
    return out


def _fused_sample_matmul_fused(a, b, out, splits, trans_b=False):
    # One whole-M pass per sample: the folded GEMM the probe proves safe.
    _validate_splits(out.shape[-2], splits)
    if trans_b:
        shared_a = a.ndim == 2
        for s in range(b.shape[0]):
            out[s] = (a if shared_a else a[s]) @ b[s].T
        return out
    return registry.call("sample_matmul", a, b, out)


def _fused_sample_matmul_supports(a, b, out, splits, trans_b=False):
    splits = tuple(int(s) for s in splits)
    if len(splits) < 2:
        # a single block is its own standalone computation; fusing is free
        return True
    from . import stability  # deferred: stability imports this module

    kind = "nt" if trans_b else "nn"
    return stability.probe.splits_ok(
        kind, np.dtype(out.dtype), int(b.shape[-2] if not trans_b else b.shape[-1]),
        int(out.shape[-1]), splits
    )


def _fused_sample_matmul_cases() -> list[dict[str, Any]]:
    rng = np.random.default_rng(0xF0_5ED)
    cases = []
    for a_shape, n, splits, trans_b, dtype in (
        # adversarial splits: all-1-row, primes summing to a prime total,
        # and a cache-line straddle (K=17 float64 rows are 136 bytes)
        ((2, 6, 8), 4, (1, 1, 1, 1, 1, 1), False, np.float64),
        ((2, 37, 17), 5, (1, 2, 3, 5, 7, 19), False, np.float64),
        ((3, 16, 196), 128, (5, 11), False, np.float64),
        ((16, 196), 128, (7, 9), False, np.float64),  # shared-a broadcast
        ((2, 37, 17), 5, (1, 2, 3, 5, 7, 19), True, np.float64),
        ((3, 24, 64), 10, (8, 8, 8), True, np.float64),
        ((2, 13, 9), 12, (2, 4, 7), False, np.float32),
        ((2, 13, 9), 12, (13,), False, np.float64),  # single-block identity
    ):
        k = a_shape[-1]
        n_samples = a_shape[0] if len(a_shape) == 3 else 3
        a = rng.standard_normal(a_shape).astype(dtype)
        b_shape = (n_samples, n, k) if trans_b else (n_samples, k, n)
        b = rng.standard_normal(b_shape).astype(dtype)
        out = np.empty((n_samples, a_shape[-2], n), dtype=dtype)
        cases.append(
            {"a": a, "b": b, "out": out, "splits": splits, "trans_b": trans_b}
        )
    return cases


def _fused_im2col_reference(x, kernel, stride, padding, splits):
    # Per-request oracle: each batch block is unfolded standalone from a
    # fresh contiguous copy, then the column matrices are stacked.
    splits = _validate_splits(x.shape[0], splits)
    blocks = []
    out_h = out_w = 0
    lo = 0
    for items in splits:
        hi = lo + items
        cols, out_h, out_w = registry.call(
            "im2col", np.ascontiguousarray(x[lo:hi]), kernel, stride, padding
        )
        blocks.append(cols)
        lo = hi
    return np.concatenate(blocks, axis=0), out_h, out_w


def _fused_im2col_fused(x, kernel, stride, padding, splits):
    _validate_splits(x.shape[0], splits)
    return registry.call("im2col", x, kernel, stride, padding)


def _fused_im2col_cases() -> list[dict[str, Any]]:
    rng = np.random.default_rng(0xF0_CAB)
    cases = []
    for x_shape, kernel, stride, padding, splits, dtype in (
        ((6, 2, 6, 6), 3, 1, 1, (1, 1, 1, 1, 1, 1), np.float64),
        ((13, 1, 5, 5), 3, 2, 0, (1, 2, 3, 7), np.float64),
        ((7, 3, 8, 8), 3, 1, 1, (2, 5), np.float64),
        ((5, 2, 4, 4), 2, 2, 0, (5,), np.float64),  # single-block identity
        ((7, 3, 8, 8), 3, 1, 1, (3, 4), np.float32),
    ):
        x = rng.standard_normal(x_shape).astype(dtype)
        cases.append(
            {
                "x": x,
                "kernel": kernel,
                "stride": stride,
                "padding": padding,
                "splits": splits,
            }
        )
    return cases


# ----------------------------------------------------------------------
# registry construction
# ----------------------------------------------------------------------
registry = KernelRegistry()


def _register_builtin(reg: KernelRegistry) -> None:
    reg.register_kernel(
        "lfsr_step_block",
        doc="Run `count` packed LFSR recurrence steps per register row; "
        "returns (seq_words, new_state_words).",
        chain=("reference",),
        rows_of=lambda state_words, n_bits, count, offsets, reverse: (
            state_words.shape[0]
        ),
        conformance_cases=_lfsr_step_block_cases,
        check=_check_lfsr_step_block,
    )
    reg.register_backend(
        "lfsr_step_block",
        BackendImpl(
            "reference",
            _lfsr_step_block_reference,
            description="whole-block leapfrog fill (bitops.run_lfsr_block_packed)",
        ),
    )
    reg.register_backend(
        "lfsr_step_block",
        BackendImpl(
            "chunked",
            _lfsr_step_block_chunked,
            description=f"bounded {_CHUNK_BITS}-bit fill chunks "
            "(cache-locality variant)",
        ),
    )

    reg.register_kernel(
        "window_popcounts",
        doc="Pattern popcounts after every `stride`-th of `count` shifts, "
        "from the packed bit sequence.",
        chain=("packed_bitcount", "cumsum16", "reference"),
        rows_of=lambda seq_words, n_bits, count, stride: seq_words.shape[0],
        conformance_cases=_window_popcounts_cases,
        check=_check_window_popcounts,
    )
    reg.register_backend(
        "window_popcounts",
        BackendImpl(
            "reference",
            _window_popcounts_reference,
            description="dense per-shift int64 running sum, sliced to the "
            "emitted positions",
        ),
    )
    reg.register_backend(
        "window_popcounts",
        BackendImpl(
            "cumsum16",
            _window_popcounts_cumsum,
            description="unpacked narrow cumsum (int16 at stride 1, int32 "
            "block sums otherwise)",
        ),
    )
    reg.register_backend(
        "window_popcounts",
        BackendImpl(
            "packed_bitcount",
            _window_popcounts_packed,
            description="np.bitwise_count on the packed words (word-aligned "
            "strides only)",
            supports=_window_popcounts_packed_supports,
            available=lambda: hasattr(np, "bitwise_count"),
        ),
    )

    reg.register_kernel(
        "clt_standardise",
        doc="Standardise pattern popcounts to CLT Gaussians: "
        "(popcounts - mean) / std as float64.",
        chain=("inplace", "reference"),
        rows_of=lambda popcounts, mean, std: int(np.asarray(popcounts).size),
        conformance_cases=_clt_standardise_cases,
        check=_check_clt_standardise,
    )
    reg.register_backend(
        "clt_standardise",
        BackendImpl(
            "reference",
            _clt_standardise_reference,
            description="subtract-then-divide over a fresh array",
        ),
    )
    reg.register_backend(
        "clt_standardise",
        BackendImpl(
            "inplace",
            _clt_standardise_inplace,
            description="np.subtract into a new float64 buffer, divided in "
            "place (no astype pass)",
        ),
    )
    reg.register_backend(
        "clt_standardise",
        BackendImpl(
            "numba",
            _clt_standardise_numba,
            description="numba-jitted scalar loop (self-skips without the "
            "toolchain)",
            available=_numba_available,
        ),
    )

    reg.register_kernel(
        "sample_matmul",
        doc="Per-sample 2-D matrix products over a leading Monte-Carlo "
        "sample axis, into a preallocated output.",
        chain=("reference",),
        rows_of=lambda a, b, out: b.shape[0],
        conformance_cases=_sample_matmul_cases,
        check=_check_sample_matmul,
    )
    reg.register_backend(
        "sample_matmul",
        BackendImpl(
            "reference",
            _sample_matmul_reference,
            description="np.matmul loop, one 2-D product per sample",
        ),
    )
    reg.register_backend(
        "sample_matmul",
        BackendImpl(
            "dot_loop",
            _sample_matmul_dot,
            description="np.dot loop (same cblas gemm, float64 contiguous "
            "outputs only)",
            supports=_sample_matmul_dot_supports,
        ),
    )

    reg.register_kernel(
        "im2col",
        doc="Unfold (N, C, H, W) into the (N*out_h*out_w, C*k*k) column "
        "matrix; returns (cols, out_h, out_w).",
        chain=("reference",),
        rows_of=lambda x, kernel, stride, padding: x.shape[0],
        conformance_cases=_im2col_cases,
        check=_check_im2col,
    )
    reg.register_backend(
        "im2col",
        BackendImpl(
            "reference",
            _im2col_reference,
            description="per-kernel-position strided slice gather",
        ),
    )
    reg.register_backend(
        "im2col",
        BackendImpl(
            "strided_view",
            _im2col_strided_view,
            description="np.lib.stride_tricks.sliding_window_view gather",
        ),
    )

    reg.register_kernel(
        "fused_sample_matmul",
        doc="Per-sample matmul over a tile of concatenated requests "
        "(row `splits`); the reference recomputes each request block "
        "standalone, so fusing is correct only where the conformance gate "
        "-- the runtime row-stability probe -- proves the folded GEMM "
        "byte-identical.",
        chain=("fused", "reference"),
        rows_of=lambda a, b, out, splits, trans_b=False: out.shape[-2],
        conformance_cases=_fused_sample_matmul_cases,
        check=_check_sample_matmul,
    )
    reg.register_backend(
        "fused_sample_matmul",
        BackendImpl(
            "reference",
            _fused_sample_matmul_reference,
            description="per-request blocks from fresh contiguous operands "
            "(the unfused serving path, by construction)",
        ),
    )
    reg.register_backend(
        "fused_sample_matmul",
        BackendImpl(
            "fused",
            _fused_sample_matmul_fused,
            description="one whole-tile GEMM per sample; supports() consults "
            "the RowStabilityProbe per (kind, dtype, K, N, splits) class",
            supports=_fused_sample_matmul_supports,
        ),
    )

    reg.register_kernel(
        "fused_im2col",
        doc="im2col over a tile of concatenated requests (batch `splits`); "
        "the reference unfolds each request block standalone and stacks "
        "the column matrices.",
        chain=("fused", "reference"),
        rows_of=lambda x, kernel, stride, padding, splits: x.shape[0],
        conformance_cases=_fused_im2col_cases,
        check=_check_im2col,
    )
    reg.register_backend(
        "fused_im2col",
        BackendImpl(
            "reference",
            _fused_im2col_reference,
            description="per-request unfold from fresh contiguous blocks, "
            "rows stacked",
        ),
    )
    reg.register_backend(
        "fused_im2col",
        BackendImpl(
            "fused",
            _fused_im2col_fused,
            description="whole-tile unfold (pure data movement; the gate "
            "proves the stacking property)",
        ),
    )


_register_builtin(registry)
registry.load_env()

# Fork safety (the serve worker pool and the distributed coordinator both
# prefer fork-start workers): the registry lock is taken on every kernel call
# from arbitrary threads, so a fork racing a dispatch would hand the child a
# lock that is held forever.  The stdlib-logging protocol makes the fork
# atomic with respect to the lock: hold it across the fork in the parent and
# hand the child a fresh one.
if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX containers
    os.register_at_fork(
        before=lambda: registry._lock.acquire(),
        after_in_parent=lambda: registry._lock.release(),
        after_in_child=lambda: setattr(registry, "_lock", threading.RLock()),
    )


# ----------------------------------------------------------------------
# module-level conveniences over the default registry
# ----------------------------------------------------------------------
def dispatch(kernel: str) -> Callable[..., Any]:
    """A callable for ``kernel`` that re-resolves its backend on every call."""
    return registry.dispatch(kernel)


def set_backend(kernel: str, backend: str | None) -> None:
    """Force ``kernel`` onto ``backend`` (``None`` restores the default chain)."""
    registry.set_backend(kernel, backend)


def using(kernel: str, backend: str | None):
    """Context manager temporarily forcing a backend."""
    return registry.using(kernel, backend)


def current_selection() -> dict[str, str]:
    """The explicitly forced ``{kernel: backend}`` choices."""
    return registry.current_selection()


def apply_selection(selection: Mapping[str, str]) -> None:
    """Replace the forced choices wholesale (used by replica rebuilds)."""
    registry.apply_selection(selection)


def counters_snapshot() -> dict[str, dict[str, dict[str, int]]]:
    """Per-(kernel, backend) call/row counters for backends that ran."""
    return registry.counters_snapshot()


def reset_counters() -> None:
    """Zero the per-backend call/row counters."""
    registry.reset_counters()


def stats_snapshot() -> dict[str, dict[str, Any]]:
    """Selection plus counters per kernel (feeds ``ServerStats``)."""
    return registry.stats_snapshot()


def list_backends() -> list[dict[str, Any]]:
    """Registry contents: kernels, chains, backend availability/conformance."""
    return registry.list_backends()


def kernel_names() -> tuple[str, ...]:
    """The registered dispatch-point names."""
    return registry.kernel_names()


def verify_backend(kernel: str, backend: str) -> bool:
    """Run the conformance gate now; raise on mismatch or unavailability."""
    return registry.verify_backend(kernel, backend)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: inspect the registry and run conformance gates on demand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.backend",
        description="Inspect the kernel-backend registry.",
    )
    parser.add_argument(
        "--list", action="store_true", help="list kernels and backends (default)"
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="run every available backend through its conformance gate",
    )
    args = parser.parse_args(argv)

    failures = 0
    if args.verify:
        for entry in list_backends():
            kernel = entry["kernel"]
            for backend in entry["backends"]:
                name = backend["name"]
                if name == _Kernel.REFERENCE:
                    print(f"{kernel:18s} {name:16s} ORACLE")
                    continue
                if not backend["available"]:
                    print(f"{kernel:18s} {name:16s} SKIP (unavailable)")
                    continue
                try:
                    verify_backend(kernel, name)
                except BackendConformanceError as exc:
                    failures += 1
                    print(f"{kernel:18s} {name:16s} FAIL  {exc}")
                else:
                    print(f"{kernel:18s} {name:16s} PASS (bit-identical)")
        if not failures:
            print("all available backends are bit-identical to the oracle")
    else:
        for entry in list_backends():
            print(f"{entry['kernel']}  (selection: {entry['selection']}, "
                  f"chain: {' > '.join(entry['chain'])})")
            for backend in entry["backends"]:
                status = "available" if backend["available"] else "unavailable"
                print(
                    f"  {backend['name']:16s} {status:12s} "
                    f"conformance={backend['conformance']:10s} "
                    f"{backend['description']}"
                )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
