"""A bank of Fibonacci LFSRs stepped in lockstep on packed ``uint64`` words.

The Shift-BNN accelerator instantiates one GRNG per Sample Processing Unit;
the software trainer mirrors that with one LFSR per Monte-Carlo sample.  All
of those registers share taps and width and are driven through identical
generate/retrieve schedules, so the software can step the whole bank with one
set of word-wide XOR passes instead of once per register:

* states live in a ``(N, ceil(n_bits / 64))`` ``uint64`` matrix (bit ``j`` of
  register ``i`` is bit ``j % 64`` of ``words[i, j // 64]``);
* block generation and reversed retrieval run the shared packed kernel of
  :mod:`repro.core.bitops`, vectorised across registers *and* across time
  (squared-polynomial leapfrogging);
* results are bit-identical to :class:`~repro.core.lfsr.FibonacciLFSR`, which
  stays the step-wise hardware-faithful reference the property tests compare
  against.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .backend import dispatch
from .bitops import (
    pack_int_rows,
    unpack_bits,
    unpack_int_rows,
)
from .lfsr import LFSRStateError, mirrored_taps, normalise_taps, seed_from_index

__all__ = ["LfsrArray"]

_lfsr_step_block = dispatch("lfsr_step_block")
_window_popcounts = dispatch("window_popcounts")


class LfsrArray:
    """``N`` independent, equally-tapped Fibonacci LFSRs advanced in lockstep.

    Parameters
    ----------
    n_bits:
        Register length shared by every row (256 in the paper).
    states:
        One non-zero initial register value per row.
    taps:
        1-based tap positions shared by every row; defaults to the
        maximal-length polynomial from
        :data:`~repro.core.lfsr.MAXIMAL_TAPS`.
    """

    def __init__(
        self,
        n_bits: int,
        states: Sequence[int],
        taps: tuple[int, ...] | None = None,
    ) -> None:
        taps = normalise_taps(n_bits, taps)
        states = [int(s) for s in states]
        if not states:
            raise LFSRStateError("an LfsrArray needs at least one register")
        limit = 1 << n_bits
        for index, state in enumerate(states):
            if state <= 0 or state >= limit:
                raise LFSRStateError(
                    f"register {index} state must be a non-zero {n_bits}-bit "
                    f"integer, got {state!r}"
                )
        self._n = n_bits
        self._taps = taps
        self._reverse_taps = mirrored_taps(n_bits, taps)
        self._words = pack_int_rows(states, n_bits)
        self._shift_counts = np.zeros(len(states), dtype=np.int64)

    @classmethod
    def from_seed_indices(
        cls,
        n_bits: int,
        indices: Sequence[int],
        taps: tuple[int, ...] | None = None,
    ) -> "LfsrArray":
        """Build a bank seeded like ``FibonacciLFSR.from_seed_index`` per row."""
        states = [seed_from_index(n_bits, int(index)) for index in indices]
        return cls(n_bits, states, taps=taps)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of registers in the bank."""
        return self._words.shape[0]

    @property
    def n_bits(self) -> int:
        """Register length in bits (shared by every row)."""
        return self._n

    @property
    def taps(self) -> tuple[int, ...]:
        """1-based tap positions (tail tap included, shared by every row)."""
        return self._taps

    @property
    def words(self) -> np.ndarray:
        """The packed ``(N, ceil(n_bits/64))`` uint64 state matrix (a copy)."""
        return self._words.copy()

    @property
    def shift_counts(self) -> np.ndarray:
        """Net forward shifts applied to each register (a copy)."""
        return self._shift_counts.copy()

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return (
            f"LfsrArray(n_rows={self.n_rows}, n_bits={self._n}, "
            f"taps={self._taps})"
        )

    # ------------------------------------------------------------------
    # per-row state access
    # ------------------------------------------------------------------
    def states(self) -> list[int]:
        """Current register values as Python integers, one per row."""
        return unpack_int_rows(self._words)

    def get_state(self, row: int) -> int:
        """Register value of ``row`` as a Python integer."""
        return unpack_int_rows(self._words[row : row + 1])[0]

    def set_state(self, row: int, value: int) -> None:
        """Overwrite the register of ``row`` (must be a non-zero n-bit value)."""
        if not isinstance(value, int):
            raise LFSRStateError("LFSR state must be an integer")
        if value <= 0 or value >= (1 << self._n):
            raise LFSRStateError(
                f"LFSR state must be a non-zero {self._n}-bit integer, "
                f"got {value!r}"
            )
        self._words[row] = pack_int_rows([value], self._n)[0]

    def adjust_shift_count(self, row: int, delta: int) -> None:
        """Book-keeping hook for callers that rewind a row externally."""
        self._shift_counts[row] += delta

    def state_bits(self, rows: Sequence[int] | None = None) -> np.ndarray:
        """Registers ``R1..Rn`` as a ``(R, n_bits)`` uint8 matrix."""
        words = self._words if rows is None else self._words[np.asarray(rows)]
        return unpack_bits(words, self._n)

    def popcounts(self, rows: Sequence[int] | None = None) -> np.ndarray:
        """Set-bit count of each selected register (the GRNG bit sums)."""
        return self.state_bits(rows).sum(axis=1, dtype=np.int64)

    # ------------------------------------------------------------------
    # vectorised block generation
    # ------------------------------------------------------------------
    def _run_packed(
        self, count: int, rows: Sequence[int] | None, reverse: bool
    ) -> np.ndarray:
        """Run ``count`` packed steps for the selected rows.

        Returns the produced bit sequences as packed ``uint64`` words (bits
        beyond ``n_bits + count`` are zero) and commits the updated register
        states and shift counters.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        selection = slice(None) if rows is None else np.asarray(rows)
        if count == 0:
            n_selected = self._words[selection].shape[0]
            return np.zeros((n_selected, self._words.shape[1]), dtype=np.uint64)
        offsets = self._reverse_taps if reverse else self._taps
        seq_words, new_words = _lfsr_step_block(
            self._words[selection], self._n, count, offsets, reverse
        )
        self._words[selection] = new_words
        self._shift_counts[selection] += -count if reverse else count
        return seq_words

    def _run(
        self, count: int, rows: Sequence[int] | None, reverse: bool
    ) -> np.ndarray:
        """Like :meth:`_run_packed` but unpacked to a ``(R, n_bits + count)``
        uint8 bit matrix (history followed by the new bits)."""
        seq_words = self._run_packed(count, rows, reverse)
        return unpack_bits(seq_words, self._n + count)

    def generate_bits(
        self, count: int, rows: Sequence[int] | None = None
    ) -> np.ndarray:
        """Next ``count`` head bits of each selected row, in generation order."""
        return self._run(count, rows, reverse=False)[:, self._n :].copy()

    def generate_bits_reverse(
        self, count: int, rows: Sequence[int] | None = None
    ) -> np.ndarray:
        """Previous ``count`` dropped tail bits per row, newest first."""
        return self._run(count, rows, reverse=True)[:, self._n :].copy()

    def window_popcounts(
        self, count: int, rows: Sequence[int] | None = None, stride: int = 1
    ) -> np.ndarray:
        """Pattern popcounts after every ``stride``-th of ``count`` shifts, per row.

        With the default ``stride=1`` this returns the popcount after each of
        the next ``count`` shifts as an ``(R, count)`` integer matrix.  With
        ``stride > 1`` (``count`` must then be a multiple of ``stride``) only
        the popcounts after shifts ``stride, 2*stride, ...`` are computed --
        the positions a strided GRNG emits -- as an ``(R, count // stride)``
        matrix, skipping the per-shift running sum entirely.  The values are
        exact integer popcounts either way, so the strided path is
        bit-identical to slicing the dense one.  Registers end exactly where
        :meth:`generate_bits` would leave them.
        """
        if stride < 1:
            raise ValueError("stride must be at least 1 shift per popcount")
        if count % stride:
            raise ValueError(
                f"count must be a multiple of stride, got {count} and {stride}"
            )
        if count == 0:
            n_selected = (
                self.n_rows if rows is None else np.asarray(rows).shape[0]
            )
            return np.zeros((n_selected, 0), dtype=np.int32)
        # The popcount reduction is a registered dispatch point: the default
        # chain prefers the packed np.bitwise_count path (word-aligned
        # strides), falls back to the narrow-cumsum unpacked path and finally
        # to the dense int64 oracle.  Every eligible backend is bit-identical
        # (exact integer popcounts), so selection changes speed, never values.
        seq_words = self._run_packed(count, rows, reverse=False)
        return _window_popcounts(seq_words, self._n, count, stride)
