"""Core of the Shift-BNN reproduction: reversible LFSR-based Gaussian sampling.

The classes exported here implement the paper's primary contribution -- the
ability to regenerate every Gaussian random variable used for Bayesian weight
sampling by shifting the generating LFSR backwards, so that nothing has to be
stored between the forward and backward training stages.
"""

from .backend import (
    BackendConformanceError,
    KernelBackendError,
    KernelRegistry,
    UnknownBackendError,
)
from .checkpoint import LfsrSnapshot, StreamBank, StreamPolicy
from .grng import GRNGMode, LfsrGaussianRNG, ReplayError
from .grng_bank import BankedGaussianRNG, GrngBank, LfsrRowView
from .lfsr import (
    MAXIMAL_TAPS,
    FibonacciLFSR,
    LFSRStateError,
    mirrored_taps,
    normalise_taps,
    parity,
    seed_from_index,
)
from .lfsr_array import LfsrArray
from .sampler import (
    BatchedWeightSampler,
    SampledWeights,
    SampledWeightsBatch,
    WeightSampler,
)
from .streams import (
    EpsilonStream,
    ReversibleGaussianStream,
    StoredGaussianStream,
    StreamOrderError,
    StreamUsage,
)

__all__ = [
    "BackendConformanceError",
    "KernelBackendError",
    "KernelRegistry",
    "UnknownBackendError",
    "MAXIMAL_TAPS",
    "FibonacciLFSR",
    "LFSRStateError",
    "LfsrArray",
    "mirrored_taps",
    "normalise_taps",
    "parity",
    "seed_from_index",
    "GRNGMode",
    "LfsrGaussianRNG",
    "ReplayError",
    "BankedGaussianRNG",
    "GrngBank",
    "LfsrRowView",
    "EpsilonStream",
    "ReversibleGaussianStream",
    "StoredGaussianStream",
    "StreamOrderError",
    "StreamUsage",
    "SampledWeights",
    "SampledWeightsBatch",
    "WeightSampler",
    "BatchedWeightSampler",
    "LfsrSnapshot",
    "StreamBank",
    "StreamPolicy",
]
