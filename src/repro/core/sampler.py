"""Weight sampling on top of an epsilon stream.

``w = mu + eps * sigma`` (Section 2.1 of the paper) is the only place the
Gaussian random variables enter the computation.  :class:`WeightSampler` wraps
an :class:`~repro.core.streams.EpsilonStream` and exposes the two operations
the training stages need:

* ``sample(mu, sigma)`` -- forward stage: draw a fresh epsilon block shaped
  like the parameters and return the sampled weights;
* ``resample(mu, sigma)`` -- backward / gradient stage: retrieve the *same*
  epsilon block (from storage or by LFSR reversal, depending on the stream
  policy) and reconstruct the identical weights, also returning the epsilons
  themselves because the gradient of ``sigma`` needs them.

When samplers are built by a :class:`~repro.core.checkpoint.StreamBank`, the
per-sample streams share a lockstep
:class:`~repro.core.grng_bank.GrngBank`: the first sampler to draw a layer's
block triggers one batched kernel call that produces the same-shaped block
for every Monte-Carlo sample, so the per-sample call pattern of the trainers
costs one vectorised generation (and one vectorised retrieval) per layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .streams import EpsilonStream, StreamUsage

__all__ = ["SampledWeights", "WeightSampler"]


@dataclass(frozen=True)
class SampledWeights:
    """A sampled weight tensor together with the epsilons that produced it."""

    weights: np.ndarray
    epsilon: np.ndarray

    def __post_init__(self) -> None:
        if self.weights.shape != self.epsilon.shape:
            raise ValueError(
                "weights and epsilon must have the same shape, got "
                f"{self.weights.shape} vs {self.epsilon.shape}"
            )


class WeightSampler:
    """Sample and re-sample Gaussian weights through an epsilon stream."""

    def __init__(self, stream: EpsilonStream) -> None:
        self._stream = stream

    @property
    def stream(self) -> EpsilonStream:
        """The epsilon stream this sampler draws from."""
        return self._stream

    @property
    def usage(self) -> StreamUsage:
        """Traffic accounting of the underlying stream."""
        return self._stream.usage

    @staticmethod
    def _validate(mu: np.ndarray, sigma: np.ndarray) -> None:
        if mu.shape != sigma.shape:
            raise ValueError(
                f"mu and sigma must have the same shape, got {mu.shape} vs {sigma.shape}"
            )
        if np.any(sigma < 0):
            raise ValueError("sigma must be non-negative")

    def sample(self, mu: np.ndarray, sigma: np.ndarray) -> SampledWeights:
        """Forward-stage sampling: draw fresh epsilons and build the weights."""
        self._validate(mu, sigma)
        epsilon = self._stream.forward_block(mu.shape)
        weights = mu + epsilon * sigma
        return SampledWeights(weights=weights, epsilon=epsilon)

    def resample(self, mu: np.ndarray, sigma: np.ndarray) -> SampledWeights:
        """Backward-stage reconstruction with the original epsilons.

        The returned weights are bit-identical to the forward-stage sample
        (given unchanged ``mu`` and ``sigma``), which is the property that lets
        Shift-BNN discard the epsilons after the forward pass.
        """
        self._validate(mu, sigma)
        epsilon = self._stream.retrieve_block(mu.shape)
        weights = mu + epsilon * sigma
        return SampledWeights(weights=weights, epsilon=epsilon)

    def finish_iteration(self) -> None:
        """Assert all sampled blocks were consumed and reset per-iteration state."""
        self._stream.reset_epoch()

    def __repr__(self) -> str:
        return f"WeightSampler(stream={type(self._stream).__name__})"
