"""Weight sampling on top of an epsilon stream.

``w = mu + eps * sigma`` (Section 2.1 of the paper) is the only place the
Gaussian random variables enter the computation.  :class:`WeightSampler` wraps
an :class:`~repro.core.streams.EpsilonStream` and exposes the two operations
the training stages need:

* ``sample(mu, sigma)`` -- forward stage: draw a fresh epsilon block shaped
  like the parameters and return the sampled weights;
* ``resample(mu, sigma)`` -- backward / gradient stage: retrieve the *same*
  epsilon block (from storage or by LFSR reversal, depending on the stream
  policy) and reconstruct the identical weights, also returning the epsilons
  themselves because the gradient of ``sigma`` needs them.

When samplers are built by a :class:`~repro.core.checkpoint.StreamBank`, the
per-sample streams share a lockstep
:class:`~repro.core.grng_bank.GrngBank`: the first sampler to draw a layer's
block triggers one batched kernel call that produces the same-shaped block
for every Monte-Carlo sample, so the per-sample call pattern of the trainers
costs one vectorised generation (and one vectorised retrieval) per layer.

:class:`BatchedWeightSampler` goes one step further for callers that execute
the whole Monte-Carlo batch at once (the batched FW/BW/GC pipeline of
``BayesianNetwork.forward_samples``): its :meth:`~BatchedWeightSampler.sample`
and :meth:`~BatchedWeightSampler.resample` return ``(S, *weight_shape)``
epsilon and weight tensors pulled straight from the bank's batched forward /
reversed / replay kernels -- no per-row views, no per-sample Python -- while
still attributing traffic (:class:`~repro.core.streams.StreamUsage`) to each
Monte-Carlo sample exactly like the per-sample streams would.  All three
stream policies are supported and produce bit-identical values and byte
accounting; :meth:`~BatchedWeightSampler.prefetch_forward` additionally fuses
a whole forward pass's epsilon generation into a single kernel call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .grng import ReplayError
from .streams import EpsilonStream, StreamOrderError, StreamUsage

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .grng_bank import GrngBank

__all__ = [
    "SampledWeights",
    "SampledWeightsBatch",
    "WeightSampler",
    "BatchedWeightSampler",
]


@dataclass(frozen=True)
class SampledWeights:
    """A sampled weight tensor together with the epsilons that produced it."""

    weights: np.ndarray
    epsilon: np.ndarray

    def __post_init__(self) -> None:
        if self.weights.shape != self.epsilon.shape:
            raise ValueError(
                "weights and epsilon must have the same shape, got "
                f"{self.weights.shape} vs {self.epsilon.shape}"
            )


class WeightSampler:
    """Sample and re-sample Gaussian weights through an epsilon stream."""

    def __init__(self, stream: EpsilonStream) -> None:
        self._stream = stream

    @property
    def stream(self) -> EpsilonStream:
        """The epsilon stream this sampler draws from."""
        return self._stream

    @property
    def usage(self) -> StreamUsage:
        """Traffic accounting of the underlying stream."""
        return self._stream.usage

    @staticmethod
    def _validate(mu: np.ndarray, sigma: np.ndarray) -> None:
        if mu.shape != sigma.shape:
            raise ValueError(
                f"mu and sigma must have the same shape, got {mu.shape} vs {sigma.shape}"
            )
        if np.any(sigma < 0):
            raise ValueError("sigma must be non-negative")

    def sample(self, mu: np.ndarray, sigma: np.ndarray) -> SampledWeights:
        """Forward-stage sampling: draw fresh epsilons and build the weights."""
        self._validate(mu, sigma)
        epsilon = self._stream.forward_block(mu.shape)
        weights = mu + epsilon * sigma
        return SampledWeights(weights=weights, epsilon=epsilon)

    def resample(self, mu: np.ndarray, sigma: np.ndarray) -> SampledWeights:
        """Backward-stage reconstruction with the original epsilons.

        The returned weights are bit-identical to the forward-stage sample
        (given unchanged ``mu`` and ``sigma``), which is the property that lets
        Shift-BNN discard the epsilons after the forward pass.
        """
        self._validate(mu, sigma)
        epsilon = self._stream.retrieve_block(mu.shape)
        weights = mu + epsilon * sigma
        return SampledWeights(weights=weights, epsilon=epsilon)

    def finish_iteration(self) -> None:
        """Assert all sampled blocks were consumed and reset per-iteration state."""
        self._stream.reset_epoch()

    def __repr__(self) -> str:
        return f"WeightSampler(stream={type(self._stream).__name__})"


@dataclass(frozen=True)
class SampledWeightsBatch:
    """Sampled weights and epsilons for all ``S`` Monte-Carlo samples.

    Both tensors have shape ``(S, *weight_shape)``; slice ``[i]`` is exactly
    what :class:`SampledWeights` of sample ``i``'s scalar sampler would hold.
    """

    weights: np.ndarray
    epsilon: np.ndarray

    def __post_init__(self) -> None:
        if self.weights.shape != self.epsilon.shape:
            raise ValueError(
                "weights and epsilon must have the same shape, got "
                f"{self.weights.shape} vs {self.epsilon.shape}"
            )

    @property
    def n_samples(self) -> int:
        """Number of Monte-Carlo samples along the leading axis."""
        return self.weights.shape[0]


@dataclass
class _BatchBlockRecord:
    """One outstanding forward block of the batched sampler (all samples)."""

    shape: tuple[int, ...]
    count: int
    #: Stored epsilon values, kept only under the ``"stored"`` policy (the
    #: software analogue of spilling the whole block set to DRAM).
    stored_values: np.ndarray | None = field(default=None, repr=False)


class BatchedWeightSampler:
    """Weight sampler for the whole Monte-Carlo batch at once.

    The per-sample :class:`WeightSampler` objects of a
    :class:`~repro.core.checkpoint.StreamBank` serve one sample each; this
    class serves all ``S`` samples per call by driving the bank's batched
    kernels directly:

    * ``sample(mu, sigma)`` generates the layer's epsilon block for every
      sample with one forward kernel call (or serves it from a
      :meth:`prefetch_forward` superblock) and returns ``(S, *shape)``
      weights ``mu + eps * sigma``;
    * ``resample(mu, sigma)`` reconstructs the identical blocks for the
      backward / gradient stages.  The first ``resample`` of an iteration
      retrieves the *entire* outstanding span in one batched kernel call:
      a whole-span checkpoint replay (``"reversible"``), a whole-span
      reversed-shift regeneration (``"reversible-hw"``), or the stored
      values (``"stored"``).

    The call contract mirrors the trainers' pipeline: a full forward pass
    (``sample`` per Bayesian layer, optionally preceded by
    ``prefetch_forward``) followed by a full backward pass (``resample`` in
    reverse layer order), then :meth:`finish_iteration`.  Values, register
    trajectories and per-sample :class:`~repro.core.streams.StreamUsage`
    accounting are bit-identical to running the per-sample samplers
    sequentially -- the batched engine changes speed, never results.
    """

    def __init__(
        self,
        bank: "GrngBank",
        usages: Sequence[StreamUsage],
        policy: str,
    ) -> None:
        if policy not in ("stored", "reversible", "reversible-hw"):
            raise ValueError(f"unknown stream policy {policy!r}")
        if len(usages) != bank.n_rows:
            raise ValueError(
                f"expected {bank.n_rows} usage records, got {len(usages)}"
            )
        self._bank = bank
        self._usages = list(usages)
        self._policy = policy
        self._records: list[_BatchBlockRecord] = []
        self._prefetched: list[tuple[int, np.ndarray]] = []
        self._retrieval_values: list[np.ndarray] | None = None
        self._span_start_states: list[int] | None = None
        self._hw_resume_states: list[int] | None = None

    # ------------------------------------------------------------------
    @property
    def bank(self) -> "GrngBank":
        """The batched generator bank this sampler draws from."""
        return self._bank

    @property
    def n_samples(self) -> int:
        """Number of Monte-Carlo samples served per call."""
        return self._bank.n_rows

    @property
    def policy(self) -> str:
        """The epsilon-management policy this sampler emulates."""
        return self._policy

    @property
    def usages(self) -> Sequence[StreamUsage]:
        """Per-sample traffic accounting (shared with the bank's streams)."""
        return tuple(self._usages)

    @property
    def pending_blocks(self) -> int:
        """Number of generated blocks not yet consumed by the backward pass."""
        return len(self._records)

    _validate = staticmethod(WeightSampler._validate)

    # ------------------------------------------------------------------
    # forward stage
    # ------------------------------------------------------------------
    def prefetch_forward(self, counts: Sequence[int]) -> None:
        """Generate a whole forward pass's epsilon blocks with one kernel call.

        ``counts`` lists the per-layer block sizes in forward order (the
        static layer schedule of the network).  Subsequent :meth:`sample`
        calls are served from the superblock; slicing a single contiguous
        generation is bit-identical to generating block by block because the
        LFSR stream -- and therefore the window-popcount sequence -- is
        continuous across block boundaries.
        """
        if self._retrieval_values is not None:
            raise StreamOrderError(
                "cannot prefetch forward blocks while a backward retrieval "
                "is in progress"
            )
        if self._prefetched:
            raise StreamOrderError(
                "previous prefetched blocks were never consumed"
            )
        counts = [int(count) for count in counts]
        if any(count <= 0 for count in counts):
            raise ValueError(f"block counts must be positive, got {counts}")
        if not counts:
            return
        if self._span_start_states is None:
            self._span_start_states = self._bank.states()
        superblock = self._bank.epsilon_blocks(sum(counts))
        offset = 0
        for count in counts:
            self._prefetched.append((count, superblock[:, offset : offset + count]))
            offset += count

    def sample(self, mu: np.ndarray, sigma: np.ndarray) -> SampledWeightsBatch:
        """Forward-stage sampling for every Monte-Carlo sample at once."""
        self._validate(mu, sigma)
        if self._retrieval_values is not None:
            raise StreamOrderError(
                "cannot sample new blocks while a backward retrieval is in "
                "progress"
            )
        count = int(mu.size)
        if self._prefetched:
            prefetched_count, values = self._prefetched[0]
            if prefetched_count != count:
                # peek-don't-pop: an out-of-schedule request must leave the
                # prefetch queue aligned for a caller that recovers
                raise StreamOrderError(
                    f"prefetched block of {prefetched_count} values does not "
                    f"match the requested {count}; the sample() sequence must "
                    "follow the prefetch_forward() schedule"
                )
            self._prefetched.pop(0)
        else:
            if self._span_start_states is None:
                self._span_start_states = self._bank.states()
            values = self._bank.epsilon_blocks(count)
        epsilon = values.reshape((self.n_samples,) + mu.shape)
        self._records.append(
            _BatchBlockRecord(
                shape=tuple(mu.shape),
                count=count,
                stored_values=epsilon if self._policy == "stored" else None,
            )
        )
        for usage in self._usages:
            if self._policy == "stored":
                usage.record_generate(count)
                usage.record_store(count)
            elif self._policy == "reversible":
                usage.record_checkpoint(self._bank.n_bits)
                usage.record_generate(count)
            else:
                usage.record_generate(count)
        return SampledWeightsBatch(
            weights=self._build_weights(mu, sigma, epsilon), epsilon=epsilon
        )

    @staticmethod
    def _build_weights(
        mu: np.ndarray, sigma: np.ndarray, epsilon: np.ndarray
    ) -> np.ndarray:
        """``mu + epsilon * sigma`` with one less temporary.

        IEEE-754 addition is commutative, so adding ``mu`` into the product
        in place is bit-identical to the scalar sampler's expression.
        """
        weights = np.multiply(epsilon, sigma, out=np.empty_like(epsilon))
        weights += mu
        return weights

    # ------------------------------------------------------------------
    # backward stage
    # ------------------------------------------------------------------
    def resample(self, mu: np.ndarray, sigma: np.ndarray) -> SampledWeightsBatch:
        """Backward-stage reconstruction with the original epsilons.

        The blocks must be retrieved in reverse forward order (the LIFO walk
        of backpropagation).  The first call retrieves the whole outstanding
        span with a single batched kernel call.
        """
        self._validate(mu, sigma)
        if not self._records:
            raise StreamOrderError("no outstanding epsilon block to retrieve")
        # validate against the outstanding record BEFORE any retrieval side
        # effect (span replay / register rewind / pop), so an out-of-order
        # backward walk fails without consuming or moving anything
        if self._records[-1].shape != tuple(mu.shape):
            raise StreamOrderError(
                f"retrieval shape {tuple(mu.shape)} does not match outstanding "
                f"block shape {self._records[-1].shape}; backward order must "
                "mirror forward order"
            )
        if self._retrieval_values is None:
            self._begin_retrieval()
        assert self._retrieval_values is not None
        record = self._records.pop()
        values = self._retrieval_values.pop()
        epsilon = np.ascontiguousarray(values).reshape(
            (self.n_samples,) + mu.shape
        )
        for usage in self._usages:
            if self._policy == "stored":
                usage.record_retrieve(record.count)
                usage.record_release(record.count)
            elif self._policy == "reversible":
                usage.release_checkpoint(self._bank.n_bits)
                usage.record_retrieve(record.count)
            else:
                usage.record_retrieve(record.count)
        if not self._records:
            self._retrieval_values = None
            self._span_start_states = None
        return SampledWeightsBatch(
            weights=self._build_weights(mu, sigma, epsilon), epsilon=epsilon
        )

    def _begin_retrieval(self) -> None:
        """Regenerate (or look up) the whole outstanding span, block by block."""
        if self._prefetched:
            raise StreamOrderError(
                "cannot start the backward pass with unconsumed prefetched "
                "forward blocks"
            )
        total = sum(record.count for record in self._records)
        if self._policy == "stored":
            self._retrieval_values = [
                record.stored_values for record in self._records  # type: ignore[misc]
            ]
            return
        if self._policy == "reversible":
            assert self._span_start_states is not None
            try:
                span = self._bank.replay_blocks(
                    self._span_start_states,
                    total,
                    expected_end_states=self._bank.states(),
                )
            except ReplayError as exc:
                raise StreamOrderError(
                    "whole-span checkpoint replay did not land on the "
                    "pre-retrieval patterns; the registers were modified "
                    "outside the sampler"
                ) from exc
            values: list[np.ndarray] = []
            offset = 0
            for record in self._records:
                values.append(span[:, offset : offset + record.count])
                offset += record.count
            self._retrieval_values = values
            return
        # "reversible-hw": literal reversed shifting for the whole span; the
        # registers physically rewind to the span start, and the farthest
        # patterns are remembered so finish_iteration() can resume from them
        # (the per-stream policy does the same in reset_epoch).
        self._hw_resume_states = self._bank.states()
        reversed_span = self._bank.epsilon_blocks_reverse(total)
        values = [np.empty(0)] * len(self._records)
        offset = 0
        for index in range(len(self._records) - 1, -1, -1):
            count = self._records[index].count
            # Reverse shifting yields newest-value-first; restore generation
            # order so callers see exactly the forward block.
            values[index] = reversed_span[:, offset : offset + count][:, ::-1]
            offset += count
        self._retrieval_values = values

    # ------------------------------------------------------------------
    def finish_iteration(self) -> None:
        """Assert all blocks were consumed and reset per-iteration state."""
        if self._records:
            raise StreamOrderError(
                f"{len(self._records)} epsilon block(s) were never retrieved"
            )
        if self._prefetched:
            raise StreamOrderError(
                f"{len(self._prefetched)} prefetched block(s) were never sampled"
            )
        if self._hw_resume_states is not None:
            # Resume from the farthest pattern of the forward stage, exactly
            # like ReversibleGaussianStream.reset_epoch.
            self._bank.set_states(self._hw_resume_states)
            self._hw_resume_states = None
        self._span_start_states = None

    def discard_pending(self) -> None:
        """Drop outstanding blocks without retrieving them.

        Prediction-style forward-only workloads never consume their blocks;
        this makes the discard explicit (the per-sample equivalent is simply
        dropping the bank).
        """
        self._records.clear()
        self._prefetched.clear()
        self._retrieval_values = None
        self._span_start_states = None
        self._hw_resume_states = None

    def __repr__(self) -> str:
        return (
            f"BatchedWeightSampler(n_samples={self.n_samples}, "
            f"policy={self._policy!r}, pending={len(self._records)})"
        )
