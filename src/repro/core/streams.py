"""Epsilon stream policies: store-and-fetch (baseline) vs. LFSR retrieval.

BNN training needs every Gaussian random variable ``eps`` twice: once in the
forward stage to sample ``w = mu + eps * sigma`` and once during the backward /
gradient-calculation stages to reconstruct the weight and to form the gradient
of ``sigma``.  How the second use is served is the whole difference between the
baseline accelerators and Shift-BNN:

* :class:`StoredGaussianStream` materialises every generated block and serves
  retrievals from that store -- the software analogue of spilling ``eps`` to
  DRAM (the dominant traffic source the paper measures in Fig. 3).
* :class:`ReversibleGaussianStream` stores nothing but the LFSR state; blocks
  are regenerated on retrieval by reversed shifting (optionally from a tiny
  per-block register checkpoint), exactly reproducing the forward values.

Both classes implement the same :class:`EpsilonStream` interface and keep byte
accounting so that functional training runs can report the traffic that each
policy would have induced.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

import numpy as np

from .grng import LfsrGaussianRNG, ReplayError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .grng_bank import BankedGaussianRNG

    GaussianGenerator = Union[LfsrGaussianRNG, "BankedGaussianRNG"]

__all__ = [
    "EpsilonStream",
    "StreamUsage",
    "StoredGaussianStream",
    "ReversibleGaussianStream",
    "StreamOrderError",
]


class StreamOrderError(RuntimeError):
    """Raised when blocks are retrieved in an order the policy cannot serve."""


@dataclass
class StreamUsage:
    """Book-keeping of a stream's traffic, in epsilon counts and bytes.

    ``bytes_per_value`` follows the accelerator's 16-bit fixed-point datapath
    by default so that functional runs and the analytic simulator agree on
    volumes.
    """

    bytes_per_value: int = 2
    generated_values: int = 0
    retrieved_values: int = 0
    stored_values_peak: int = 0
    stored_values_current: int = 0
    checkpoint_bits: int = 0
    checkpoint_bits_peak: int = 0

    def record_generate(self, count: int) -> None:
        self.generated_values += count

    def record_retrieve(self, count: int) -> None:
        self.retrieved_values += count

    def record_store(self, count: int) -> None:
        self.stored_values_current += count
        self.stored_values_peak = max(self.stored_values_peak, self.stored_values_current)

    def record_release(self, count: int) -> None:
        self.stored_values_current = max(0, self.stored_values_current - count)

    # ------------------------------------------------------------------
    # state capture (distributed per-step deltas and training checkpoints)
    # ------------------------------------------------------------------
    _COUNTER_FIELDS = (
        "generated_values",
        "retrieved_values",
        "stored_values_peak",
        "stored_values_current",
        "checkpoint_bits",
        "checkpoint_bits_peak",
    )

    def reset(self) -> None:
        """Zero every counter (``bytes_per_value`` is configuration, not state).

        The distributed workers reset their shard streams' usage at each step
        boundary so the counters they ship back are pure per-step deltas.
        """
        for name in self._COUNTER_FIELDS:
            setattr(self, name, 0)

    def state_dict(self) -> dict[str, int]:
        """All counters as a plain dict (checkpoint / wire format)."""
        state = {name: int(getattr(self, name)) for name in self._COUNTER_FIELDS}
        state["bytes_per_value"] = self.bytes_per_value
        return state

    def load_state_dict(self, state: dict[str, int]) -> None:
        """Restore counters captured by :meth:`state_dict` (exact, in place)."""
        for name in self._COUNTER_FIELDS:
            setattr(self, name, int(state[name]))

    def merge_delta(self, delta: dict[str, int]) -> None:
        """Fold one iteration's per-step delta counters into this record.

        Valid at iteration boundaries, where ``stored_values_current`` and
        ``checkpoint_bits`` have returned to zero: the additive counters sum
        and the peaks take the running maximum, which reproduces exactly the
        evolution a single-process run's counters would have followed.
        """
        self.generated_values += int(delta["generated_values"])
        self.retrieved_values += int(delta["retrieved_values"])
        self.stored_values_current += int(delta["stored_values_current"])
        self.checkpoint_bits += int(delta["checkpoint_bits"])
        self.stored_values_peak = max(
            self.stored_values_peak, int(delta["stored_values_peak"])
        )
        self.checkpoint_bits_peak = max(
            self.checkpoint_bits_peak, int(delta["checkpoint_bits_peak"])
        )

    def record_checkpoint(self, bits: int) -> None:
        self.checkpoint_bits += bits
        self.checkpoint_bits_peak = max(self.checkpoint_bits_peak, self.checkpoint_bits)

    def release_checkpoint(self, bits: int) -> None:
        self.checkpoint_bits = max(0, self.checkpoint_bits - bits)

    @property
    def offchip_write_bytes(self) -> int:
        """Bytes written to backing storage for later reuse."""
        return self.stored_values_peak * self.bytes_per_value

    @property
    def offchip_read_bytes(self) -> int:
        """Bytes read back from backing storage."""
        return self.retrieved_values * self.bytes_per_value if self.stored_values_peak else 0

    @property
    def footprint_bytes(self) -> int:
        """Peak memory footprint attributable to epsilon storage.

        Uses the checkpoint high-water mark, not the momentary count: a
        completed iteration releases every checkpoint, but the storage the
        policy had to provision is the peak number of simultaneously live
        checkpoints (one register per outstanding layer).
        """
        return (
            self.stored_values_peak * self.bytes_per_value
            + self.checkpoint_bits_peak // 8
        )


class EpsilonStream(abc.ABC):
    """Common interface of the two epsilon-management policies.

    The forward pass calls :meth:`forward_block` once per layer (per sample);
    the backward pass calls :meth:`retrieve_block` for the same layers in the
    reverse order, passing the same shapes.  Implementations must return, for
    each retrieval, exactly the array that the matching forward call returned.
    """

    def __init__(self, grng: "GaussianGenerator", bytes_per_value: int = 2) -> None:
        self._grng = grng
        self.usage = StreamUsage(bytes_per_value=bytes_per_value)

    @property
    def grng(self) -> "GaussianGenerator":
        """The Gaussian generator backing this stream."""
        return self._grng

    @abc.abstractmethod
    def forward_block(self, shape: tuple[int, ...]) -> np.ndarray:
        """Generate a block of epsilons of ``shape`` for the forward stage."""

    @abc.abstractmethod
    def retrieve_block(self, shape: tuple[int, ...]) -> np.ndarray:
        """Return the epsilon block of the most recent un-retrieved layer."""

    @abc.abstractmethod
    def reset_epoch(self) -> None:
        """Prepare the stream for the next training iteration."""

    @staticmethod
    def _block_size(shape: tuple[int, ...]) -> int:
        size = 1
        for dim in shape:
            if dim <= 0:
                raise ValueError(f"block shape must be positive, got {shape}")
            size *= int(dim)
        return size


class StoredGaussianStream(EpsilonStream):
    """Baseline policy: keep every generated block until it is consumed.

    This is what a conventional training accelerator (or a GPU) has to do:
    epsilons cannot be recomputed, so they are written out after the forward
    stage and read back during backward / gradient calculation.  The stored
    blocks live in a LIFO because backpropagation walks the layers in reverse.
    """

    def __init__(self, grng: "GaussianGenerator", bytes_per_value: int = 2) -> None:
        super().__init__(grng, bytes_per_value)
        self._blocks: list[np.ndarray] = []

    def forward_block(self, shape: tuple[int, ...]) -> np.ndarray:
        count = self._block_size(shape)
        values = self._grng.epsilon_block(count).reshape(shape)
        self._blocks.append(values)
        self.usage.record_generate(count)
        self.usage.record_store(count)
        return values

    def retrieve_block(self, shape: tuple[int, ...]) -> np.ndarray:
        if not self._blocks:
            raise StreamOrderError("no stored epsilon block left to retrieve")
        block = self._blocks.pop()
        if block.shape != tuple(shape):
            raise StreamOrderError(
                f"retrieval shape {tuple(shape)} does not match stored block "
                f"shape {block.shape}; backward order must mirror forward order"
            )
        self.usage.record_retrieve(block.size)
        self.usage.record_release(block.size)
        return block

    def reset_epoch(self) -> None:
        if self._blocks:
            raise StreamOrderError(
                f"{len(self._blocks)} stored epsilon block(s) were never retrieved"
            )

    @property
    def pending_blocks(self) -> int:
        """Number of generated blocks not yet consumed by the backward pass."""
        return len(self._blocks)


class ReversibleGaussianStream(EpsilonStream):
    """Shift-BNN policy: regenerate blocks by reversed LFSR shifting.

    Nothing but the LFSR register (and, per outstanding layer, a block-size
    counter plus an optional state checkpoint of ``n_bits`` bits) is kept
    between the forward and backward stages.  Retrieval reproduces the forward
    values bit exactly because the LFSR recurrence is reversible.

    Parameters
    ----------
    use_checkpoints:
        When ``True`` (default) the register state at each block boundary is
        remembered so retrieval can regenerate the block with the fast
        vectorised forward generator.  When ``False`` the stream retrieves by
        literal reverse shifting, the exact hardware behaviour; results are
        identical (property-tested), only the software speed differs.
    """

    def __init__(
        self,
        grng: "GaussianGenerator",
        bytes_per_value: int = 2,
        use_checkpoints: bool = True,
    ) -> None:
        super().__init__(grng, bytes_per_value)
        self._use_checkpoints = use_checkpoints
        self._pending: list[_BlockRecord] = []
        # The farthest pattern the forward stage reached.  After the backward
        # stage has rewound the register, this pattern is restored so the next
        # iteration draws *fresh* variables -- exactly what the baseline's
        # free-running LFSR does.  In hardware this is one extra n-bit register
        # per GRNG, not an off-chip store.
        self._resume_state: int | None = None

    def forward_block(self, shape: tuple[int, ...]) -> np.ndarray:
        count = self._block_size(shape)
        start_state = self._grng.lfsr.state if self._use_checkpoints else None
        values = self._grng.epsilon_block(count).reshape(shape)
        self._pending.append(
            _BlockRecord(shape=tuple(shape), count=count, start_state=start_state)
        )
        if self._use_checkpoints:
            self.usage.record_checkpoint(self._grng.n_bits)
        self._resume_state = self._grng.lfsr.state
        self.usage.record_generate(count)
        return values

    def retrieve_block(self, shape: tuple[int, ...]) -> np.ndarray:
        if not self._pending:
            raise StreamOrderError("no outstanding epsilon block to retrieve")
        record = self._pending.pop()
        if record.shape != tuple(shape):
            raise StreamOrderError(
                f"retrieval shape {tuple(shape)} does not match outstanding block "
                f"shape {record.shape}; backward order must mirror forward order"
            )
        if self._use_checkpoints and record.start_state is not None:
            values = self._retrieve_from_checkpoint(record)
        else:
            values = self._retrieve_by_reverse_shift(record)
        self.usage.record_retrieve(record.count)
        return values

    def _retrieve_from_checkpoint(self, record: "_BlockRecord") -> np.ndarray:
        # Regenerate forward from the checkpoint, then rewind the register to
        # the checkpoint so the next (earlier) block can be retrieved; the
        # replay must land exactly on the pre-retrieval pattern.
        assert record.start_state is not None
        try:
            values = self._grng.replay_block(
                record.start_state,
                record.count,
                expected_end_state=self._grng.lfsr.state,
            )
        except ReplayError as exc:
            raise StreamOrderError(
                "checkpoint replay did not land on the pre-retrieval pattern; "
                "the register was modified outside the stream"
            ) from exc
        self.usage.release_checkpoint(self._grng.n_bits)
        return values.reshape(record.shape)

    def _retrieve_by_reverse_shift(self, record: "_BlockRecord") -> np.ndarray:
        reversed_values = self._grng.epsilon_block_reverse(record.count)
        # Reverse shifting yields the block newest-value-first; restore the
        # generation order so callers see exactly the forward block.
        return reversed_values[::-1].reshape(record.shape)

    def reset_epoch(self) -> None:
        if self._pending:
            raise StreamOrderError(
                f"{len(self._pending)} epsilon block(s) were never retrieved"
            )
        if self._resume_state is not None:
            # Resume from the farthest pattern of the forward stage so the next
            # iteration's epsilons are fresh and identical to the stored-policy
            # baseline's.
            self._grng.lfsr.state = self._resume_state
            self._grng.resync_sum_register()
            self._resume_state = None

    @property
    def pending_blocks(self) -> int:
        """Number of generated blocks not yet regenerated by the backward pass."""
        return len(self._pending)


@dataclass(frozen=True)
class _BlockRecord:
    """Metadata of one outstanding forward block (no epsilon values!)."""

    shape: tuple[int, ...]
    count: int
    start_state: int | None = field(default=None)
