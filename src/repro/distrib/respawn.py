"""Shared worker-respawn machinery for the serving and training pools.

Both process pools (:class:`repro.serve.worker.WorkerPool` for inference
tiles, :class:`repro.distrib.coordinator.DistributedBackend` for training
shards) follow the same fault-tolerance discipline:

* a crashed worker process may be **replaced** a bounded number of times
  (``max_respawns`` across the pool's lifetime -- a model that kills every
  process it touches must fail loudly, not respawn forever);
* the work that was in flight on the dead worker is **re-queued** a bounded
  number of times (``max_task_retries`` per work item) before its callers
  are failed.

Re-execution is always safe in this codebase because both workloads are
deterministic functions of their payload: a serving tile's epsilons derive
from the request's seed, and a training shard's epsilons derive from the
canonical generator states shipped with the step -- never from worker-local
state.  Retrying therefore reproduces the exact bits the first attempt would
have produced.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RespawnPolicy", "RespawnBudget"]


@dataclass(frozen=True)
class RespawnPolicy:
    """Bounds on crash recovery.

    ``max_respawns`` is the total number of replacement processes the pool
    may spawn over its lifetime; ``max_task_retries`` is how many times one
    work item may be re-queued after losing its worker before its callers
    see the failure.
    """

    max_respawns: int = 1
    max_task_retries: int = 1

    def __post_init__(self) -> None:
        if self.max_respawns < 0 or self.max_task_retries < 0:
            raise ValueError("respawn bounds must be non-negative")


class RespawnBudget:
    """Mutable consumption of a :class:`RespawnPolicy` by one pool instance."""

    def __init__(self, policy: RespawnPolicy) -> None:
        self.policy = policy
        self.respawns_used = 0
        self._task_retries: dict[object, int] = {}

    def try_respawn(self) -> bool:
        """Consume one respawn if any remain; ``True`` when granted."""
        if self.respawns_used >= self.policy.max_respawns:
            return False
        self.respawns_used += 1
        return True

    def try_retry(self, task_key: object) -> bool:
        """Consume one retry for ``task_key`` if any remain; ``True`` when granted."""
        used = self._task_retries.get(task_key, 0)
        if used >= self.policy.max_task_retries:
            return False
        self._task_retries[task_key] = used + 1
        return True

    def forget(self, task_key: object) -> None:
        """Drop the retry history of a completed work item."""
        self._task_retries.pop(task_key, None)
