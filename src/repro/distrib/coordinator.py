"""Coordinator: data-parallel ``train_step`` execution over an elastic pool.

:class:`DistributedBackend` plugs into
:class:`~repro.bnn.trainer.BNNTrainer` as its execution backend.  Each
optimisation step it:

1. applies pending **membership changes** -- workers that asked to join or
   leave do so here, at the step boundary (never mid-step), triggering a
   deterministic replan; crashed workers are respawned within the
   :class:`~repro.distrib.respawn.RespawnPolicy` bounds;
2. captures the trainer's canonical state -- parameter values and the
   per-sample generator snapshots of the trainer's own
   :class:`~repro.core.checkpoint.StreamBank` (which in distributed mode is
   the *bookkeeping* bank: it never generates, it just holds the canonical
   register states and traffic counters, which is also exactly what the
   checkpoint layer saves);
3. plans the step's 2-D ``(sample-shard, row-block)`` task grid
   (:func:`~repro.distrib.plan.plan_step`) and dispatches one
   self-contained task per cell -- inline (``n_workers=0``) or onto worker
   processes, each of which rebuilds a bit-identical replica from a
   :class:`~repro.models.zoo.ReplicaSpec` and owns only its shard's
   generator rows.  Task state (parameters, minibatch rows) ships as
   content-fingerprinted **deltas** against what each worker already caches
   (:mod:`repro.distrib.delta`); a worker that cannot resolve a delta
   answers with a resync request and receives the task re-shipped full;
4. collects the task results with deterministic fault tolerance: a dead
   worker's tasks are re-dispatched (to a surviving or freshly respawned
   worker, within the respawn bounds) and re-execute from the same task
   spec, re-encoded for whatever the target worker's cache holds -- the
   task is re-computed from its seeds/states, never dropped, and
   re-execution is bit-identical because nothing in the spec depends on
   worker state;
5. reduces gradients, loss terms and probabilities in canonical
   ``(sample, row-block)`` order
   (:func:`~repro.distrib.reduce.reduce_step_outputs`), folds the workers'
   traffic-counter deltas into the canonical bank's usage records, and
   writes the post-step generator snapshots back into the canonical bank.

The resulting parameter trajectory is bit-for-bit the single-process
batched (and therefore also the sequential) trajectory with the default
single row block -- at any worker count, under any join/leave schedule,
delta or full shipping.  With ``n_row_blocks > 1`` the trajectory is the
canonical *blocked* trajectory, still invariant to worker count, partition
and placement (see :mod:`repro.distrib.plan`).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from queue import Empty
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..bnn.serialization import tensor_fingerprint
from ..obs.adapters import bind_distrib_collectors
from ..obs.metrics import MetricsRegistry, default_registry, obs_enabled
from .delta import (
    DEFAULT_CACHE_SLOTS,
    DeltaEncoder,
    DeltaResyncRequired,
)
from .plan import plan_step
from .reduce import reduce_step_outputs
from .respawn import RespawnBudget, RespawnPolicy
from .worker import PARAM_SLOT_PREFIX, ShardEngine, _worker_main, data_slots

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..bnn.trainer import BNNTrainer
    from ..models.zoo import ReplicaSpec

__all__ = ["DistributedBackend", "DistributedStepError"]

_LIVENESS_POLL_S = 0.2

#: A task whose worker repeatedly fails to resolve its state even after
#: full re-shipments indicates a broken transport, not a stale cache.
_MAX_TASK_RESYNCS = 3

#: Rank key of the inline (in-process) engine's delta encoder.
_INLINE_RANK = -1


class DistributedStepError(RuntimeError):
    """A training step could not be completed by the worker pool."""


@dataclass
class _TrainWorker:
    rank: int
    process: multiprocessing.process.BaseProcess
    task_queue: object
    ready: bool = False
    assigned: set[int] = field(default_factory=set)


class DistributedBackend:
    """Sample- and row-sharded execution backend for ``BNNTrainer.train_step``.

    Parameters
    ----------
    replica:
        Recipe for the workers' model replicas.  Only the structure (spec +
        build seed) matters: the coordinator ships the current parameter
        values (as deltas) with every step, so a structural
        ``ReplicaSpec(spec=..., build_seed=...)`` without captured state is
        sufficient.
    n_workers:
        ``0`` executes the tasks inline on the coordinator (same sharded
        code path including delta encoding, no processes -- the degenerate
        cluster); ``>= 1`` forks that many worker processes.  The pool can
        grow and shrink later via :meth:`request_join` /
        :meth:`request_leave`.
    n_shards:
        How many sample shards to cut each step into.  ``None`` (default)
        tracks the pool: one shard per worker, replanned when the pool's
        membership changes.  An explicit value pins the plan.  More shards
        than workers is allowed -- tasks queue round-robin; inline execution
        with ``n_shards > 1`` exercises the full shard/reduce machinery
        in-process.
    n_row_blocks:
        Split each minibatch into this many contiguous row blocks, lifting
        the parallelism cap from ``S`` to ``S x n_row_blocks`` tasks.
        **Part of the canonical trajectory** (row sums are replayed per
        block): hold it fixed across a fit, and across any runs that are
        compared bit for bit.  The default ``1`` reproduces the classic
        single-process trajectory exactly.
    delta_shipping:
        Ship per-task state as content-fingerprinted deltas against each
        worker's cache (default).  ``False`` ships every task full -- same
        wire format, no cache reuse; the delta benchmark's baseline.
    delta_cache_slots:
        LRU capacity (distinct tensors) of each worker's delta cache and
        its coordinator-side mirror.
    respawn:
        Crash-recovery bounds; ``None`` disables respawning (a worker death
        then fails the step as soon as no healthy worker can take the
        task).
    step_timeout:
        Seconds one step may take end-to-end before the backend gives up
        (guards against a *hung* -- not dead -- worker).
    metrics:
        Where per-step phase timings (ship / compute / replay_reduce),
        bytes-shipped and resync/replan/pool-event counters land; defaults
        to the process-wide :func:`~repro.obs.metrics.default_registry` and
        is disabled entirely under ``REPRO_OBS=0``.
    """

    def __init__(
        self,
        replica: "ReplicaSpec",
        n_workers: int = 2,
        n_shards: int | None = None,
        n_row_blocks: int = 1,
        delta_shipping: bool = True,
        delta_cache_slots: int = DEFAULT_CACHE_SLOTS,
        respawn: RespawnPolicy | None = RespawnPolicy(),
        start_method: str | None = None,
        step_timeout: float = 300.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if n_workers < 0:
            raise ValueError("n_workers must be non-negative")
        if n_shards is not None and n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if n_row_blocks < 1:
            raise ValueError("n_row_blocks must be at least 1")
        self._replica = replica
        self._n_workers = n_workers
        self._auto_shards = n_shards is None
        self._n_shards = n_shards if n_shards is not None else max(n_workers, 1)
        self._n_row_blocks = n_row_blocks
        self._delta_shipping = delta_shipping
        self._delta_cache_slots = delta_cache_slots
        self._budget = RespawnBudget(respawn or RespawnPolicy(max_respawns=0))
        self._step_timeout = step_timeout
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else available[0]
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: list[_TrainWorker] = []
        self._retired: list[_TrainWorker] = []
        self._encoders: dict[int, DeltaEncoder] = {}
        self._result_queue = None
        self._inline_engine: ShardEngine | None = None
        self._loss = None
        self._next_rank = 0
        self._task_counter = 0
        self._step_index = 0
        self._started = False
        self._closed = False
        self._pending_joins = 0
        self._pending_leaves = 0
        #: Cumulative traffic/recovery accounting (also mirrored to metrics;
        #: these plain counters stay available under ``REPRO_OBS=0``).
        self.bytes_shipped = 0
        self.bytes_full_equivalent = 0
        self.resyncs = 0
        self.replans = 0
        if metrics is None and obs_enabled():
            metrics = default_registry()
        self._metrics = metrics
        self._m_phase = self._m_steps = None
        self._m_bytes = self._m_state_bytes = None
        self._m_resyncs = self._m_replans = self._m_pool = None
        self._collector = None
        if metrics is not None:
            self._m_phase = metrics.histogram(
                "repro_distrib_step_phase_ms",
                "Distributed step phase latency: ship (state capture + "
                "payload build), compute (task execution), replay_reduce "
                "(canonical reduce + bank fold-back).",
                ("phase",),
            )
            self._m_steps = metrics.counter(
                "repro_distrib_steps_total",
                "Distributed training steps completed.",
            )
            self._m_bytes = metrics.counter(
                "repro_distrib_state_bytes_shipped_total",
                "Task-state tensor bytes placed on the wire, by message kind "
                "(full: cold/resync/baseline shipments; delta: "
                "changed-tensor-only shipments).",
                ("kind",),
            )
            self._m_state_bytes = metrics.counter(
                "repro_distrib_state_bytes_total",
                "Task-state tensor bytes a full shipment of every task would "
                "have moved (the delta baseline).",
            )
            self._m_resyncs = metrics.counter(
                "repro_distrib_resyncs_total",
                "Delta-cache resyncs: tasks re-shipped full after a worker "
                "could not resolve its state message.",
            )
            self._m_replans = metrics.counter(
                "repro_distrib_replans_total",
                "Shard replans triggered by worker-pool membership changes.",
            )
            self._m_pool = metrics.counter(
                "repro_distrib_pool_events_total",
                "Elastic worker-pool membership events.",
                ("event",),
            )
            # materialise every child at zero so a scrape can tell "no
            # resyncs happened" apart from "nothing is instrumented"
            self._m_steps.inc(0)
            self._m_state_bytes.inc(0)
            self._m_resyncs.inc(0)
            self._m_replans.inc(0)
            for kind in ("full", "delta"):
                self._m_bytes.labels(kind=kind).inc(0)
            for event in ("join", "leave", "respawn"):
                self._m_pool.labels(event=event).inc(0)
            self._collector = bind_distrib_collectors(metrics, self)
        #: Test-only fault injection: ``hook(step_index, worker_rank) -> bool``
        #: evaluated at dispatch; ``True`` makes that worker die on receipt,
        #: exactly like an external SIGKILL mid-step.
        self.fault_hook: Callable[[int, int], bool] | None = None

    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def n_shards(self) -> int:
        """Sample shards per step under the current plan."""
        return self._n_shards

    @property
    def n_row_blocks(self) -> int:
        return self._n_row_blocks

    @property
    def alive_workers(self) -> int:
        """Number of worker processes currently alive."""
        return sum(1 for worker in self._workers if worker.process.is_alive())

    @property
    def respawns_used(self) -> int:
        """How many replacement workers have been spawned so far."""
        return self._budget.respawns_used

    @property
    def pending_joins(self) -> int:
        """Join requests queued for the next step boundary."""
        return self._pending_joins

    @property
    def pending_leaves(self) -> int:
        """Leave requests queued for the next step boundary."""
        return self._pending_leaves

    @property
    def delta_mirror_entries(self) -> int:
        """Total tensors tracked across all per-worker delta mirrors."""
        return sum(len(encoder.mirror) for encoder in self._encoders.values())

    @property
    def processes(self) -> list[multiprocessing.process.BaseProcess]:
        """Current worker processes (tests and diagnostics)."""
        return [worker.process for worker in self._workers]

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def request_join(self, n: int = 1) -> None:
        """Ask for ``n`` more workers; they join at the next step boundary.

        Mid-step requests never take effect mid-step: membership is applied
        only at the top of :meth:`run_step`, so the step in flight completes
        under the plan it started with.
        """
        if n < 1:
            raise ValueError("must request at least one worker")
        if self._n_workers == 0 and not self._pending_joins:
            raise RuntimeError(
                "the inline (n_workers=0) backend has no elastic worker pool"
            )
        self._pending_joins += n

    def request_leave(self, n: int = 1) -> None:
        """Ask for ``n`` workers to leave at the next step boundary.

        The highest-rank workers leave first (deterministic).  Shrinking
        the pool below one worker fails the next step loudly.
        """
        if n < 1:
            raise ValueError("must release at least one worker")
        if self._n_workers == 0:
            raise RuntimeError(
                "the inline (n_workers=0) backend has no elastic worker pool"
            )
        self._pending_leaves += n

    def _count_pool_event(self, event: str) -> None:
        if self._m_pool is not None:
            self._m_pool.labels(event=event).inc()

    def _apply_membership(self) -> None:
        """Apply queued join/leave requests and replan (step boundary only)."""
        changed = False
        while self._pending_leaves > 0:
            if len(self._workers) <= 1:
                self._pending_leaves = 0
                raise DistributedStepError(
                    "cannot shrink the worker pool below one worker"
                )
            worker = max(self._workers, key=lambda w: w.rank)
            self._workers.remove(worker)
            try:
                worker.task_queue.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
            self._retired.append(worker)
            self._encoders.pop(worker.rank, None)
            self._n_workers -= 1
            self._pending_leaves -= 1
            changed = True
            self._count_pool_event("leave")
        while self._pending_joins > 0:
            self._workers.append(self._spawn_worker())
            self._n_workers += 1
            self._pending_joins -= 1
            changed = True
            self._count_pool_event("join")
        if changed and self._auto_shards:
            new_shards = max(self._n_workers, 1)
            if new_shards != self._n_shards:
                # the sample partition changes, the bits do not: the reducer
                # replays canonical (sample, row-block) order under any plan
                self._n_shards = new_shards
                self.replans += 1
                if self._m_replans is not None:
                    self._m_replans.inc()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> _TrainWorker:
        rank = self._next_rank
        self._next_rank += 1
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(rank, self._replica, self._loss, task_queue, self._result_queue),
            daemon=True,
        )
        process.start()
        return _TrainWorker(rank=rank, process=process, task_queue=task_queue)

    def _start(self, trainer: "BNNTrainer") -> None:
        self._started = True
        self._loss = trainer.loss
        if self._n_workers == 0:
            self._inline_engine = ShardEngine(self._replica.build(), trainer.loss)
            return
        self._result_queue = self._ctx.Queue()
        for _ in range(self._n_workers):
            self._workers.append(self._spawn_worker())
        deadline = time.monotonic() + self._step_timeout
        ready = 0
        while ready < self._n_workers:
            try:
                kind, rank, payload = self._result_queue.get(
                    timeout=max(0.01, deadline - time.monotonic())
                )
            except Empty as exc:
                self.close(abort=True)
                raise DistributedStepError(
                    f"only {ready}/{self._n_workers} training workers became ready"
                ) from exc
            if kind == "fatal":
                self.close(abort=True)
                raise DistributedStepError(
                    f"worker failed to build its replica:\n{payload}"
                )
            if kind == "ready":
                self._mark_ready(rank)
                ready += 1

    def _mark_ready(self, rank: int) -> None:
        for worker in self._workers:
            if worker.rank == rank:
                worker.ready = True

    def close(self, abort: bool = False, timeout: float = 10.0) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._metrics is not None and self._collector is not None:
            self._metrics.unregister_collector(self._collector)
        workers = self._workers + self._retired
        for worker in workers:
            if abort:
                if worker.process.is_alive():
                    worker.process.terminate()
            else:
                try:
                    worker.task_queue.put(None)
                except Exception:  # pragma: no cover - queue already broken
                    pass
        for worker in workers:
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.kill()
                worker.process.join(timeout=timeout)
        self._workers = []
        self._retired = []
        self._encoders = {}

    def __enter__(self) -> "DistributedBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(abort=exc_type is not None)

    # ------------------------------------------------------------------
    # one step
    # ------------------------------------------------------------------
    def run_step(
        self,
        trainer: "BNNTrainer",
        x: np.ndarray,
        y: np.ndarray,
        kl_weight: float,
    ) -> tuple[float, np.ndarray]:
        """Execute one sharded FW/BW/GC pass; returns ``(total_nll, correct_probs)``.

        On return the trainer's model holds the canonically-reduced
        gradients, its bank holds the post-step generator states and updated
        traffic counters -- exactly the state the single-process pipelines
        leave behind before the optimiser update.
        """
        if self._closed:
            raise RuntimeError("backend is closed")
        if not self._started:
            self._start(trainer)
        if self._inline_engine is None:
            self._apply_membership()
        ship_from = time.monotonic()
        config = trainer.config
        plan = plan_step(
            config.n_samples, self._n_shards, x.shape[0], self._n_row_blocks
        )
        snapshots = trainer.bank.snapshots()
        bank_cfg = {
            "policy": trainer.bank.policy,
            "seed": config.seed,
            "lfsr_bits": config.lfsr_bits,
            "grng_stride": config.grng_stride,
            "lockstep": config.lockstep,
        }
        # the step's content-addressed state slots, hashed once (not once
        # per worker): every parameter tensor plus each row block's data
        param_slots = {
            PARAM_SLOT_PREFIX + param.name: param.value
            for param in trainer.model.parameters()
        }
        block_slots: dict[int, dict[str, np.ndarray]] = {}
        for block_index, (start, stop) in enumerate(plan.row_blocks):
            x_slot, y_slot = data_slots(block_index)
            block_slots[block_index] = {
                x_slot: x[start:stop],
                y_slot: y[start:stop],
            }
        fingerprints = {
            slot: tensor_fingerprint(array)
            for slots in (param_slots, *block_slots.values())
            for slot, array in slots.items()
        }
        specs = []
        for shard_index, block_index in plan.tasks:
            shard = plan.samples.shards[shard_index]
            slots = dict(param_slots)
            slots.update(block_slots[block_index])
            specs.append(
                {
                    "step_index": self._step_index,
                    "shard": shard,
                    "row_block": block_index,
                    "rows": plan.row_blocks[block_index],
                    "total_rows": plan.n_rows,
                    "row_normalised": plan.n_row_blocks > 1,
                    "snapshots": [snapshots[index] for index in shard],
                    # KL/prior/entropy terms are row-count independent: they
                    # enter exactly once per sample, through row block 0
                    "kl_weight": kl_weight if block_index == 0 else 0.0,
                    "include_entropy_term": (
                        config.include_entropy_term if block_index == 0 else False
                    ),
                    "quantization_bits": config.quantization_bits,
                    "bank": bank_cfg,
                    "slots": slots,
                    "fingerprints": fingerprints,
                }
            )
        compute_from = time.monotonic()
        if self._inline_engine is not None:
            task_results = [self._run_inline(spec) for spec in specs]
        else:
            task_results = self._run_pooled(specs)
        self._step_index += 1
        reduce_from = time.monotonic()
        total_nll, correct_probs = reduce_step_outputs(
            trainer.model, plan, task_results
        )
        # fold the per-step traffic deltas and post-step generator states
        # back into the canonical (bookkeeping) bank; row block 0 speaks for
        # each sample (all blocks draw identical weight epsilons)
        new_snapshots = list(snapshots)
        for (shard_index, block_index), result in zip(plan.tasks, task_results):
            if block_index != 0:
                continue
            shard = plan.samples.shards[shard_index]
            for local_index, sample_index in enumerate(shard):
                new_snapshots[sample_index] = result["snapshots"][local_index]
                trainer.bank.streams[sample_index].usage.merge_delta(
                    result["usage"][local_index]
                )
        trainer.bank.restore(new_snapshots)
        if self._m_phase is not None:
            done = time.monotonic()
            self._m_phase.labels(phase="ship").observe(
                (compute_from - ship_from) * 1e3
            )
            self._m_phase.labels(phase="compute").observe(
                (reduce_from - compute_from) * 1e3
            )
            self._m_phase.labels(phase="replay_reduce").observe(
                (done - reduce_from) * 1e3
            )
            self._m_steps.inc()
        return total_nll, correct_probs

    # ------------------------------------------------------------------
    # delta-aware payload encoding
    # ------------------------------------------------------------------
    def _encode_payload(self, spec: dict, rank: int) -> dict:
        """Materialise one task spec into a payload for one target worker.

        Encoding happens at dispatch time, per target: the same spec sent
        to a warm worker ships a slim delta, to a cold (fresh, respawned or
        resynced) worker a full state message.  Specs themselves stay
        abstract so crash re-dispatch can re-encode for the new target.
        """
        encoder = self._encoders.get(rank)
        if encoder is None:
            encoder = DeltaEncoder(
                capacity=self._delta_cache_slots,
                delta_shipping=self._delta_shipping,
            )
            self._encoders[rank] = encoder
        encoded = encoder.encode(spec["slots"], spec["fingerprints"])
        self.bytes_shipped += encoded.shipped_bytes
        self.bytes_full_equivalent += encoded.total_bytes
        if self._m_bytes is not None:
            self._m_bytes.labels(kind=encoded.message["kind"]).inc(
                encoded.shipped_bytes
            )
            self._m_state_bytes.inc(encoded.total_bytes)
        payload = {
            key: value
            for key, value in spec.items()
            if key not in ("slots", "fingerprints")
        }
        payload["state"] = encoded.message
        return payload

    def _note_resync(self, rank: int | None) -> None:
        """A worker could not resolve its state: mark it cold, count it."""
        self.resyncs += 1
        if self._m_resyncs is not None:
            self._m_resyncs.inc()
        if rank is not None:
            encoder = self._encoders.get(rank)
            if encoder is not None:
                encoder.mark_cold()

    def _run_inline(self, spec: dict) -> dict:
        """Inline execution: same encode/resolve path, no processes."""
        payload = self._encode_payload(spec, _INLINE_RANK)
        try:
            return self._inline_engine.run_step(payload)
        except DeltaResyncRequired:
            self._note_resync(_INLINE_RANK)
            payload = self._encode_payload(spec, _INLINE_RANK)  # now full
            return self._inline_engine.run_step(payload)

    # ------------------------------------------------------------------
    # pooled dispatch with deterministic crash recovery
    # ------------------------------------------------------------------
    def _dispatch(self, task_id: int, spec: dict) -> _TrainWorker:
        alive = [w for w in self._workers if w.process.is_alive()]
        if not alive:
            raise DistributedStepError(
                "no healthy training workers remain and the respawn budget "
                f"is exhausted ({self._budget.respawns_used} respawns used)"
            )
        # prefer workers whose replica is built (a freshly respawned
        # replacement is alive but still constructing); least-loaded first
        candidates = [w for w in alive if w.ready] or alive
        worker = min(candidates, key=lambda w: len(w.assigned))
        payload = self._encode_payload(spec, worker.rank)
        if self.fault_hook is not None and self.fault_hook(
            self._step_index, worker.rank
        ):
            payload = dict(payload, test_crash=True)
        worker.assigned.add(task_id)
        worker.task_queue.put((task_id, payload))
        return worker

    def _retire(self, worker: _TrainWorker) -> None:
        self._workers.remove(worker)
        self._retired.append(worker)
        self._encoders.pop(worker.rank, None)

    def _replenish(self) -> None:
        """Retire workers that died between steps and respawn within budget."""
        for worker in [w for w in self._workers if not w.process.is_alive()]:
            self._retire(worker)
        while len(self._workers) < self._n_workers and self._budget.try_respawn():
            self._workers.append(self._spawn_worker())
            self._count_pool_event("respawn")

    def _run_pooled(self, specs: list[dict]) -> list[dict]:
        self._replenish()
        pending: dict[int, dict] = {}
        assigned: dict[int, _TrainWorker] = {}
        results: dict[int, dict] = {}
        task_order: dict[int, int] = {}
        resync_counts: dict[int, int] = {}
        for spec_index, spec in enumerate(specs):
            task_id = self._task_counter
            self._task_counter += 1
            pending[task_id] = spec
            task_order[task_id] = spec_index
            assigned[task_id] = self._dispatch(task_id, spec)
        deadline = time.monotonic() + self._step_timeout
        try:
            while pending:
                if time.monotonic() > deadline:
                    raise DistributedStepError(
                        f"step did not complete within {self._step_timeout}s; "
                        f"{len(pending)} task(s) still outstanding"
                    )
                try:
                    message = self._result_queue.get(timeout=_LIVENESS_POLL_S)
                except Empty:
                    self._recover_dead(pending, assigned)
                    continue
                kind, key, payload = message
                if kind == "ready":
                    self._mark_ready(key)
                elif kind == "done":
                    if key in pending:
                        results[key] = payload
                        worker = assigned.pop(key)
                        worker.assigned.discard(key)
                        del pending[key]
                        self._budget.forget(key)
                elif kind == "resync":
                    if key in pending:
                        resync_counts[key] = resync_counts.get(key, 0) + 1
                        if resync_counts[key] > _MAX_TASK_RESYNCS:
                            raise DistributedStepError(
                                f"task {key} required more than "
                                f"{_MAX_TASK_RESYNCS} delta resyncs; the "
                                "state transport is broken"
                            )
                        self._note_resync((payload or {}).get("rank"))
                        worker = assigned.pop(key)
                        worker.assigned.discard(key)
                        assigned[key] = self._dispatch(key, pending[key])
                elif kind == "error":
                    if key in pending:
                        raise DistributedStepError(
                            f"task failed in worker:\n{payload}"
                        )
        except DistributedStepError:
            # release this step's bookkeeping before propagating so a caller
            # that retries train_step starts clean: abandoned task ids must
            # not keep skewing the load balancer, and their stale queue
            # messages are ignored via the pending-key guard (task ids are
            # never reused)
            for task_id, worker in assigned.items():
                worker.assigned.discard(task_id)
            raise
        return [
            results[task_id]
            for task_id in sorted(results, key=lambda t: task_order[t])
        ]

    def _recover_dead(
        self, pending: dict[int, dict], assigned: dict[int, _TrainWorker]
    ) -> None:
        """Re-dispatch the tasks of dead workers (bounded, deterministic).

        Called when the result queue went quiet: any task whose worker is no
        longer alive at this point was lost mid-execution.  The task's spec
        is re-encoded for its new target -- the spec fully determines the
        task's bits; only the delta framing is per-worker -- and re-queued
        onto a surviving worker, or onto a freshly spawned replacement when
        none survives and the respawn budget allows one.
        """
        orphaned = [
            task_id
            for task_id, worker in assigned.items()
            if not worker.process.is_alive()
        ]
        if not orphaned:
            return
        # retire dead workers first so dispatch never targets them
        dead = {assigned[task_id].rank for task_id in orphaned}
        for worker in [w for w in self._workers if w.rank in dead]:
            self._retire(worker)
        # keep the pool at strength within the respawn budget
        while len(self._workers) < self._n_workers and self._budget.try_respawn():
            self._workers.append(self._spawn_worker())
            self._count_pool_event("respawn")
        for task_id in orphaned:
            if not self._budget.try_retry(task_id):
                raise DistributedStepError(
                    f"task {task_id} lost its worker more than "
                    f"{self._budget.policy.max_task_retries} time(s)"
                )
            assigned[task_id] = self._dispatch(task_id, pending[task_id])
