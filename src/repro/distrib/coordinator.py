"""Coordinator: data-parallel ``train_step`` execution over shard workers.

:class:`DistributedBackend` plugs into
:class:`~repro.bnn.trainer.BNNTrainer` as its execution backend.  Each
optimisation step it:

1. captures the trainer's canonical state -- parameter values and the
   per-sample generator snapshots of the trainer's own
   :class:`~repro.core.checkpoint.StreamBank` (which in distributed mode is
   the *bookkeeping* bank: it never generates, it just holds the canonical
   register states and traffic counters, which is also exactly what the
   checkpoint layer saves);
2. plans the shard partition and dispatches one self-contained task per
   shard -- inline (``n_workers=0``) or onto worker processes, each of which
   rebuilds a bit-identical replica from a
   :class:`~repro.models.zoo.ReplicaSpec` and owns only its shard's
   generator rows;
3. collects the shard results with deterministic fault tolerance: a dead
   worker's shard is re-dispatched (to a surviving or freshly respawned
   worker, within the :class:`~repro.distrib.respawn.RespawnPolicy` bounds)
   and re-executes from the same payload -- the shard is re-computed from
   its seeds/states, never dropped, and re-execution is bit-identical
   because nothing in the payload depends on worker state;
4. reduces gradients, loss terms and probabilities in canonical sample
   order (:func:`~repro.distrib.reduce.reduce_step_outputs`), folds the
   workers' traffic-counter deltas into the canonical bank's usage records,
   and writes the post-step generator snapshots back into the canonical
   bank.

The resulting parameter trajectory is bit-for-bit the single-process
batched (and therefore also the sequential) trajectory, at any worker
count.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from queue import Empty
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..obs.metrics import MetricsRegistry, default_registry, obs_enabled
from .plan import plan_shards
from .reduce import reduce_step_outputs
from .respawn import RespawnBudget, RespawnPolicy
from .worker import ShardEngine, _worker_main

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..bnn.trainer import BNNTrainer
    from ..models.zoo import ReplicaSpec

__all__ = ["DistributedBackend", "DistributedStepError"]

_LIVENESS_POLL_S = 0.2


class DistributedStepError(RuntimeError):
    """A training step could not be completed by the worker pool."""


@dataclass
class _TrainWorker:
    rank: int
    process: multiprocessing.process.BaseProcess
    task_queue: object
    ready: bool = False
    assigned: set[int] = field(default_factory=set)


class DistributedBackend:
    """Sample-sharded execution backend for ``BNNTrainer.train_step``.

    Parameters
    ----------
    replica:
        Recipe for the workers' model replicas.  Only the structure (spec +
        build seed) matters: the coordinator ships the current parameter
        values with every step, so a structural
        ``ReplicaSpec(spec=..., build_seed=...)`` without captured state is
        sufficient.
    n_workers:
        ``0`` executes the shards inline on the coordinator (same sharded
        code path, no processes -- the degenerate cluster); ``>= 1`` forks
        that many worker processes.
    n_shards:
        How many shards to cut each step into (default: one per worker, or
        one for inline execution).  More shards than workers is allowed --
        shards queue round-robin; inline execution with ``n_shards > 1``
        exercises the full shard/reduce machinery in-process.
    respawn:
        Crash-recovery bounds; ``None`` disables respawning (a worker death
        then fails the step as soon as no healthy worker can take the
        shard).
    step_timeout:
        Seconds one step may take end-to-end before the backend gives up
        (guards against a *hung* -- not dead -- worker).
    metrics:
        Where per-step phase timings (ship / compute / replay_reduce) land;
        defaults to the process-wide
        :func:`~repro.obs.metrics.default_registry` and is disabled entirely
        under ``REPRO_OBS=0``.
    """

    def __init__(
        self,
        replica: "ReplicaSpec",
        n_workers: int = 2,
        n_shards: int | None = None,
        respawn: RespawnPolicy | None = RespawnPolicy(),
        start_method: str | None = None,
        step_timeout: float = 300.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if n_workers < 0:
            raise ValueError("n_workers must be non-negative")
        if n_shards is not None and n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self._replica = replica
        self._n_workers = n_workers
        self._n_shards = n_shards if n_shards is not None else max(n_workers, 1)
        self._budget = RespawnBudget(respawn or RespawnPolicy(max_respawns=0))
        self._step_timeout = step_timeout
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else available[0]
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: list[_TrainWorker] = []
        self._retired: list[_TrainWorker] = []
        self._result_queue = None
        self._inline_engine: ShardEngine | None = None
        self._loss = None
        self._next_rank = 0
        self._task_counter = 0
        self._step_index = 0
        self._started = False
        self._closed = False
        if metrics is None and obs_enabled():
            metrics = default_registry()
        self._metrics = metrics
        self._m_phase = self._m_steps = None
        if metrics is not None:
            self._m_phase = metrics.histogram(
                "repro_distrib_step_phase_ms",
                "Distributed step phase latency: ship (state capture + "
                "payload build), compute (shard execution), replay_reduce "
                "(canonical reduce + bank fold-back).",
                ("phase",),
            )
            self._m_steps = metrics.counter(
                "repro_distrib_steps_total",
                "Distributed training steps completed.",
            )
        #: Test-only fault injection: ``hook(step_index, worker_rank) -> bool``
        #: evaluated at dispatch; ``True`` makes that worker die on receipt,
        #: exactly like an external SIGKILL mid-step.
        self.fault_hook: Callable[[int, int], bool] | None = None

    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def alive_workers(self) -> int:
        """Number of worker processes currently alive."""
        return sum(1 for worker in self._workers if worker.process.is_alive())

    @property
    def respawns_used(self) -> int:
        """How many replacement workers have been spawned so far."""
        return self._budget.respawns_used

    @property
    def processes(self) -> list[multiprocessing.process.BaseProcess]:
        """Current worker processes (tests and diagnostics)."""
        return [worker.process for worker in self._workers]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> _TrainWorker:
        rank = self._next_rank
        self._next_rank += 1
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(rank, self._replica, self._loss, task_queue, self._result_queue),
            daemon=True,
        )
        process.start()
        return _TrainWorker(rank=rank, process=process, task_queue=task_queue)

    def _start(self, trainer: "BNNTrainer") -> None:
        self._started = True
        self._loss = trainer.loss
        if self._n_workers == 0:
            self._inline_engine = ShardEngine(self._replica.build(), trainer.loss)
            return
        self._result_queue = self._ctx.Queue()
        for _ in range(self._n_workers):
            self._workers.append(self._spawn_worker())
        deadline = time.monotonic() + self._step_timeout
        ready = 0
        while ready < self._n_workers:
            try:
                kind, rank, payload = self._result_queue.get(
                    timeout=max(0.01, deadline - time.monotonic())
                )
            except Empty as exc:
                self.close(abort=True)
                raise DistributedStepError(
                    f"only {ready}/{self._n_workers} training workers became ready"
                ) from exc
            if kind == "fatal":
                self.close(abort=True)
                raise DistributedStepError(
                    f"worker failed to build its replica:\n{payload}"
                )
            if kind == "ready":
                self._mark_ready(rank)
                ready += 1

    def _mark_ready(self, rank: int) -> None:
        for worker in self._workers:
            if worker.rank == rank:
                worker.ready = True

    def close(self, abort: bool = False, timeout: float = 10.0) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        workers = self._workers + self._retired
        for worker in workers:
            if abort:
                if worker.process.is_alive():
                    worker.process.terminate()
            else:
                try:
                    worker.task_queue.put(None)
                except Exception:  # pragma: no cover - queue already broken
                    pass
        for worker in workers:
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.kill()
                worker.process.join(timeout=timeout)
        self._workers = []
        self._retired = []

    def __enter__(self) -> "DistributedBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(abort=exc_type is not None)

    # ------------------------------------------------------------------
    # one step
    # ------------------------------------------------------------------
    def run_step(
        self,
        trainer: "BNNTrainer",
        x: np.ndarray,
        y: np.ndarray,
        kl_weight: float,
    ) -> tuple[float, np.ndarray]:
        """Execute one sharded FW/BW/GC pass; returns ``(total_nll, correct_probs)``.

        On return the trainer's model holds the canonically-reduced
        gradients, its bank holds the post-step generator states and updated
        traffic counters -- exactly the state the single-process pipelines
        leave behind before the optimiser update.
        """
        if self._closed:
            raise RuntimeError("backend is closed")
        if not self._started:
            self._start(trainer)
        ship_from = time.monotonic()
        config = trainer.config
        plan = plan_shards(config.n_samples, self._n_shards)
        snapshots = trainer.bank.snapshots()
        params = {
            param.name: param.value for param in trainer.model.parameters()
        }
        bank_cfg = {
            "policy": trainer.bank.policy,
            "seed": config.seed,
            "lfsr_bits": config.lfsr_bits,
            "grng_stride": config.grng_stride,
            "lockstep": config.lockstep,
        }
        payloads = []
        for shard in plan.shards:
            payloads.append(
                {
                    "step_index": self._step_index,
                    "shard": shard,
                    "snapshots": [snapshots[index] for index in shard],
                    "params": params,
                    "x": x,
                    "y": y,
                    "kl_weight": kl_weight,
                    "include_entropy_term": config.include_entropy_term,
                    "quantization_bits": config.quantization_bits,
                    "bank": bank_cfg,
                }
            )
        compute_from = time.monotonic()
        if self._inline_engine is not None:
            shard_results = [
                self._inline_engine.run_step(payload) for payload in payloads
            ]
        else:
            shard_results = self._run_pooled(payloads)
        self._step_index += 1
        reduce_from = time.monotonic()
        total_nll, correct_probs = reduce_step_outputs(
            trainer.model, plan, shard_results
        )
        # fold the per-step traffic deltas and post-step generator states
        # back into the canonical (bookkeeping) bank
        new_snapshots = list(snapshots)
        for shard, result in zip(plan.shards, shard_results):
            for local_index, sample_index in enumerate(shard):
                new_snapshots[sample_index] = result["snapshots"][local_index]
                trainer.bank.streams[sample_index].usage.merge_delta(
                    result["usage"][local_index]
                )
        trainer.bank.restore(new_snapshots)
        if self._m_phase is not None:
            done = time.monotonic()
            self._m_phase.labels(phase="ship").observe(
                (compute_from - ship_from) * 1e3
            )
            self._m_phase.labels(phase="compute").observe(
                (reduce_from - compute_from) * 1e3
            )
            self._m_phase.labels(phase="replay_reduce").observe(
                (done - reduce_from) * 1e3
            )
            self._m_steps.inc()
        return total_nll, correct_probs

    # ------------------------------------------------------------------
    # pooled dispatch with deterministic crash recovery
    # ------------------------------------------------------------------
    def _dispatch(self, task_id: int, payload: dict) -> _TrainWorker:
        alive = [w for w in self._workers if w.process.is_alive()]
        if not alive:
            raise DistributedStepError(
                "no healthy training workers remain and the respawn budget "
                f"is exhausted ({self._budget.respawns_used} respawns used)"
            )
        # prefer workers whose replica is built (a freshly respawned
        # replacement is alive but still constructing); least-loaded first
        candidates = [w for w in alive if w.ready] or alive
        worker = min(candidates, key=lambda w: len(w.assigned))
        if self.fault_hook is not None and self.fault_hook(
            self._step_index, worker.rank
        ):
            payload = dict(payload, test_crash=True)
        worker.assigned.add(task_id)
        worker.task_queue.put((task_id, payload))
        return worker

    def _replenish(self) -> None:
        """Retire workers that died between steps and respawn within budget."""
        for worker in [w for w in self._workers if not w.process.is_alive()]:
            self._workers.remove(worker)
            self._retired.append(worker)
        while len(self._workers) < self._n_workers and self._budget.try_respawn():
            self._workers.append(self._spawn_worker())

    def _run_pooled(self, payloads: list[dict]) -> list[dict]:
        self._replenish()
        pending: dict[int, dict] = {}
        assigned: dict[int, _TrainWorker] = {}
        results: dict[int, dict] = {}
        task_shard: dict[int, int] = {}
        for shard_index, payload in enumerate(payloads):
            task_id = self._task_counter
            self._task_counter += 1
            pending[task_id] = payload
            task_shard[task_id] = shard_index
            assigned[task_id] = self._dispatch(task_id, payload)
        deadline = time.monotonic() + self._step_timeout
        try:
            while pending:
                if time.monotonic() > deadline:
                    raise DistributedStepError(
                        f"step did not complete within {self._step_timeout}s; "
                        f"{len(pending)} shard task(s) still outstanding"
                    )
                try:
                    message = self._result_queue.get(timeout=_LIVENESS_POLL_S)
                except Empty:
                    self._recover_dead(pending, assigned)
                    continue
                kind, key, payload = message
                if kind == "ready":
                    self._mark_ready(key)
                elif kind == "done":
                    if key in pending:
                        results[key] = payload
                        worker = assigned.pop(key)
                        worker.assigned.discard(key)
                        del pending[key]
                        self._budget.forget(key)
                elif kind == "error":
                    if key in pending:
                        raise DistributedStepError(
                            f"shard task failed in worker:\n{payload}"
                        )
        except DistributedStepError:
            # release this step's bookkeeping before propagating so a caller
            # that retries train_step starts clean: abandoned task ids must
            # not keep skewing the load balancer, and their stale queue
            # messages are ignored via the pending-key guard (task ids are
            # never reused)
            for task_id, worker in assigned.items():
                worker.assigned.discard(task_id)
            raise
        return [
            results[task_id]
            for task_id in sorted(results, key=lambda t: task_shard[t])
        ]

    def _recover_dead(
        self, pending: dict[int, dict], assigned: dict[int, _TrainWorker]
    ) -> None:
        """Re-dispatch the shard tasks of dead workers (bounded, deterministic).

        Called when the result queue went quiet: any task whose worker is no
        longer alive at this point was lost mid-execution.  The task is
        re-queued unchanged -- its payload fully determines its bits -- onto
        a surviving worker, or onto a freshly spawned replacement when none
        survives and the respawn budget allows one.
        """
        orphaned = [
            task_id
            for task_id, worker in assigned.items()
            if not worker.process.is_alive()
        ]
        if not orphaned:
            return
        # retire dead workers first so dispatch never targets them
        dead = {assigned[task_id].rank for task_id in orphaned}
        for worker in [w for w in self._workers if w.rank in dead]:
            self._workers.remove(worker)
            self._retired.append(worker)
        # keep the pool at strength within the respawn budget
        while len(self._workers) < self._n_workers and self._budget.try_respawn():
            self._workers.append(self._spawn_worker())
        for task_id in orphaned:
            if not self._budget.try_retry(task_id):
                raise DistributedStepError(
                    f"shard task {task_id} lost its worker more than "
                    f"{self._budget.policy.max_task_retries} time(s)"
                )
            assigned[task_id] = self._dispatch(task_id, pending[task_id])
