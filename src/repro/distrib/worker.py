"""Shard execution engine and worker-process loop for distributed training.

A :class:`ShardEngine` executes one task's FW/BW/GC work for a cell of the
step's :class:`~repro.distrib.plan.StepPlan` -- a *shard* of the canonical
Monte-Carlo samples crossed with one contiguous *row block* of the
minibatch.  It is deliberately **stateless between steps**: everything that
determines the task's bits arrives in the task payload -- the current
parameter values and minibatch rows (resolved through the content-addressed
:class:`~repro.distrib.delta.DeltaCache`, a pure transport optimisation),
the shard's canonical generator snapshots and the loss weights.  The
engine's model replica, delta cache and cached shard banks are performance
caches only; re-executing a payload on a freshly-built engine (e.g. on a
respawned worker after a crash) produces byte-identical results, which is
what makes the coordinator's retry-on-death recovery deterministic.

Bit-exactness contract (the Fig. 9 property, extended across processes):

* The shard's :class:`~repro.core.checkpoint.StreamBank` hosts exactly the
  shard's rows, seeded as the canonical samples would be
  (``sample_indices=shard``) and rewound onto the coordinator's canonical
  generator states before the pass -- epsilon bits never depend on which
  worker runs the task, or on anything the worker did earlier.  Weight
  epsilons do not depend on minibatch rows, so every row block of a sample
  draws identical epsilons; snapshots and traffic deltas are reported by
  row block 0 alone.
* The per-sample forward/backward arithmetic is shard-size independent by
  construction (per-sample matmuls / im2col; element-wise ops broadcast per
  row), so sample ``s`` computes the same bits whether it is folded with
  all ``S`` samples or only with its shard.
* Gradients are not accumulated locally: a
  :class:`~repro.bnn.grad_tape.SampleGradientTape` captures every
  parameter's per-sample contribution stack, and the coordinator replays
  the additions in canonical ``(sample, row-block)`` order across tasks.
  KL/prior (and entropy) terms are row-count independent, so they enter
  through row block 0 only (other blocks run with ``kl_weight=0``).
"""

from __future__ import annotations

import os
import traceback
from typing import TYPE_CHECKING

import numpy as np

from ..core.checkpoint import StreamBank
from ..nn.losses import loss_probabilities
from ..nn.quantization import QuantizationConfig
from ..bnn.grad_tape import SampleGradientTape
from .delta import DeltaCache, DeltaResyncRequired

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..bnn.model import BayesianNetwork
    from ..models.zoo import ReplicaSpec
    from ..nn.losses import Loss

__all__ = ["ShardEngine"]

#: Slot-name prefixes of the delta-shipped state (see ``distrib.delta``).
PARAM_SLOT_PREFIX = "param/"


def data_slots(block_index: int) -> tuple[str, str]:
    """The ``(x, y)`` slot names of one row block's minibatch data."""
    return f"data/x/{block_index}", f"data/y/{block_index}"


class ShardEngine:
    """Executes ``(shard, row-block)`` tasks against a private model replica.

    One engine lives in each worker process (and one serves the inline
    ``n_workers=0`` path on the coordinator).  Shard banks are cached per
    ``(shard, bank-config)`` key; their generator registers are overwritten
    from the payload's canonical snapshots at every task, so the cache can
    never leak state into the results.  The delta cache resolves the
    payload's content-addressed state message; on any mismatch it raises
    :class:`~repro.distrib.delta.DeltaResyncRequired`, which the worker
    loop reports for a coordinator-driven full resync.
    """

    def __init__(self, model: "BayesianNetwork", loss: "Loss") -> None:
        self.model = model
        self.loss = loss
        self.delta_cache = DeltaCache()
        self._parameters = {param.name: param for param in model.parameters()}
        self._banks: dict[tuple, StreamBank] = {}
        self._applied_quantization: object = None

    # ------------------------------------------------------------------
    def _bank_for(self, shard: tuple[int, ...], bank_cfg: dict) -> StreamBank:
        key = (
            shard,
            bank_cfg["policy"],
            bank_cfg["seed"],
            bank_cfg["lfsr_bits"],
            bank_cfg["grng_stride"],
            bank_cfg["lockstep"],
        )
        bank = self._banks.get(key)
        if bank is None:
            bank = StreamBank(
                n_samples=len(shard),
                policy=bank_cfg["policy"],
                seed=bank_cfg["seed"],
                lfsr_bits=bank_cfg["lfsr_bits"],
                grng_stride=bank_cfg["grng_stride"],
                lockstep=bank_cfg["lockstep"],
                sample_indices=shard,
            )
            self._banks[key] = bank
        return bank

    def _load_parameters(self, values: dict[str, np.ndarray]) -> None:
        if set(values) != set(self._parameters):
            missing = sorted(set(self._parameters) - set(values))
            unexpected = sorted(set(values) - set(self._parameters))
            raise ValueError(
                f"step parameters do not match the replica: missing={missing}, "
                f"unexpected={unexpected}"
            )
        for name, value in values.items():
            parameter = self._parameters[name]
            if parameter.value.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: step {value.shape}, "
                    f"replica {parameter.value.shape}"
                )
            parameter.value[...] = value

    def _apply_quantization(self, quantization_bits: int | None) -> None:
        if quantization_bits == self._applied_quantization:
            return
        if quantization_bits in (8, 16):
            config = QuantizationConfig.from_word_length(quantization_bits)
        else:
            config = QuantizationConfig.full_precision()
        self.model.quantization = config
        self._applied_quantization = quantization_bits

    def _resolve_state(
        self, payload: dict
    ) -> tuple[dict[str, np.ndarray], np.ndarray, np.ndarray]:
        """Resolve the task's ``(params, x, y)`` from its state message.

        Payloads may also carry the pre-delta direct keys (``params`` /
        ``x`` / ``y``) -- the form unit tests and external callers use; the
        coordinator always ships the content-addressed ``state`` message.
        """
        state = payload.get("state")
        if state is None:
            return payload["params"], payload["x"], payload["y"]
        resolved = self.delta_cache.apply(state)
        params = {
            slot[len(PARAM_SLOT_PREFIX):]: array
            for slot, array in resolved.items()
            if slot.startswith(PARAM_SLOT_PREFIX)
        }
        x_slot, y_slot = data_slots(payload.get("row_block", 0))
        return params, resolved[x_slot], resolved[y_slot]

    # ------------------------------------------------------------------
    def run_step(self, payload: dict) -> dict:
        """Execute one task; returns the wire-format result payload.

        The result carries the per-sample gradient contribution stacks, the
        per-sample loss terms and predictive probabilities of the task's
        row block -- in the shard's local sample order (the coordinator owns
        canonical order) -- plus, for row block 0, the post-step generator
        snapshots and the step's traffic-counter deltas.
        """
        shard: tuple[int, ...] = tuple(payload["shard"])
        block_index: int = payload.get("row_block", 0)
        total_rows: int | None = payload.get("total_rows")
        row_normalised: bool = payload.get("row_normalised", False)
        params, x, y = self._resolve_state(payload)
        self._load_parameters(params)
        self._apply_quantization(payload.get("quantization_bits"))
        bank = self._bank_for(shard, payload["bank"])
        # adopt the coordinator's canonical generator states and zero the
        # traffic counters: everything shipped back is a pure per-step delta
        bank.load_generator_states(payload["snapshots"])
        bank.reset_usage()

        model = self.model
        model.train()
        model.zero_grad()
        sampler = bank.batched_sampler()
        with SampleGradientTape() as tape:
            logits = model.forward_samples(x, sampler)
            nlls: list[float] = []
            probabilities = np.empty_like(logits)
            grad_logits = np.empty_like(logits)
            for local_index in range(len(shard)):
                if row_normalised:
                    nlls.append(
                        self.loss.forward_rows(logits[local_index], y, total_rows)
                    )
                else:
                    nlls.append(self.loss.forward(logits[local_index], y))
                probabilities[local_index] = loss_probabilities(
                    self.loss, logits[local_index]
                )
                if row_normalised:
                    grad_logits[local_index] = self.loss.backward_rows()
                else:
                    grad_logits[local_index] = self.loss.backward()
            model.backward_samples(
                grad_logits,
                sampler,
                kl_weight=payload["kl_weight"],
                include_entropy_term=payload["include_entropy_term"],
            )
        bank.finish_iteration()
        missing = set(self._parameters) - set(tape.contributions)
        if missing:  # pragma: no cover - layer code failing its contract
            raise RuntimeError(
                f"no per-sample contributions captured for {sorted(missing)}"
            )
        first_block = block_index == 0
        return {
            "shard": shard,
            "row_block": block_index,
            "rows": payload.get("rows"),
            "contributions": tape.contributions,
            "nlls": nlls,
            "probabilities": probabilities,
            # every row block of a sample draws identical weight epsilons
            # (they do not depend on minibatch rows), so block 0 speaks for
            # the sample: one snapshot, one traffic delta -- exactly the
            # accounting of the single-process run
            "snapshots": bank.snapshots() if first_block else None,
            "usage": bank.usage_state_dicts() if first_block else None,
        }


def _worker_main(
    rank: int,
    replica: "ReplicaSpec",
    loss: "Loss",
    task_queue,
    result_queue,
) -> None:
    """Training-worker process body: build the replica, then serve tasks.

    The wire protocol mirrors the serving pool's: a ``("ready", rank, None)``
    handshake after construction, then ``("done" | "error", task_id,
    payload)`` per task, with exceptions crossing the process boundary as
    formatted tracebacks.  A delta-cache mismatch is not an error: the
    worker answers ``("resync", task_id, {"rank": ...})`` and the
    coordinator re-ships the task full.  A ``None`` task shuts the worker
    down.
    """
    try:
        engine = ShardEngine(replica.build(), loss)
        result_queue.put(("ready", rank, None))
    except BaseException:  # pragma: no cover - defensive startup reporting
        result_queue.put(("fatal", rank, traceback.format_exc()))
        return
    while True:
        task = task_queue.get()
        if task is None:
            break
        task_id, payload = task
        if payload.get("test_crash"):
            # fault-injection hook for the recovery tests: die exactly the
            # way a segfaulting or OOM-killed worker would -- no cleanup,
            # no result message
            os._exit(1)
        try:
            result_queue.put(("done", task_id, engine.run_step(payload)))
        except DeltaResyncRequired as exc:
            result_queue.put(
                ("resync", task_id, {"rank": rank, "detail": str(exc)})
            )
        except BaseException:
            result_queue.put(("error", task_id, traceback.format_exc()))
