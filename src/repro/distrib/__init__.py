"""Elastic, delta-shipping distributed training with deterministic recovery.

This package shards one Bayes-by-Backprop ``train_step`` across an elastic
pool of worker processes, in 2-D: along the Monte-Carlo **sample** axis and
(optionally) along the minibatch **row** axis
(:func:`~repro.distrib.plan.plan_step`).  Each worker rebuilds a
bit-identical model replica from a :class:`~repro.models.zoo.ReplicaSpec`,
owns exactly its shard's generator rows (rewound onto the coordinator's
canonical states every step, so epsilon bits never depend on worker state),
runs the batched FW/BW/GC engine on its tasks, and ships **per-sample**
gradient contributions back; the coordinator reduces them in canonical
``(sample, row-block)`` order, which keeps the parameter trajectory
bit-for-bit identical to the single-process run at any worker count, under
any join/leave schedule -- the paper's Fig. 9 property, extended across
processes.

Task state travels as content-fingerprinted **deltas**
(:mod:`repro.distrib.delta`): workers cache the tensors they last applied,
the coordinator mirrors each cache and ships only what changed plus the
expected post-apply fingerprint, and any mismatch triggers an automatic
full resync -- a pure transport optimisation, invisible to the bits.
Workers may join or leave between steps (:meth:`DistributedBackend.
request_join` / :meth:`~DistributedBackend.request_leave`) and crash
mid-step: a dead worker's tasks are re-executed from their specs on a
surviving or respawned worker (never dropped), and the full checkpoint
layer in :mod:`repro.bnn.serialization` captures everything needed to
resume an interrupted run onto the exact uninterrupted trajectory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .coordinator import DistributedBackend, DistributedStepError
from .delta import (
    DeltaCache,
    DeltaEncoder,
    DeltaProtocolError,
    DeltaResyncRequired,
)
from .plan import ShardPlan, StepPlan, plan_row_blocks, plan_shards, plan_step
from .reduce import DistributedReductionError, reduce_step_outputs
from .respawn import RespawnBudget, RespawnPolicy
from .worker import ShardEngine

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..bnn.trainer import BNNTrainer, TrainerConfig
    from ..core.checkpoint import StreamPolicy
    from ..models.specs import ModelSpec

__all__ = [
    "DistributedBackend",
    "DistributedStepError",
    "DistributedReductionError",
    "DeltaCache",
    "DeltaEncoder",
    "DeltaProtocolError",
    "DeltaResyncRequired",
    "RespawnPolicy",
    "RespawnBudget",
    "ShardEngine",
    "ShardPlan",
    "StepPlan",
    "plan_shards",
    "plan_row_blocks",
    "plan_step",
    "reduce_step_outputs",
    "distributed_trainer",
]


def distributed_trainer(
    spec: "ModelSpec",
    config: "TrainerConfig | None" = None,
    n_workers: int = 2,
    n_shards: int | None = None,
    n_row_blocks: int = 1,
    delta_shipping: bool = True,
    policy: "StreamPolicy | None" = None,
    build_seed: int = 0,
    respawn: RespawnPolicy | None = RespawnPolicy(),
    start_method: str | None = None,
) -> "BNNTrainer":
    """Build a :class:`~repro.bnn.trainer.BNNTrainer` on a distributed backend.

    The model is built from ``spec`` (seeded with ``build_seed``) and every
    worker rebuilds the same structure from the shared
    :class:`~repro.models.zoo.ReplicaSpec`; because the coordinator ships
    the current parameter values (as content-addressed deltas) with every
    step, the replicas track the coordinator's trajectory exactly.
    ``n_row_blocks`` is part of the canonical trajectory (hold it fixed per
    fit); ``delta_shipping=False`` ships every task full, for baselines.
    Close the trainer (it is a context manager) to shut the worker pool
    down.
    """
    from ..bnn.trainer import BNNTrainer
    from ..models.zoo import ReplicaSpec

    model = spec.build_bayesian(seed=build_seed)
    backend = DistributedBackend(
        ReplicaSpec.structural(spec, build_seed=build_seed),
        n_workers=n_workers,
        n_shards=n_shards,
        n_row_blocks=n_row_blocks,
        delta_shipping=delta_shipping,
        respawn=respawn,
        start_method=start_method,
    )
    return BNNTrainer(model, config, policy=policy, backend=backend)
