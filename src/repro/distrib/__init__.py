"""Distributed sample-sharded training with deterministic fault tolerance.

This package shards one Bayes-by-Backprop ``train_step`` across worker
processes along the Monte-Carlo sample axis.  Each worker rebuilds a
bit-identical model replica from a :class:`~repro.models.zoo.ReplicaSpec`,
owns exactly its shard's generator rows (rewound onto the coordinator's
canonical states every step, so epsilon bits never depend on worker state),
runs the batched FW/BW/GC engine on its shard, and ships **per-sample**
gradient contributions back; the coordinator reduces them in canonical
sample order, which keeps the parameter trajectory bit-for-bit identical to
the single-process run at any worker count -- the paper's Fig. 9 property,
extended across processes.  A dead worker's shard is re-executed from its
payload on a surviving or respawned worker (never dropped), and the full
checkpoint layer in :mod:`repro.bnn.serialization` captures everything
needed to resume an interrupted run onto the exact uninterrupted
trajectory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .coordinator import DistributedBackend, DistributedStepError
from .plan import ShardPlan, plan_shards
from .reduce import DistributedReductionError, reduce_step_outputs
from .respawn import RespawnBudget, RespawnPolicy
from .worker import ShardEngine

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..bnn.trainer import BNNTrainer, TrainerConfig
    from ..core.checkpoint import StreamPolicy
    from ..models.specs import ModelSpec

__all__ = [
    "DistributedBackend",
    "DistributedStepError",
    "DistributedReductionError",
    "RespawnPolicy",
    "RespawnBudget",
    "ShardEngine",
    "ShardPlan",
    "plan_shards",
    "reduce_step_outputs",
    "distributed_trainer",
]


def distributed_trainer(
    spec: "ModelSpec",
    config: "TrainerConfig | None" = None,
    n_workers: int = 2,
    n_shards: int | None = None,
    policy: "StreamPolicy | None" = None,
    build_seed: int = 0,
    respawn: RespawnPolicy | None = RespawnPolicy(),
    start_method: str | None = None,
) -> "BNNTrainer":
    """Build a :class:`~repro.bnn.trainer.BNNTrainer` on a distributed backend.

    The model is built from ``spec`` (seeded with ``build_seed``) and every
    worker rebuilds the same structure from the shared
    :class:`~repro.models.zoo.ReplicaSpec`; because the coordinator ships
    the current parameter values with every step, the replicas track the
    coordinator's trajectory exactly.  Close the trainer (it is a context
    manager) to shut the worker pool down.
    """
    from ..bnn.trainer import BNNTrainer
    from ..models.zoo import ReplicaSpec

    model = spec.build_bayesian(seed=build_seed)
    backend = DistributedBackend(
        ReplicaSpec.structural(spec, build_seed=build_seed),
        n_workers=n_workers,
        n_shards=n_shards,
        respawn=respawn,
        start_method=start_method,
    )
    return BNNTrainer(model, config, policy=policy, backend=backend)
