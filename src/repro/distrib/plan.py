"""Shard planning: partition the ``S`` Monte-Carlo samples across workers.

A training step's FW/BW/GC work is embarrassingly parallel along the sample
axis; the planner cuts the canonical sample range ``0 .. S-1`` into
contiguous, balanced shards.  Contiguity is a convenience (shards print
nicely and keep cache-friendly slice semantics on the coordinator), not a
correctness requirement -- the reduction is performed per canonical sample
index, so *any* partition of the samples produces a bit-identical parameter
trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ShardPlan", "plan_shards"]


@dataclass(frozen=True)
class ShardPlan:
    """The partition of one step's Monte-Carlo samples into worker shards."""

    n_samples: int
    shards: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for shard in self.shards:
            if not shard:
                raise ValueError("a shard plan must not contain empty shards")
            seen.update(shard)
        if seen != set(range(self.n_samples)):
            raise ValueError(
                f"shards {self.shards} do not partition 0..{self.n_samples - 1}"
            )
        if sum(len(shard) for shard in self.shards) != self.n_samples:
            raise ValueError("shards overlap")

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def owner_of(self, sample_index: int) -> tuple[int, int]:
        """``(shard_index, local_index)`` of a canonical sample index."""
        for shard_index, shard in enumerate(self.shards):
            try:
                return shard_index, shard.index(sample_index)
            except ValueError:
                continue
        raise KeyError(f"sample {sample_index} is in no shard")


def plan_shards(n_samples: int, n_shards: int) -> ShardPlan:
    """Cut ``0 .. n_samples-1`` into at most ``n_shards`` contiguous shards.

    Shard sizes differ by at most one (the first ``n_samples % n_shards``
    shards take the extra sample); when there are more shards than samples
    the surplus shards are simply not created -- every shard is non-empty.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be at least 1")
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    n_shards = min(n_shards, n_samples)
    base, extra = divmod(n_samples, n_shards)
    shards: list[tuple[int, ...]] = []
    start = 0
    for shard_index in range(n_shards):
        size = base + (1 if shard_index < extra else 0)
        shards.append(tuple(range(start, start + size)))
        start += size
    return ShardPlan(n_samples=n_samples, shards=tuple(shards))
