"""Shard planning: partition one step's work across workers, in 2-D.

A training step's FW/BW/GC work is embarrassingly parallel along the
Monte-Carlo **sample** axis; the classic planner (:func:`plan_shards`) cuts
the canonical sample range ``0 .. S-1`` into contiguous, balanced shards.
Contiguity is a convenience (shards print nicely and keep cache-friendly
slice semantics on the coordinator), not a correctness requirement -- the
reduction is performed per canonical sample index, so *any* partition of
the samples produces a bit-identical parameter trajectory.

:func:`plan_step` adds a second axis: the minibatch **rows**.  A
:class:`StepPlan` crosses the sample shards with a fixed set of contiguous
row blocks; each ``(shard, row-block)`` cell is one independently
dispatchable task, so parallelism is no longer capped at ``S``.  The row
blocking is part of the step's *canonical semantics*, not of its schedule:
float sums over split row ranges do not recombine into the unsplit sums
bit-exactly, so the canonical trajectory is defined **per row-block
structure** -- the reducer replays gradient contributions in canonical
``(sample, row-block)`` order, which makes the bits independent of worker
count, shard partition and task placement, and ``n_row_blocks=1`` (the
default) is exactly the classic single-block trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ShardPlan",
    "StepPlan",
    "plan_shards",
    "plan_row_blocks",
    "plan_step",
]


@dataclass(frozen=True)
class ShardPlan:
    """The partition of one step's Monte-Carlo samples into worker shards."""

    n_samples: int
    shards: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for shard in self.shards:
            if not shard:
                raise ValueError("a shard plan must not contain empty shards")
            seen.update(shard)
        if seen != set(range(self.n_samples)):
            raise ValueError(
                f"shards {self.shards} do not partition 0..{self.n_samples - 1}"
            )
        if sum(len(shard) for shard in self.shards) != self.n_samples:
            raise ValueError("shards overlap")

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def owner_of(self, sample_index: int) -> tuple[int, int]:
        """``(shard_index, local_index)`` of a canonical sample index."""
        for shard_index, shard in enumerate(self.shards):
            try:
                return shard_index, shard.index(sample_index)
            except ValueError:
                continue
        raise KeyError(f"sample {sample_index} is in no shard")


@dataclass(frozen=True)
class StepPlan:
    """One step's 2-D ``(sample-shard, row-block)`` task grid.

    ``row_blocks`` is a contiguous partition of the minibatch rows
    ``0 .. n_rows-1`` as ``(start, stop)`` half-open ranges.  Tasks are the
    cross product ``shards x row_blocks``, enumerated shard-major
    (``task_index = shard_index * n_row_blocks + block_index``).  The block
    structure is canonical-trajectory-defining (see the module docstring);
    the shard partition is not.
    """

    samples: ShardPlan
    n_rows: int
    row_blocks: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.n_rows < 1:
            raise ValueError("a step plan needs at least one minibatch row")
        cursor = 0
        for start, stop in self.row_blocks:
            if start != cursor or stop <= start:
                raise ValueError(
                    f"row blocks {self.row_blocks} are not a contiguous "
                    f"partition of 0..{self.n_rows - 1}"
                )
            cursor = stop
        if cursor != self.n_rows:
            raise ValueError(
                f"row blocks {self.row_blocks} do not cover {self.n_rows} rows"
            )

    @property
    def n_samples(self) -> int:
        return self.samples.n_samples

    @property
    def n_row_blocks(self) -> int:
        return len(self.row_blocks)

    @property
    def n_tasks(self) -> int:
        return self.samples.n_shards * self.n_row_blocks

    @property
    def tasks(self) -> tuple[tuple[int, int], ...]:
        """All ``(shard_index, block_index)`` cells, shard-major."""
        return tuple(
            (shard_index, block_index)
            for shard_index in range(self.samples.n_shards)
            for block_index in range(self.n_row_blocks)
        )

    def task_of(self, sample_index: int, block_index: int) -> tuple[int, int]:
        """``(task_index, local_sample_index)`` owning one ``(s, b)`` cell."""
        if not 0 <= block_index < self.n_row_blocks:
            raise KeyError(f"row block {block_index} is not in the plan")
        shard_index, local_index = self.samples.owner_of(sample_index)
        return shard_index * self.n_row_blocks + block_index, local_index


def plan_shards(n_samples: int, n_shards: int) -> ShardPlan:
    """Cut ``0 .. n_samples-1`` into at most ``n_shards`` contiguous shards.

    Shard sizes differ by at most one (the first ``n_samples % n_shards``
    shards take the extra sample); when there are more shards than samples
    the surplus shards are simply not created -- every shard is non-empty.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be at least 1")
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    n_shards = min(n_shards, n_samples)
    base, extra = divmod(n_samples, n_shards)
    shards: list[tuple[int, ...]] = []
    start = 0
    for shard_index in range(n_shards):
        size = base + (1 if shard_index < extra else 0)
        shards.append(tuple(range(start, start + size)))
        start += size
    return ShardPlan(n_samples=n_samples, shards=tuple(shards))


def plan_row_blocks(n_rows: int, n_row_blocks: int) -> tuple[tuple[int, int], ...]:
    """Cut ``0 .. n_rows-1`` into at most ``n_row_blocks`` contiguous ranges.

    Balanced like :func:`plan_shards`: block sizes differ by at most one and
    surplus blocks are not created.  **Changing the block structure changes
    the canonical trajectory** (float sums over rows are replayed per
    block), so callers must hold it fixed for the lifetime of a fit.
    """
    if n_rows < 1:
        raise ValueError("n_rows must be at least 1")
    if n_row_blocks < 1:
        raise ValueError("n_row_blocks must be at least 1")
    n_row_blocks = min(n_row_blocks, n_rows)
    base, extra = divmod(n_rows, n_row_blocks)
    blocks: list[tuple[int, int]] = []
    start = 0
    for block_index in range(n_row_blocks):
        size = base + (1 if block_index < extra else 0)
        blocks.append((start, start + size))
        start += size
    return tuple(blocks)


def plan_step(
    n_samples: int,
    n_shards: int,
    n_rows: int,
    n_row_blocks: int = 1,
) -> StepPlan:
    """Plan one step: sample shards crossed with minibatch row blocks."""
    return StepPlan(
        samples=plan_shards(n_samples, n_shards),
        n_rows=n_rows,
        row_blocks=plan_row_blocks(n_rows, n_row_blocks),
    )
