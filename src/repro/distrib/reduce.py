"""Canonical-order gradient reduction for distributed training.

The single-process GC stage accumulates every parameter's gradient one
Monte-Carlo sample at a time, left to right: ``grad = ((c0 + c1) + c2) + ...``
Float addition is not associative, so shard-level *partial sums* cannot be
combined into that value bit-exactly.  The reducer therefore consumes the
**per-sample contribution stacks** the shard workers captured on their
gradient tapes and replays the additions in canonical sample order across
shards -- the identical sequence of float operations the single-process
batched (and sequential) trainers perform.  The same canonical-order replay
reduces the scalar loss terms and the summed predictive probabilities.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .plan import ShardPlan

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..bnn.model import BayesianNetwork

__all__ = ["DistributedReductionError", "reduce_step_outputs"]


class DistributedReductionError(RuntimeError):
    """A shard result does not fit the step's plan or the model's parameters."""


def _validate(
    model: "BayesianNetwork", plan: ShardPlan, shard_results: Sequence[dict]
) -> None:
    if len(shard_results) != plan.n_shards:
        raise DistributedReductionError(
            f"{len(shard_results)} shard results for {plan.n_shards} shards"
        )
    names = {param.name for param in model.parameters()}
    for shard, result in zip(plan.shards, shard_results):
        if tuple(result["shard"]) != shard:
            raise DistributedReductionError(
                f"result shard {result['shard']} does not match plan shard {shard}"
            )
        contributions = result["contributions"]
        missing = sorted(names - set(contributions))
        unexpected = sorted(set(contributions) - names)
        if missing or unexpected:
            raise DistributedReductionError(
                f"shard {shard} contributions do not match the model: "
                f"missing={missing}, unexpected={unexpected}"
            )
        for name, stack in contributions.items():
            if stack.shape[0] != len(shard):
                raise DistributedReductionError(
                    f"shard {shard} stack for {name!r} carries {stack.shape[0]} "
                    f"samples, expected {len(shard)}"
                )
        if len(result["nlls"]) != len(shard):
            raise DistributedReductionError(
                f"shard {shard} returned {len(result['nlls'])} loss terms"
            )


def reduce_step_outputs(
    model: "BayesianNetwork",
    plan: ShardPlan,
    shard_results: Sequence[dict],
) -> tuple[float, np.ndarray]:
    """Reduce one step's shard results into the coordinator's model.

    Zeroes the model's gradients, then accumulates every parameter's
    per-sample contributions, the per-sample loss terms and the predictive
    probabilities in canonical sample order.  Returns ``(total_nll,
    correct_probs)`` exactly as the single-process pipelines produce them.
    """
    _validate(model, plan, shard_results)
    owners = [plan.owner_of(s) for s in range(plan.n_samples)]
    model.zero_grad()
    for param in model.parameters():
        grad = param.grad
        for shard_index, local_index in owners:
            grad += shard_results[shard_index]["contributions"][param.name][
                local_index
            ]
    total_nll = 0.0
    correct_probs = np.zeros(shard_results[0]["probabilities"].shape[1:])
    for shard_index, local_index in owners:
        result = shard_results[shard_index]
        total_nll += result["nlls"][local_index]
        correct_probs += result["probabilities"][local_index]
    return total_nll, correct_probs
