"""Canonical-order gradient reduction for distributed training.

The single-process GC stage accumulates every parameter's gradient one
Monte-Carlo sample at a time, left to right: ``grad = ((c0 + c1) + c2) + ...``
Float addition is not associative, so shard-level *partial sums* cannot be
combined into that value bit-exactly.  The reducer therefore consumes the
**per-sample contribution stacks** the task workers captured on their
gradient tapes and replays the additions in canonical order across tasks --
the identical sequence of float operations whatever the worker count or the
shard partition.

With a 2-D :class:`~repro.distrib.plan.StepPlan` the canonical order is
``(sample, row-block)``: for each sample in ``0 .. S-1``, each of its row
blocks' contributions in block order.  The block structure itself is part
of the step's canonical semantics (splitting a float sum over rows changes
its bits), so the trajectory is a function of the plan's ``row_blocks`` --
and with one block it is exactly the classic single-process trajectory.
The same canonical-order replay reduces the scalar loss terms; predictive
probabilities accumulate per row, where blocks never interleave, so they
equal the single-process values at *any* block structure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .plan import ShardPlan, StepPlan

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..bnn.model import BayesianNetwork

__all__ = ["DistributedReductionError", "reduce_step_outputs"]


class DistributedReductionError(RuntimeError):
    """A task result does not fit the step's plan or the model's parameters."""


def _as_step_plan(
    plan: "ShardPlan | StepPlan", task_results: Sequence[dict]
) -> StepPlan:
    """Promote a legacy sample-axis plan to a single-row-block step plan."""
    if isinstance(plan, StepPlan):
        return plan
    if not task_results:
        raise DistributedReductionError("no task results to reduce")
    n_rows = task_results[0]["probabilities"].shape[1]
    return StepPlan(samples=plan, n_rows=n_rows, row_blocks=((0, n_rows),))


def _validate(
    model: "BayesianNetwork", plan: StepPlan, task_results: Sequence[dict]
) -> None:
    if len(task_results) != plan.n_tasks:
        raise DistributedReductionError(
            f"{len(task_results)} task results for {plan.n_tasks} plan tasks"
        )
    names = {param.name for param in model.parameters()}
    for (shard_index, block_index), result in zip(plan.tasks, task_results):
        shard = plan.samples.shards[shard_index]
        if tuple(result["shard"]) != shard:
            raise DistributedReductionError(
                f"result shard {result['shard']} does not match plan shard {shard}"
            )
        if result.get("row_block", 0) != block_index:
            raise DistributedReductionError(
                f"result row block {result.get('row_block', 0)} does not match "
                f"plan block {block_index}"
            )
        contributions = result["contributions"]
        missing = sorted(names - set(contributions))
        unexpected = sorted(set(contributions) - names)
        if missing or unexpected:
            raise DistributedReductionError(
                f"shard {shard} contributions do not match the model: "
                f"missing={missing}, unexpected={unexpected}"
            )
        for name, stack in contributions.items():
            if stack.shape[0] != len(shard):
                raise DistributedReductionError(
                    f"shard {shard} stack for {name!r} carries {stack.shape[0]} "
                    f"samples, expected {len(shard)}"
                )
        if len(result["nlls"]) != len(shard):
            raise DistributedReductionError(
                f"shard {shard} returned {len(result['nlls'])} loss terms"
            )
        start, stop = plan.row_blocks[block_index]
        if result["probabilities"].shape[1] != stop - start:
            raise DistributedReductionError(
                f"shard {shard} block {block_index} probabilities cover "
                f"{result['probabilities'].shape[1]} rows, expected {stop - start}"
            )


def reduce_step_outputs(
    model: "BayesianNetwork",
    plan: "ShardPlan | StepPlan",
    task_results: Sequence[dict],
) -> tuple[float, np.ndarray]:
    """Reduce one step's task results into the coordinator's model.

    ``task_results`` follow ``plan.tasks`` order (shard-major); a legacy
    sample-axis :class:`~repro.distrib.plan.ShardPlan` is accepted as a
    single-row-block step plan.  Zeroes the model's gradients, then
    accumulates every parameter's per-sample contributions and the
    per-sample loss terms in canonical ``(sample, row-block)`` order, and
    the predictive probabilities per row.  Returns ``(total_nll,
    correct_probs)`` exactly as the single-process pipelines produce them
    (for any plan with one row block; for blocked plans, exactly as the
    canonical blocked trajectory defines them).
    """
    plan = _as_step_plan(plan, task_results)
    _validate(model, plan, task_results)
    owners = [
        [plan.task_of(s, b) for b in range(plan.n_row_blocks)]
        for s in range(plan.n_samples)
    ]
    model.zero_grad()
    for param in model.parameters():
        grad = param.grad
        for per_block in owners:
            for task_index, local_index in per_block:
                grad += task_results[task_index]["contributions"][param.name][
                    local_index
                ]
    total_nll = 0.0
    n_classes = task_results[0]["probabilities"].shape[2]
    correct_probs = np.zeros((plan.n_rows, n_classes))
    for per_block in owners:
        for block_index, (task_index, local_index) in enumerate(per_block):
            result = task_results[task_index]
            total_nll += result["nlls"][local_index]
            start, stop = plan.row_blocks[block_index]
            correct_probs[start:stop] += result["probabilities"][local_index]
    return total_nll, correct_probs
