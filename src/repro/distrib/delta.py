"""Delta shipping: content-addressed tensor state for distributed steps.

PR 4's coordinator shipped every task a *full* copy of its state -- all
parameter tensors plus the minibatch -- every step.  This module replaces
that with a fingerprint-addressed delta protocol:

* every tensor a task needs (a *slot*: ``param/<name>``, ``data/x/<block>``,
  ``data/y/<block>``) is addressed by its content fingerprint
  (:func:`~repro.bnn.serialization.tensor_fingerprint` -- SHA-256 over
  dtype, shape and bytes);
* each worker keeps a bounded, LRU-ordered :class:`DeltaCache` of tensors
  keyed **by fingerprint** (content-addressed: a re-shipped minibatch or an
  unchanged parameter hits the cache no matter which slot asked for it);
* the coordinator keeps one :class:`DeltaEncoder` per worker, mirroring
  exactly what that worker's cache holds, and ships only the tensors the
  worker cannot already have, plus the expected post-apply
  :func:`~repro.bnn.serialization.state_fingerprint` of the resolved slot
  set.

The encoder's mirror and the worker's cache evolve in lockstep because both
replay the same entry sequence with the same capacity and the same LRU
discipline.  Anything that could break the lockstep degrades safely instead
of silently computing wrong bits:

* a cache miss, a fingerprint mismatch on received bytes, or a post-apply
  state-fingerprint mismatch raises :class:`DeltaResyncRequired`; the
  worker reports it and the coordinator re-ships the task **full** (and
  marks the worker cold, clearing its mirror);
* a ``full`` message clears the receiving cache before applying, so after
  every resync both sides are in a known-identical state;
* an unknown wire version raises :class:`DeltaProtocolError` (never a
  silent misparse).

Wire format (version 1)
-----------------------

One message per task, a plain dict (it crosses a ``multiprocessing`` queue):

========== ====================================================================
field       meaning
========== ====================================================================
``version`` wire-format version (this module's ``WIRE_VERSION``)
``kind``    ``"full"`` (receiver clears its cache first; every entry carries
            bytes) or ``"delta"`` (entries may reference cached fingerprints)
``entries`` ordered list of ``(slot, fingerprint, array_or_None)``; ``None``
            means "you hold ``fingerprint`` in cache"
``state_fp`` expected combined fingerprint of the resolved ``(slot,
            fingerprint)`` set after applying
``capacity`` the LRU capacity both sides must enforce
========== ====================================================================
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from ..bnn.serialization import state_fingerprint, tensor_fingerprint

__all__ = [
    "WIRE_VERSION",
    "DEFAULT_CACHE_SLOTS",
    "DeltaProtocolError",
    "DeltaResyncRequired",
    "DeltaCache",
    "DeltaEncoder",
    "EncodedState",
]

#: Version stamp carried by every state message; receivers reject anything
#: they do not speak rather than guessing.
WIRE_VERSION = 1

#: Default LRU capacity (distinct tensors) of a worker's delta cache and its
#: coordinator-side mirror.  Sized for many minibatches plus the parameter
#: set; both sides must agree, so the value rides in every message.
DEFAULT_CACHE_SLOTS = 256


class DeltaProtocolError(RuntimeError):
    """A state message is structurally invalid (e.g. unknown wire version)."""


class DeltaResyncRequired(RuntimeError):
    """The receiver cannot resolve a state message against its cache.

    Raised on a fingerprint cache miss, on received bytes that do not hash
    to their declared fingerprint, or on a post-apply state-fingerprint
    mismatch.  The coordinator answers by re-shipping the task full.
    """


@dataclass(frozen=True)
class EncodedState:
    """One encoded state message plus its traffic accounting."""

    message: dict
    #: Tensor bytes actually placed on the wire by this message.
    shipped_bytes: int
    #: Tensor bytes a full (non-delta) shipment of the same state would move.
    total_bytes: int


class DeltaCache:
    """Worker-side content-addressed tensor cache (bounded, LRU).

    ``apply`` resolves one state message into the ``{slot: array}`` dict the
    task executes against, updating the cache exactly as the coordinator's
    mirror predicts.
    """

    def __init__(self) -> None:
        self._entries: "OrderedDict[str, np.ndarray]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def fingerprints(self) -> tuple[str, ...]:
        """Cached fingerprints in LRU order (oldest first); for tests."""
        return tuple(self._entries)

    def apply(self, message: Mapping) -> Dict[str, np.ndarray]:
        """Resolve ``message`` into ``{slot: array}``; see module docstring."""
        version = message.get("version")
        if version != WIRE_VERSION:
            raise DeltaProtocolError(
                f"unsupported state wire version {version!r} "
                f"(this worker speaks {WIRE_VERSION})"
            )
        kind = message.get("kind")
        if kind not in ("full", "delta"):
            raise DeltaProtocolError(f"unknown state message kind {kind!r}")
        capacity = int(message["capacity"])
        if kind == "full":
            # a full shipment re-baselines the cache: afterwards its contents
            # are exactly the coordinator's mirror, whatever happened before
            self._entries.clear()
        resolved: Dict[str, np.ndarray] = {}
        missing: list[str] = []
        for slot, fingerprint, data in message["entries"]:
            if data is None:
                array = self._entries.get(fingerprint)
                if array is None:
                    missing.append(slot)
                    continue
                self._entries.move_to_end(fingerprint)
            else:
                if tensor_fingerprint(data) != fingerprint:
                    raise DeltaResyncRequired(
                        f"received tensor for slot {slot!r} does not hash to "
                        "its declared fingerprint"
                    )
                # The cache must own its bytes: the inline transport hands
                # over the coordinator's live arrays by reference, and those
                # mutate in place on the optimiser step.  A private read-only
                # copy keeps every entry's content forever matching its
                # content-addressed key.
                array = np.array(data)
                array.flags.writeable = False
                self._entries[fingerprint] = array
                self._entries.move_to_end(fingerprint)
                while len(self._entries) > capacity:
                    self._entries.popitem(last=False)
            resolved[slot] = array
        if missing:
            raise DeltaResyncRequired(
                f"cache miss for slot(s) {sorted(missing)}; full resync required"
            )
        applied = state_fingerprint(
            (slot, fingerprint) for slot, fingerprint, _ in message["entries"]
        )
        if applied != message["state_fp"]:
            raise DeltaResyncRequired(
                "post-apply state fingerprint mismatch; full resync required"
            )
        return resolved


class DeltaEncoder:
    """Coordinator-side encoder for one worker: ships deltas, mirrors its cache.

    With ``delta_shipping=False`` every message is a full shipment (the
    measurement baseline the delta benchmark compares against); the wire
    format is identical either way.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CACHE_SLOTS,
        delta_shipping: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("delta cache capacity must be at least 1")
        self.capacity = capacity
        self.delta_shipping = delta_shipping
        self._mirror: "OrderedDict[str, None]" = OrderedDict()
        self._cold = True

    @property
    def mirror(self) -> tuple[str, ...]:
        """Fingerprints the worker's cache is believed to hold (LRU order)."""
        return tuple(self._mirror)

    def mark_cold(self) -> None:
        """Forget everything about the worker's cache; next message is full."""
        self._mirror.clear()
        self._cold = True

    def encode(
        self,
        slots: Mapping[str, np.ndarray],
        fingerprints: Mapping[str, str] | None = None,
    ) -> EncodedState:
        """Encode the ``{slot: array}`` state for this worker.

        ``fingerprints`` may carry pre-computed per-slot fingerprints (the
        coordinator hashes each step's tensors once, not once per worker).
        Entries are emitted in sorted slot order -- deterministic, so the
        mirror and the worker cache replay identical LRU sequences.
        """
        if fingerprints is None:
            fingerprints = {
                slot: tensor_fingerprint(array) for slot, array in slots.items()
            }
        full = self._cold or not self.delta_shipping
        entries = []
        shipped = 0
        total = 0
        for slot in sorted(slots):
            array = slots[slot]
            fingerprint = fingerprints[slot]
            total += array.nbytes
            if not full and fingerprint in self._mirror:
                entries.append((slot, fingerprint, None))
                self._mirror.move_to_end(fingerprint)
            else:
                entries.append((slot, fingerprint, array))
                shipped += array.nbytes
                self._mirror[fingerprint] = None
                self._mirror.move_to_end(fingerprint)
                while len(self._mirror) > self.capacity:
                    self._mirror.popitem(last=False)
        message = {
            "version": WIRE_VERSION,
            "kind": "full" if full else "delta",
            "entries": entries,
            "state_fp": state_fingerprint(
                (slot, fingerprints[slot]) for slot in slots
            ),
            "capacity": self.capacity,
        }
        if self.delta_shipping:
            self._cold = False
        else:
            # baseline mode never relies on the worker cache: stay cold so
            # every message re-baselines the receiver too
            self._mirror.clear()
            self._cold = True
        return EncodedState(
            message=message, shipped_bytes=shipped, total_bytes=total
        )
