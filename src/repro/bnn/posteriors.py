"""Mean-field Gaussian variational posterior over a weight tensor.

Each weight has two trainable scalars: the mean ``mu`` and a pre-activation
``rho`` mapped through a softplus to the standard deviation ``sigma``.  The
softplus parameterisation (from Blundell et al.) keeps ``sigma`` positive under
unconstrained gradient descent; the accelerator itself stores ``(mu, sigma)``
directly, which is why the weight-parameter buffer in the simulator carries two
values per weight.
"""

from __future__ import annotations

import math

import numpy as np

from ..nn.initializers import Initializer
from ..nn.layers import Parameter
from .grad_tape import active_tape

__all__ = ["GaussianPosterior", "softplus", "softplus_grad", "inverse_softplus"]


def softplus(rho: np.ndarray) -> np.ndarray:
    """Numerically-stable ``log(1 + exp(rho))``."""
    return np.logaddexp(0.0, rho)


def softplus_grad(rho: np.ndarray) -> np.ndarray:
    """Derivative of the softplus: the logistic sigmoid."""
    return 1.0 / (1.0 + np.exp(-rho))


def inverse_softplus(sigma: float) -> float:
    """Return ``rho`` such that ``softplus(rho) == sigma``."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    return float(math.log(math.expm1(sigma)))


class GaussianPosterior:
    """Trainable ``(mu, rho)`` pair describing ``q(w | theta) = N(mu, sigma^2)``.

    Parameters
    ----------
    shape:
        Shape of the weight tensor this posterior describes.
    mu_init:
        Initialiser for the means (typically He/Glorot like a DNN weight).
    initial_sigma:
        Starting standard deviation, applied uniformly through the softplus
        parameterisation.
    name:
        Prefix used for the two underlying :class:`Parameter` objects.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        mu_init: Initializer,
        initial_sigma: float,
        name: str,
        rng: np.random.Generator,
    ) -> None:
        if initial_sigma <= 0:
            raise ValueError("initial_sigma must be positive")
        self.shape = tuple(shape)
        self.mu = Parameter(f"{name}.mu", mu_init(self.shape, rng))
        rho_value = np.full(self.shape, inverse_softplus(initial_sigma), dtype=np.float64)
        self.rho = Parameter(f"{name}.rho", rho_value)

    # ------------------------------------------------------------------
    @property
    def sigma(self) -> np.ndarray:
        """Current standard deviation ``softplus(rho)``."""
        return softplus(self.rho.value)

    @property
    def n_weights(self) -> int:
        """Number of weights described by this posterior."""
        return int(np.prod(self.shape))

    def parameters(self) -> list[Parameter]:
        """The two trainable parameter tensors (mu, rho)."""
        return [self.mu, self.rho]

    # ------------------------------------------------------------------
    def log_prob(self, weights: np.ndarray) -> float:
        """Total log-density of ``weights`` under ``q(w | theta)``."""
        sigma = self.sigma
        diff = np.asarray(weights) - self.mu.value
        return float(
            np.sum(
                -0.5 * math.log(2.0 * math.pi)
                - np.log(sigma)
                - 0.5 * (diff / sigma) ** 2
            )
        )

    def accumulate_gradients(
        self,
        grad_weight: np.ndarray,
        epsilon: np.ndarray,
        kl_weight: float,
        prior_nll_grad: np.ndarray,
        include_entropy_term: bool = True,
    ) -> None:
        """Accumulate Bayes-by-Backprop gradients into ``mu.grad`` and ``rho.grad``.

        Parameters
        ----------
        grad_weight:
            Gradient of the data-fit (negative log-likelihood) term with
            respect to the sampled weight ``w`` -- what ordinary backprop of
            the layer produces.
        epsilon:
            The Gaussian random variables used to draw ``w = mu + eps * sigma``
            (retrieved from storage or via LFSR reversal).
        kl_weight:
            Weight ``beta`` applied to the complexity (prior + posterior)
            terms; usually ``1 / batches_per_epoch``.
        prior_nll_grad:
            Gradient of ``-log P(w)`` at the sampled weight, e.g.
            ``w / sigma_c^2`` for the Gaussian prior (the DPU's output).
        include_entropy_term:
            Keep the exact ``-1/sigma`` entropy contribution to the sigma
            gradient.  Disabling it reproduces the paper's simplified updater,
            which folds the posterior into the ``w``-gradient only.
        """
        if grad_weight.shape != self.shape or epsilon.shape != self.shape:
            raise ValueError("gradient / epsilon shape does not match the posterior")
        sigma = self.sigma
        total_w_grad = grad_weight + kl_weight * prior_nll_grad
        # d/d mu:   dL/dw * dw/dmu (+ the direct posterior term, which cancels)
        self.mu.grad += total_w_grad
        # d/d sigma: dL/dw * eps  (+ the -1/sigma entropy term of log q)
        sigma_grad = epsilon * total_w_grad
        if include_entropy_term:
            sigma_grad = sigma_grad - kl_weight / sigma
        # chain through sigma = softplus(rho)
        self.rho.grad += sigma_grad * softplus_grad(self.rho.value)

    def accumulate_sample_gradients(
        self,
        grad_weight: np.ndarray,
        epsilon: np.ndarray,
        kl_weight: float,
        prior_nll_grad: np.ndarray,
        include_entropy_term: bool = True,
    ) -> None:
        """Batched GC stage: :meth:`accumulate_gradients` for all ``S`` samples.

        ``grad_weight``, ``epsilon`` and ``prior_nll_grad`` carry a leading
        Monte-Carlo sample axis ``(S, *shape)``.  The per-sample arithmetic is
        identical to the scalar method -- the shared factors ``sigma`` and
        ``softplus_grad(rho)`` are simply computed once instead of once per
        sample -- and the final accumulation walks the sample axis in order,
        so ``mu.grad`` / ``rho.grad`` receive bit-for-bit the same sums as
        ``S`` sequential :meth:`accumulate_gradients` calls.
        """
        if (
            grad_weight.ndim != len(self.shape) + 1
            or grad_weight.shape[1:] != self.shape
        ):
            raise ValueError(
                f"sample gradients must be (S, *{self.shape}), "
                f"got {grad_weight.shape}"
            )
        if epsilon.shape != grad_weight.shape:
            raise ValueError("gradient / epsilon shape does not match the posterior")
        total_w_grad = grad_weight + kl_weight * prior_nll_grad
        sigma_grad = epsilon * total_w_grad
        if include_entropy_term:
            sigma_grad = sigma_grad - kl_weight / self.sigma
        rho_grad = sigma_grad * softplus_grad(self.rho.value)
        tape = active_tape()
        if tape is not None:
            # Distributed capture: hand the per-sample stacks to the tape so
            # the coordinator can accumulate them in canonical sample order
            # across shards (slice [s] is exactly what the loop below adds).
            tape.record(self.mu.name, total_w_grad)
            tape.record(self.rho.name, rho_grad)
            return
        # Per-sample accumulation in sample order: float addition is not
        # associative, and the sequential trainers add one sample at a time.
        for s in range(grad_weight.shape[0]):
            self.mu.grad += total_w_grad[s]
            self.rho.grad += rho_grad[s]

    def __repr__(self) -> str:
        return f"GaussianPosterior(shape={self.shape})"
