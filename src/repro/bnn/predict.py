"""Monte-Carlo prediction and uncertainty estimation for trained BNNs.

The whole point of paying for BNN training is the predictive distribution: at
inference time the network is sampled ``S`` times and the per-sample softmax
outputs are averaged.  The spread across samples is the epistemic-uncertainty
signal that safety-critical applications consume.

By default the ``S`` samples run through the batched execution engine
(:meth:`~repro.bnn.model.BayesianNetwork.forward_samples`): one pass over a
``(S, batch, ...)`` tensor, with the whole network's epsilon blocks generated
by a single generator-bank kernel call.  ``batched=False`` selects the
original per-sample loop; both paths produce bit-identical probabilities.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.checkpoint import StreamBank
from ..nn.functional import softmax, softmax_into
from ..nn.metrics import predictive_entropy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..core.sampler import BatchedWeightSampler
    from .model import BayesianNetwork

__all__ = ["PredictiveResult", "mc_predict", "mc_forward"]


@dataclass(frozen=True)
class PredictiveResult:
    """Outputs of Monte-Carlo prediction."""

    sample_probabilities: np.ndarray
    """Per-sample class probabilities, shape ``(S, batch, classes)``."""

    @property
    def mean_probabilities(self) -> np.ndarray:
        """Predictive distribution averaged over weight samples."""
        return self.sample_probabilities.mean(axis=0)

    @property
    def predictions(self) -> np.ndarray:
        """Class predicted by the averaged distribution."""
        return self.mean_probabilities.argmax(axis=1)

    @property
    def entropy(self) -> np.ndarray:
        """Total predictive uncertainty (entropy of the mean distribution)."""
        return predictive_entropy(self.mean_probabilities)

    @property
    def aleatoric_entropy(self) -> np.ndarray:
        """Expected per-sample entropy (data uncertainty).

        One axis-aware :func:`~repro.nn.metrics.predictive_entropy` call over
        the whole ``(S, batch, classes)`` tensor, averaged over the sample
        axis.
        """
        return predictive_entropy(self.sample_probabilities).mean(axis=0)

    @property
    def epistemic_entropy(self) -> np.ndarray:
        """Mutual information between prediction and weights (model uncertainty)."""
        return self.entropy - self.aleatoric_entropy


@contextmanager
def _evaluation_mode(model: "BayesianNetwork"):
    """Run the block in eval mode, restoring each layer's previous mode.

    Restore is per layer -- so deliberately frozen layers stay frozen --
    instead of clobbering eval mode with an unconditional switch back to
    training.
    """
    layer_modes = [layer.training for layer in model.layers]
    model.eval()
    try:
        yield
    finally:
        for layer, was_training in zip(model.layers, layer_modes):
            if was_training:
                layer.train()
            else:
                layer.eval()


def mc_forward(
    model: "BayesianNetwork",
    x: np.ndarray,
    sampler: "BatchedWeightSampler",
    out: np.ndarray | None = None,
) -> PredictiveResult:
    """Forward-only Monte-Carlo prediction through a caller-provided sampler.

    This is the batched core of :func:`mc_predict` with the epsilon source
    injected: any object honouring the forward half of the
    :class:`~repro.core.sampler.BatchedWeightSampler` protocol
    (``n_samples``, ``prefetch_forward``, ``sample``) works.  The serving tile
    executor passes a sampler that replays cached epsilon tensors, which is
    what lets pooled requests skip the generation kernel while staying
    bit-identical to a per-request :func:`mc_predict`.

    ``out``, when given, must be a float64 buffer shaped
    ``(n_samples, batch, classes)``; the softmax stages are computed in place
    in it (bit-identical to the allocating path, see
    :func:`~repro.nn.functional.softmax_into`) so a steady-state caller can
    reuse one scratch buffer across calls instead of allocating three
    temporaries per tile.  The returned :class:`PredictiveResult` then aliases
    ``out`` -- the caller owns the reuse discipline.
    """
    with _evaluation_mode(model):
        logits = model.forward_samples(x, sampler)
        if out is None:
            probabilities = softmax(logits)
        else:
            probabilities = softmax_into(logits, out)
        # prediction never runs backward; drop the S-times-batch caches
        model.release_sample_caches()
    return PredictiveResult(sample_probabilities=probabilities)


def mc_predict(
    model: "BayesianNetwork",
    x: np.ndarray,
    n_samples: int = 8,
    seed: int = 0,
    grng_stride: int = 256,
    lfsr_bits: int = 256,
    batched: bool = True,
    lockstep: bool = True,
    out: np.ndarray | None = None,
) -> PredictiveResult:
    """Draw ``n_samples`` weight samples and return the predictive distribution.

    Prediction uses its own stream bank (reversible policy, nothing stored);
    the epsilons drawn here never need to be retrieved, so the pending blocks
    are simply discarded afterwards.  ``batched=True`` (the default) executes
    all samples in one pass over the ``(S, batch, ...)`` tensor;
    ``batched=False`` is the per-sample escape hatch, with ``lockstep``
    selecting between the bank's speculative cross-sample prefetching and
    fully independent per-row generation.  All modes produce bit-identical
    probabilities.

    ``out`` optionally provides a reusable ``(n_samples, batch, classes)``
    output buffer (see :func:`mc_forward`); results are bit-identical with or
    without it.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be at least 1")
    bank = StreamBank(
        n_samples=n_samples,
        policy="reversible",
        seed=seed,
        lfsr_bits=lfsr_bits,
        grng_stride=grng_stride,
        lockstep=lockstep,
    )
    if batched:
        return mc_forward(model, x, bank.batched_sampler(), out=out)
    with _evaluation_mode(model):
        outputs = []
        for sample_index in range(n_samples):
            sampler = bank.sampler(sample_index)
            logits = model.forward_sample(x, sampler)
            outputs.append(softmax(logits))
        if out is None:
            probabilities = np.stack(outputs)
        else:
            probabilities = np.stack(outputs, out=out)
    return PredictiveResult(sample_probabilities=probabilities)
