"""ELBO assembly: the loss of Eq. 1 and its analytic complexity term.

The per-sample training loss is

``L(w, theta) = log q(w | theta) - log P(w) - log P(y | x, w)``

summed over the ``S`` Monte-Carlo samples.  The trainer backpropagates the
likelihood term through the network and adds the prior/posterior gradients in
closed form (see :meth:`repro.bnn.posteriors.GaussianPosterior.accumulate_gradients`).
For *reporting*, the complexity part ``log q - log P`` is better captured by
the analytic KL divergence between the variational posterior and a Gaussian
prior, which has no Monte-Carlo noise; both forms are provided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .posteriors import GaussianPosterior
from .priors import GaussianPrior, Prior

__all__ = ["gaussian_kl_divergence", "sampled_complexity", "ELBOReport"]


def gaussian_kl_divergence(posterior: GaussianPosterior, prior: GaussianPrior) -> float:
    """Closed-form ``KL(q(w|theta) || P(w))`` for Gaussian posterior and prior."""
    sigma = posterior.sigma
    mu = posterior.mu.value
    prior_var = prior.sigma**2
    kl = (
        np.log(prior.sigma / sigma)
        + (sigma**2 + mu**2) / (2.0 * prior_var)
        - 0.5
    )
    return float(np.sum(kl))


def sampled_complexity(
    posterior: GaussianPosterior, prior: Prior, weights: np.ndarray
) -> float:
    """Single-sample estimate of ``log q(w|theta) - log P(w)`` at ``weights``."""
    return posterior.log_prob(weights) - prior.log_prob(weights)


@dataclass(frozen=True)
class ELBOReport:
    """Loss breakdown of one training step (averaged over Monte-Carlo samples)."""

    nll: float
    complexity: float
    kl_weight: float

    @property
    def total(self) -> float:
        """The scalar training loss: data fit plus weighted complexity."""
        return self.nll + self.kl_weight * self.complexity

    def __str__(self) -> str:
        return (
            f"loss={self.total:.4f} (nll={self.nll:.4f}, "
            f"kl={self.complexity:.4f} @ beta={self.kl_weight:.2e})"
        )
