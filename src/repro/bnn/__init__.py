"""Bayesian neural-network layers, losses and trainers (Bayes by Backprop)."""

from .bayes_layers import BayesConv2D, BayesDense, BayesianLayer
from .elbo import ELBOReport, gaussian_kl_divergence, sampled_complexity
from .model import BayesianNetwork
from .posteriors import GaussianPosterior, inverse_softplus, softplus, softplus_grad
from .predict import PredictiveResult, mc_forward, mc_predict
from .priors import GaussianPrior, Prior, ScaleMixturePrior
from .grad_tape import SampleGradientTape
from .serialization import (
    CheckpointMismatchError,
    load_checkpoint,
    load_parameters,
    save_checkpoint,
    save_parameters,
    state_fingerprint,
    tensor_fingerprint,
)
from .trainer import (
    BaselineBNNTrainer,
    BNNTrainer,
    ExecutionBackend,
    ShiftBNNTrainer,
    TrainerConfig,
    TrainingHistory,
)

__all__ = [
    "BayesianLayer",
    "BayesDense",
    "BayesConv2D",
    "BayesianNetwork",
    "GaussianPosterior",
    "softplus",
    "softplus_grad",
    "inverse_softplus",
    "Prior",
    "GaussianPrior",
    "ScaleMixturePrior",
    "ELBOReport",
    "gaussian_kl_divergence",
    "sampled_complexity",
    "PredictiveResult",
    "mc_predict",
    "mc_forward",
    "save_parameters",
    "load_parameters",
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointMismatchError",
    "tensor_fingerprint",
    "state_fingerprint",
    "SampleGradientTape",
    "TrainerConfig",
    "TrainingHistory",
    "ExecutionBackend",
    "BNNTrainer",
    "BaselineBNNTrainer",
    "ShiftBNNTrainer",
]
