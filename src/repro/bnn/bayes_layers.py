"""Bayesian (weight-sampling) layers.

A Bayesian layer owns a :class:`~repro.bnn.posteriors.GaussianPosterior` per
weight tensor and performs the three stages of Fig. 1(a):

* **FW** -- ``forward_sample`` draws ``w = mu + eps * sigma`` through a
  :class:`~repro.core.sampler.WeightSampler` and runs the ordinary layer
  arithmetic;
* **BW** -- ``backward_sample`` asks the sampler to *re-sample* the identical
  weights (process 2 in the paper: weight reconstruction), propagates the
  error to the previous layer, and
* **GC** -- accumulates the gradients of ``mu`` and ``sigma`` from the
  likelihood gradient, the prior gradient and the retrieved epsilons
  (process 3).

Whether the epsilons come from storage (baseline) or from LFSR reversal
(Shift-BNN) is entirely the sampler's business; the layer code is identical,
which is exactly the paper's "no change to the training algorithm" claim.

Each stage also exists in a *batched* form (``forward_samples`` /
``backward_samples``) that executes all ``S`` Monte-Carlo samples in one
call: activations travel folded as ``(S * batch, ...)``, weights are drawn as
``(S, *weight_shape)`` tensors from a
:class:`~repro.core.sampler.BatchedWeightSampler`, and the GC stage sums over
the sample axis in sample order.  The batched pipeline is bit-identical to
looping the per-sample stages (shared factors are computed once, every
per-sample matmul sees byte-identical operands, and float accumulations keep
the sequential order) -- it changes wall-clock time, never the trajectory.

The hot tensor primitives the batched stages lean on
(:func:`~repro.nn.functional.sample_matmul`, :func:`~repro.nn.functional.im2col`)
route through the pluggable kernel-backend dispatch layer in
:mod:`repro.core.backend`; every registered backend is bit-identical to the
NumPy reference oracle by the conformance gate, so backend selection can never
move a training trajectory or a served probability.
"""

from __future__ import annotations

import numpy as np

from ..core.sampler import BatchedWeightSampler, WeightSampler
from ..nn import functional as F
from ..nn.initializers import HeNormal, Initializer
from ..nn.layers import Layer, Parameter
from ..nn.quantization import QuantizationConfig
from ..nn.tensor_utils import check_2d, check_4d, conv_output_size
from .grad_tape import active_tape
from .posteriors import GaussianPosterior
from .priors import Prior

__all__ = ["BayesianLayer", "BayesDense", "BayesConv2D"]


class BayesianLayer(Layer):
    """Common machinery of Bayesian layers (posterior handling, gradients)."""

    def __init__(
        self,
        weight_shape: tuple[int, ...],
        mu_init: Initializer | None,
        initial_sigma: float,
        bias_size: int | None,
        name: str | None,
        rng: np.random.Generator | None,
    ) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        mu_init = mu_init or HeNormal()
        self.weight_posterior = GaussianPosterior(
            weight_shape, mu_init, initial_sigma, f"{self.name}.weight", rng
        )
        self.bias = (
            Parameter(f"{self.name}.bias", np.zeros(bias_size, dtype=np.float64))
            if bias_size
            else None
        )
        self.quantization: QuantizationConfig = QuantizationConfig.full_precision()
        self._cache: dict[str, object] = {}

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        params = list(self.weight_posterior.parameters())
        if self.bias is not None:
            params.append(self.bias)
        return params

    @property
    def n_bayesian_weights(self) -> int:
        """Number of weights that consume one Gaussian random variable each."""
        return self.weight_posterior.n_weights

    def sample_weights(self, sampler: WeightSampler) -> np.ndarray:
        """FW-stage weight sampling (also caches epsilon-free bookkeeping)."""
        sampled = sampler.sample(self.weight_posterior.mu.value, self.weight_posterior.sigma)
        return self.quantization.quantize_weights(sampled.weights)

    def resample_weights(self, sampler: WeightSampler) -> tuple[np.ndarray, np.ndarray]:
        """BW-stage weight reconstruction; returns (weights, epsilon)."""
        sampled = sampler.resample(
            self.weight_posterior.mu.value, self.weight_posterior.sigma
        )
        return self.quantization.quantize_weights(sampled.weights), sampled.epsilon

    def sample_weights_batch(self, sampler: BatchedWeightSampler) -> np.ndarray:
        """FW-stage weight sampling for all ``S`` samples: ``(S, *shape)``."""
        sampled = sampler.sample(
            self.weight_posterior.mu.value, self.weight_posterior.sigma
        )
        return self.quantization.quantize_weights(sampled.weights)

    def resample_weights_batch(
        self, sampler: BatchedWeightSampler
    ) -> tuple[np.ndarray, np.ndarray]:
        """BW-stage batch reconstruction; returns ``(S, *shape)`` weights and epsilons."""
        sampled = sampler.resample(
            self.weight_posterior.mu.value, self.weight_posterior.sigma
        )
        return self.quantization.quantize_weights(sampled.weights), sampled.epsilon

    def accumulate_parameter_gradients(
        self,
        grad_weight: np.ndarray,
        epsilon: np.ndarray,
        kl_weight: float,
        prior: Prior,
        sampled_weights: np.ndarray,
        include_entropy_term: bool = True,
    ) -> None:
        """GC-stage update of the variational parameters' gradients."""
        if kl_weight:
            prior_grad = prior.nll_grad(sampled_weights)
        else:
            prior_grad = np.zeros_like(sampled_weights)
        self.weight_posterior.accumulate_gradients(
            grad_weight=grad_weight,
            epsilon=epsilon,
            kl_weight=kl_weight,
            prior_nll_grad=prior_grad,
            include_entropy_term=include_entropy_term,
        )

    def accumulate_sample_parameter_gradients(
        self,
        grad_weight: np.ndarray,
        epsilon: np.ndarray,
        kl_weight: float,
        prior: Prior,
        sampled_weights: np.ndarray,
        include_entropy_term: bool = True,
    ) -> None:
        """Batched GC stage: all inputs carry a leading ``(S, ...)`` sample axis.

        The prior gradient is element-wise, so one call over the stacked
        weights equals the per-sample calls; the posterior then accumulates
        the samples in order (see
        :meth:`~repro.bnn.posteriors.GaussianPosterior.accumulate_sample_gradients`).
        """
        if kl_weight:
            prior_grad = prior.nll_grad(sampled_weights)
        else:
            prior_grad = np.zeros_like(sampled_weights)
        self.weight_posterior.accumulate_sample_gradients(
            grad_weight=grad_weight,
            epsilon=epsilon,
            kl_weight=kl_weight,
            prior_nll_grad=prior_grad,
            include_entropy_term=include_entropy_term,
        )

    # the plain Layer protocol is not meaningful for Bayesian layers
    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - guard
        raise RuntimeError(
            f"{self.name}: Bayesian layers need a sampler; use forward_sample()"
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:  # pragma: no cover - guard
        raise RuntimeError(
            f"{self.name}: Bayesian layers need a sampler; use backward_sample()"
        )

    # subclasses implement these
    def forward_sample(self, x: np.ndarray, sampler: WeightSampler) -> np.ndarray:
        raise NotImplementedError

    def backward_sample(
        self,
        grad_out: np.ndarray,
        sampler: WeightSampler,
        kl_weight: float,
        prior: Prior,
        include_entropy_term: bool = True,
    ) -> np.ndarray:
        raise NotImplementedError

    def forward_samples(
        self, x: np.ndarray, sampler: BatchedWeightSampler, n_samples: int
    ) -> np.ndarray:
        """FW stage for all ``S`` samples; ``x`` is folded ``(S * batch, ...)``."""
        raise NotImplementedError

    def backward_samples(
        self,
        grad_out: np.ndarray,
        sampler: BatchedWeightSampler,
        n_samples: int,
        kl_weight: float,
        prior: Prior,
        include_entropy_term: bool = True,
    ) -> np.ndarray:
        """BW + GC stages for all ``S`` samples; gradients folded ``(S * batch, ...)``."""
        raise NotImplementedError

    @staticmethod
    def _samples_per_batch(x: np.ndarray, n_samples: int, name: str) -> int:
        if n_samples < 1:
            raise ValueError("n_samples must be at least 1")
        if x.shape[0] % n_samples:
            raise ValueError(
                f"{name}: folded batch of {x.shape[0]} does not divide into "
                f"{n_samples} Monte-Carlo samples"
            )
        return x.shape[0] // n_samples


class BayesDense(BayesianLayer):
    """Bayesian fully-connected layer with a mean-field Gaussian posterior."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        initial_sigma: float = 0.05,
        mu_init: Initializer | None = None,
        bias: bool = True,
        name: str | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("feature counts must be positive")
        self.in_features = in_features
        self.out_features = out_features
        super().__init__(
            weight_shape=(in_features, out_features),
            mu_init=mu_init,
            initial_sigma=initial_sigma,
            bias_size=out_features if bias else None,
            name=name,
            rng=rng,
        )

    def forward_sample(self, x: np.ndarray, sampler: WeightSampler) -> np.ndarray:
        check_2d(x)
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} features, got {x.shape[1]}"
            )
        weights = self.sample_weights(sampler)
        self._cache = {"input": x}
        out = x @ weights
        if self.bias is not None:
            out = out + self.bias.value
        return self.quantization.quantize_activations(out)

    def backward_sample(
        self,
        grad_out: np.ndarray,
        sampler: WeightSampler,
        kl_weight: float,
        prior: Prior,
        include_entropy_term: bool = True,
    ) -> np.ndarray:
        if "input" not in self._cache:
            raise RuntimeError(f"{self.name}: backward_sample before forward_sample")
        x: np.ndarray = self._cache["input"]  # type: ignore[assignment]
        weights, epsilon = self.resample_weights(sampler)
        grad_weight = x.T @ grad_out
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        grad_input = grad_out @ weights.T
        self.accumulate_parameter_gradients(
            grad_weight=grad_weight,
            epsilon=epsilon,
            kl_weight=kl_weight,
            prior=prior,
            sampled_weights=weights,
            include_entropy_term=include_entropy_term,
        )
        return grad_input

    def forward_samples(
        self, x: np.ndarray, sampler: BatchedWeightSampler, n_samples: int
    ) -> np.ndarray:
        check_2d(x)
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} features, got {x.shape[1]}"
            )
        batch = self._samples_per_batch(x, n_samples, self.name)
        weights = self.sample_weights_batch(sampler)
        self._cache = {"input": x, "n_samples": n_samples}
        out = F.sample_matmul(x.reshape(n_samples, batch, self.in_features), weights)
        if self.bias is not None:
            out = out + self.bias.value
        return self.quantization.quantize_activations(out).reshape(
            x.shape[0], self.out_features
        )

    def backward_samples(
        self,
        grad_out: np.ndarray,
        sampler: BatchedWeightSampler,
        n_samples: int,
        kl_weight: float,
        prior: Prior,
        include_entropy_term: bool = True,
    ) -> np.ndarray:
        if self._cache.get("n_samples") != n_samples:
            raise RuntimeError(f"{self.name}: backward_samples before forward_samples")
        x: np.ndarray = self._cache["input"]  # type: ignore[assignment]
        batch = x.shape[0] // n_samples
        weights, epsilon = self.resample_weights_batch(sampler)
        x3 = x.reshape(n_samples, batch, self.in_features)
        grad3 = grad_out.reshape(n_samples, batch, self.out_features)
        grad_weight = F.sample_matmul(x3.transpose(0, 2, 1), grad3)
        if self.bias is not None:
            tape = active_tape()
            if tape is not None:
                # per-sample contributions captured for cross-shard reduction
                tape.record(
                    self.bias.name,
                    np.stack([grad3[s].sum(axis=0) for s in range(n_samples)]),
                )
            else:
                # per-sample sums accumulated in sample order (sequential parity)
                for s in range(n_samples):
                    self.bias.grad += grad3[s].sum(axis=0)
        grad_input = F.sample_matmul(grad3, weights.transpose(0, 2, 1))
        self.accumulate_sample_parameter_gradients(
            grad_weight=grad_weight,
            epsilon=epsilon,
            kl_weight=kl_weight,
            prior=prior,
            sampled_weights=weights,
            include_entropy_term=include_entropy_term,
        )
        return grad_input.reshape(x.shape[0], self.in_features)


class BayesConv2D(BayesianLayer):
    """Bayesian 2-D convolution with a mean-field Gaussian posterior per weight."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        initial_sigma: float = 0.05,
        mu_init: Initializer | None = None,
        bias: bool = True,
        name: str | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        super().__init__(
            weight_shape=(out_channels, in_channels, kernel_size, kernel_size),
            mu_init=mu_init,
            initial_sigma=initial_sigma,
            bias_size=out_channels if bias else None,
            name=name,
            rng=rng,
        )

    def output_shape(self, input_shape: tuple[int, int, int]) -> tuple[int, int, int]:
        """Spatial output shape ``(C, H, W)`` for a given ``(C, H, W)`` input."""
        _, height, width = input_shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def forward_sample(self, x: np.ndarray, sampler: WeightSampler) -> np.ndarray:
        check_4d(x)
        weights = self.sample_weights(sampler)
        bias_value = self.bias.value if self.bias is not None else None
        out, cols = F.conv2d_forward(x, weights, bias_value, self.stride, self.padding)
        self._cache = {"cols": cols, "x_shape": x.shape}
        return self.quantization.quantize_activations(out)

    def backward_sample(
        self,
        grad_out: np.ndarray,
        sampler: WeightSampler,
        kl_weight: float,
        prior: Prior,
        include_entropy_term: bool = True,
    ) -> np.ndarray:
        if "cols" not in self._cache:
            raise RuntimeError(f"{self.name}: backward_sample before forward_sample")
        cols: np.ndarray = self._cache["cols"]  # type: ignore[assignment]
        x_shape: tuple[int, int, int, int] = self._cache["x_shape"]  # type: ignore[assignment]
        weights, epsilon = self.resample_weights(sampler)
        grad_input, grad_weight, grad_bias = F.conv2d_backward(
            grad_out, cols, x_shape, weights, self.stride, self.padding
        )
        if self.bias is not None:
            self.bias.grad += grad_bias
        self.accumulate_parameter_gradients(
            grad_weight=grad_weight,
            epsilon=epsilon,
            kl_weight=kl_weight,
            prior=prior,
            sampled_weights=weights,
            include_entropy_term=include_entropy_term,
        )
        return grad_input

    def forward_samples(
        self, x: np.ndarray, sampler: BatchedWeightSampler, n_samples: int
    ) -> np.ndarray:
        check_4d(x)
        self._samples_per_batch(x, n_samples, self.name)
        weights = self.sample_weights_batch(sampler)
        bias_value = self.bias.value if self.bias is not None else None
        out, cols = F.conv2d_forward_samples(
            x, weights, bias_value, self.stride, self.padding, n_samples
        )
        self._cache = {"cols": cols, "x_shape": x.shape, "n_samples": n_samples}
        return self.quantization.quantize_activations(out)

    def backward_samples(
        self,
        grad_out: np.ndarray,
        sampler: BatchedWeightSampler,
        n_samples: int,
        kl_weight: float,
        prior: Prior,
        include_entropy_term: bool = True,
    ) -> np.ndarray:
        if self._cache.get("n_samples") != n_samples:
            raise RuntimeError(f"{self.name}: backward_samples before forward_samples")
        cols: list[np.ndarray] = self._cache["cols"]  # type: ignore[assignment]
        x_shape: tuple[int, int, int, int] = self._cache["x_shape"]  # type: ignore[assignment]
        weights, epsilon = self.resample_weights_batch(sampler)
        grad_input, grad_weight, grad_bias = F.conv2d_backward_samples(
            grad_out, cols, x_shape, weights, self.stride, self.padding, n_samples
        )
        if self.bias is not None:
            tape = active_tape()
            if tape is not None:
                # per-sample contributions captured for cross-shard reduction
                tape.record(self.bias.name, np.asarray(grad_bias))
            else:
                # per-sample sums accumulated in sample order (sequential parity)
                for s in range(n_samples):
                    self.bias.grad += grad_bias[s]
        self.accumulate_sample_parameter_gradients(
            grad_weight=grad_weight,
            epsilon=epsilon,
            kl_weight=kl_weight,
            prior=prior,
            sampled_weights=weights,
            include_entropy_term=include_entropy_term,
        )
        return grad_input
