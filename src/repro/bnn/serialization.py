"""Saving and loading Bayesian networks and full training state.

Three formats live here:

* **Parameter archives** (:func:`save_parameters` / :func:`load_parameters`)
  store just the trainable parameters -- the right format for a finished
  model that will only be served.
* **Replica archives** (:func:`save_replica` / :func:`load_replica`) store a
  complete :class:`~repro.models.zoo.ReplicaSpec` -- model spec, build seed,
  captured parameter bytes, quantisation and backend selection -- so a
  serving registry can persist deployable versions and restore them
  fingerprint-identical after a restart.
* **Training checkpoints** (:func:`save_checkpoint` / :func:`load_checkpoint`)
  capture everything a run's trajectory depends on: the parameters, the
  optimiser's slot tensors and step counter, every Monte-Carlo sample's GRNG
  register/sum-register state, the per-sample epsilon-traffic counters, and
  the trainer's step counter and history.  Restoring a checkpoint and
  continuing (``trainer.fit(..., resume=True)``) follows **bit for bit** the
  trajectory the uninterrupted run would have followed -- for the local
  pipelines and for the distributed sample/row-sharded backend alike, because
  the distributed coordinator keeps its canonical state in exactly the
  structures checkpointed here.

Epsilon *values* are never stored -- they are regenerated from the saved
register states, which is the whole point of the paper.  Both loaders verify
a manifest against the target and raise :class:`CheckpointMismatchError`
early on any structural mismatch.

This module also hosts the **content fingerprints**
(:func:`tensor_fingerprint` / :func:`state_fingerprint`) that the
distributed delta-shipping transport (:mod:`repro.distrib.delta`) uses to
address tensors and verify applied state.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Tuple

import numpy as np

from ..core.checkpoint import LfsrSnapshot
from .model import BayesianNetwork

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .trainer import BNNTrainer

__all__ = [
    "save_parameters",
    "load_parameters",
    "save_checkpoint",
    "load_checkpoint",
    "save_replica",
    "load_replica",
    "tensor_fingerprint",
    "state_fingerprint",
    "CheckpointMismatchError",
]

_MANIFEST_KEY = "__manifest__"
_FORMAT_VERSION = 1
_CHECKPOINT_VERSION = 2
_REPLICA_VERSION = 1
_HISTORY_FIELDS = (
    "losses",
    "nlls",
    "complexities",
    "train_accuracies",
    "epoch_losses",
    "epoch_accuracies",
    "validation_accuracies",
)


class CheckpointMismatchError(RuntimeError):
    """Raised when a checkpoint does not match the target network's structure."""


# ----------------------------------------------------------------------
# content fingerprints (delta-shipping addresses)
# ----------------------------------------------------------------------
def tensor_fingerprint(array: np.ndarray) -> str:
    """Content fingerprint of one tensor: SHA-256 over dtype, shape and bytes.

    This is the address under which the distributed delta-shipping layer
    (:mod:`repro.distrib.delta`) caches tensors: two arrays share a
    fingerprint exactly when they are byte-identical with the same dtype
    and shape, so shipping a fingerprint instead of the bytes can never
    change what the receiver computes.
    """
    array = np.ascontiguousarray(array)
    if array.dtype.hasobject:
        raise TypeError("object arrays have no content fingerprint")
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode("ascii"))
    digest.update(repr(array.shape).encode("ascii"))
    digest.update(array.tobytes())
    return digest.hexdigest()


def state_fingerprint(entries: Iterable[Tuple[str, str]]) -> str:
    """Combined fingerprint of a named tensor set.

    ``entries`` is an iterable of ``(slot_name, tensor_fingerprint)`` pairs;
    the result is order-independent (pairs are sorted) so coordinator and
    worker agree regardless of encoding order.  The delta protocol ships
    this as the expected post-apply fingerprint: a worker whose resolved
    state hashes differently requests a full resync instead of computing
    wrong bits.
    """
    digest = hashlib.sha256()
    for slot, fingerprint in sorted(entries):
        digest.update(slot.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(fingerprint.encode("ascii"))
        digest.update(b"\x00")
    return digest.hexdigest()


def _parameter_names(model: BayesianNetwork) -> list[str]:
    names = [parameter.name for parameter in model.parameters()]
    if len(set(names)) != len(names):
        raise ValueError(
            "parameter names are not unique; give every layer an explicit name "
            "before saving"
        )
    return names


def save_parameters(model: BayesianNetwork, path: str | Path) -> Path:
    """Write every trainable parameter of ``model`` to ``path`` (.npz).

    Returns the path written.  The archive also records a manifest (model
    name, parameter names and shapes) so loading can detect mismatches early.
    """
    path = _npz_path(path)
    names = _parameter_names(model)
    arrays = {name: parameter.value for name, parameter in zip(names, model.parameters())}
    manifest = {
        "format_version": _FORMAT_VERSION,
        "model_name": model.name,
        "parameters": {
            name: list(parameter.value.shape)
            for name, parameter in zip(names, model.parameters())
        },
    }
    arrays[_MANIFEST_KEY] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_parameters(model: BayesianNetwork, path: str | Path, strict: bool = True) -> None:
    """Load parameters from ``path`` into ``model`` (in place).

    Parameters
    ----------
    model:
        The network to populate; its structure must match the checkpoint.
    path:
        Archive produced by :func:`save_parameters`.
    strict:
        When ``True`` (default) the checkpoint must contain exactly the
        model's parameters; when ``False`` missing parameters are left at
        their current values and extra entries are ignored.
    """
    manifest, stored = _read_archive(path)
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise CheckpointMismatchError(
            f"unsupported checkpoint format version {manifest.get('format_version')!r}"
        )
    names = _parameter_names(model)
    parameters = dict(zip(names, model.parameters()))
    missing = [name for name in parameters if name not in stored]
    unexpected = [name for name in stored if name not in parameters]
    if strict and (missing or unexpected):
        raise CheckpointMismatchError(
            f"checkpoint does not match the model: missing={missing}, unexpected={unexpected}"
        )
    for name, parameter in parameters.items():
        if name not in stored:
            continue
        value = stored[name]
        if value.shape != parameter.value.shape:
            raise CheckpointMismatchError(
                f"shape mismatch for {name!r}: checkpoint {value.shape}, "
                f"model {parameter.value.shape}"
            )
        parameter.value[...] = value


# ----------------------------------------------------------------------
# full training checkpoints
# ----------------------------------------------------------------------
def _npz_path(path: str | Path) -> Path:
    """Append ``.npz`` unless already present.

    Appends rather than ``with_suffix`` so multi-dot names like
    ``ckpt.step3`` map to distinct files (``ckpt.step3.npz``) instead of
    collapsing onto one another.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_checkpoint(trainer: "BNNTrainer", path: str | Path) -> Path:
    """Write a full training checkpoint of ``trainer`` to ``path`` (.npz).

    Must be called at a step boundary (which is the only time a trainer is
    observable from outside anyway): between steps every epsilon stream has
    consumed its blocks, so the GRNG registers plus the traffic counters are
    the bank's *complete* state.  The archive carries the parameters, the
    optimiser slots and step counter, one
    :class:`~repro.core.checkpoint.LfsrSnapshot` per Monte-Carlo sample
    (register state and sum register, hex-encoded in the manifest), the
    per-sample :class:`~repro.core.streams.StreamUsage` counters, and the
    per-step history records.
    """
    path = _npz_path(path)
    names = _parameter_names(trainer.model)
    arrays: dict[str, np.ndarray] = {
        f"param/{name}": parameter.value
        for name, parameter in zip(names, trainer.model.parameters())
    }
    optimizer_state = trainer.optimizer.state_dict()
    for slot, slot_arrays in optimizer_state["slots"].items():
        for name, array in zip(names, slot_arrays):
            arrays[f"opt/{slot}/{name}"] = array
    history = trainer.history
    for field in _HISTORY_FIELDS:
        arrays[f"history/{field}"] = np.asarray(getattr(history, field), dtype=np.float64)
    config = trainer.config
    manifest = {
        "format_version": _CHECKPOINT_VERSION,
        "kind": "training-checkpoint",
        "model_name": trainer.model.name,
        "parameters": {
            name: list(parameter.value.shape)
            for name, parameter in zip(names, trainer.model.parameters())
        },
        "step_count": trainer.step_count,
        "optimizer": {
            "type": optimizer_state["type"],
            "slots": sorted(optimizer_state["slots"]),
            "step_count": optimizer_state["step_count"],
        },
        "trainer": {
            "n_samples": config.n_samples,
            "policy": trainer.bank.policy,
            "lfsr_bits": config.lfsr_bits,
            "grng_stride": config.grng_stride,
            "seed": config.seed,
            "quantization_bits": config.quantization_bits,
        },
        "grng": [
            {
                "n_bits": snapshot.n_bits,
                "taps": list(snapshot.taps),
                "state": hex(snapshot.state),
                "sum_register": snapshot.sum_register,
            }
            for snapshot in trainer.bank.snapshots()
        ],
        "stream_usage": trainer.bank.usage_state_dicts(),
    }
    arrays[_MANIFEST_KEY] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def _read_archive(path: str | Path) -> tuple[dict, dict[str, np.ndarray]]:
    path = Path(path)
    if not path.exists():
        path = _npz_path(path)
    with np.load(path, allow_pickle=False) as archive:
        stored = {key: archive[key] for key in archive.files}
    manifest_raw = stored.pop(_MANIFEST_KEY, None)
    if manifest_raw is None:
        raise CheckpointMismatchError(f"{path} is not a Shift-BNN checkpoint (no manifest)")
    manifest = json.loads(bytes(manifest_raw.tolist()).decode("utf-8"))
    return manifest, stored


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise CheckpointMismatchError(message)


def load_checkpoint(trainer: "BNNTrainer", path: str | Path) -> dict:
    """Restore a full training checkpoint into ``trainer`` (in place).

    The trainer must be *structurally* compatible with the run that saved
    the checkpoint: same model parameters, same ``n_samples`` / stream
    policy / LFSR geometry, same optimiser type.  Any mismatch raises
    :class:`CheckpointMismatchError` before anything is modified.  On
    success the trainer's parameters, optimiser state, generator registers,
    traffic counters and history are exactly the saved run's, so continuing
    (e.g. ``fit(..., resume=True)`` with the same schedule) reproduces the
    uninterrupted trajectory bit for bit.  Returns the checkpoint manifest.
    """
    manifest, stored = _read_archive(path)
    _check(
        manifest.get("format_version") == _CHECKPOINT_VERSION
        and manifest.get("kind") == "training-checkpoint",
        f"not a training checkpoint (format {manifest.get('format_version')!r}, "
        f"kind {manifest.get('kind')!r}); parameter archives load with "
        "load_parameters()",
    )
    names = _parameter_names(trainer.model)
    parameters = dict(zip(names, trainer.model.parameters()))
    saved_params = manifest.get("parameters", {})
    _check(
        set(saved_params) == set(parameters),
        "checkpoint does not match the model: "
        f"missing={sorted(set(parameters) - set(saved_params))}, "
        f"unexpected={sorted(set(saved_params) - set(parameters))}",
    )
    for name, parameter in parameters.items():
        _check(
            tuple(saved_params[name]) == parameter.value.shape,
            f"shape mismatch for {name!r}: checkpoint "
            f"{tuple(saved_params[name])}, model {parameter.value.shape}",
        )
    config = trainer.config
    saved_trainer = manifest.get("trainer", {})
    for key, current in (
        ("n_samples", config.n_samples),
        ("policy", trainer.bank.policy),
        ("lfsr_bits", config.lfsr_bits),
        ("grng_stride", config.grng_stride),
        ("seed", config.seed),
        ("quantization_bits", config.quantization_bits),
    ):
        _check(
            saved_trainer.get(key) == current,
            f"trainer {key} mismatch: checkpoint {saved_trainer.get(key)!r}, "
            f"trainer {current!r}",
        )
    optimizer_state = trainer.optimizer.state_dict()
    saved_optimizer = manifest.get("optimizer", {})
    _check(
        saved_optimizer.get("type") == optimizer_state["type"],
        f"optimizer mismatch: checkpoint {saved_optimizer.get('type')!r}, "
        f"trainer {optimizer_state['type']!r}",
    )
    grng_records = manifest.get("grng", [])
    _check(
        len(grng_records) == config.n_samples,
        f"checkpoint carries {len(grng_records)} generator states for "
        f"{config.n_samples} samples",
    )
    # ---- all checks passed; restore ----
    for name, parameter in parameters.items():
        parameter.value[...] = stored[f"param/{name}"]
    slots = {
        slot: [stored[f"opt/{slot}/{name}"] for name in names]
        for slot in saved_optimizer.get("slots", [])
    }
    trainer.optimizer.load_state_dict(
        {
            "type": saved_optimizer["type"],
            "slots": slots,
            "step_count": saved_optimizer.get("step_count", 0),
        }
    )
    snapshots = [
        LfsrSnapshot(
            n_bits=record["n_bits"],
            taps=tuple(record["taps"]),
            state=int(record["state"], 16),
            sum_register=int(record["sum_register"]),
        )
        for record in grng_records
    ]
    trainer.bank.load_generator_states(snapshots)
    trainer.bank.load_usage_state_dicts(manifest.get("stream_usage", []))
    history = trainer.history
    for field in _HISTORY_FIELDS:
        values = stored.get(f"history/{field}")
        records = getattr(history, field)
        records.clear()
        if values is not None:
            records.extend(float(value) for value in values)
    return manifest


# ----------------------------------------------------------------------
# replica archives (serving-registry persistence)
# ----------------------------------------------------------------------
def _format_to_config(fmt) -> list[int] | None:
    return None if fmt is None else [fmt.integer_bits, fmt.fraction_bits]


def _quantization_to_config(quantization) -> dict | None:
    """JSON-safe encoding of a ``QuantizationConfig`` (or ``None``)."""
    if quantization is None:
        return None
    from ..nn.quantization import QuantizationConfig

    if not isinstance(quantization, QuantizationConfig):
        raise TypeError(
            "replica archives can persist QuantizationConfig quantisation "
            f"only, got {type(quantization).__name__}"
        )
    return {
        "weight_format": _format_to_config(quantization.weight_format),
        "activation_format": _format_to_config(quantization.activation_format),
        "gradient_format": _format_to_config(quantization.gradient_format),
    }


def _quantization_from_config(config: dict | None):
    if config is None:
        return None
    from ..nn.quantization import FixedPointFormat, QuantizationConfig

    def fmt(pair):
        return None if pair is None else FixedPointFormat(int(pair[0]), int(pair[1]))

    return QuantizationConfig(
        weight_format=fmt(config.get("weight_format")),
        activation_format=fmt(config.get("activation_format")),
        gradient_format=fmt(config.get("gradient_format")),
    )


def save_replica(replica, path: str | Path) -> Path:
    """Write a :class:`~repro.models.zoo.ReplicaSpec` to ``path`` (.npz).

    The archive carries everything :meth:`ReplicaSpec.fingerprint` hashes
    (spec, build seed, captured parameter bytes, quantisation), plus the
    capturing process's backend selection, so
    ``load_replica(save_replica(r)).fingerprint() == r.fingerprint()`` --
    the property the persistent serving registry verifies on restore.
    Parameter bytes round-trip exactly (``.npz`` stores raw array buffers).
    """
    # local import: models.zoo imports this package
    from ..models.zoo import ReplicaSpec

    if not isinstance(replica, ReplicaSpec):
        raise TypeError(f"expected a ReplicaSpec, got {type(replica).__name__}")
    path = _npz_path(path)
    arrays: dict[str, np.ndarray] = {}
    state_names: list[str] | None = None
    if replica.state is not None:
        state_names = sorted(replica.state)
        for name in state_names:
            arrays[f"state/{name}"] = np.asarray(replica.state[name])
    manifest = {
        "format_version": _REPLICA_VERSION,
        "kind": "replica-spec",
        "spec": replica.spec.to_config(),
        "build_seed": replica.build_seed,
        "state_names": state_names,
        "quantization": _quantization_to_config(replica.quantization),
        "backend_selection": (
            None
            if replica.backend_selection is None
            else [list(pair) for pair in replica.backend_selection]
        ),
    }
    arrays[_MANIFEST_KEY] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_replica(path: str | Path):
    """Rebuild the :class:`~repro.models.zoo.ReplicaSpec` saved at ``path``.

    The restored replica is fingerprint-identical to the one saved (same
    spec repr, same build seed, byte-identical parameter state, equal
    quantisation config); :class:`CheckpointMismatchError` is raised for
    archives of any other kind.
    """
    from ..models.specs import ModelSpec
    from ..models.zoo import ReplicaSpec

    manifest, stored = _read_archive(path)
    _check(
        manifest.get("kind") == "replica-spec"
        and manifest.get("format_version") == _REPLICA_VERSION,
        f"not a replica archive (format {manifest.get('format_version')!r}, "
        f"kind {manifest.get('kind')!r})",
    )
    state_names = manifest.get("state_names")
    state: dict[str, np.ndarray] | None = None
    if state_names is not None:
        missing = [name for name in state_names if f"state/{name}" not in stored]
        _check(not missing, f"replica archive is missing state arrays {missing}")
        state = {name: stored[f"state/{name}"] for name in state_names}
    selection = manifest.get("backend_selection")
    return ReplicaSpec(
        spec=ModelSpec.from_config(manifest["spec"]),
        build_seed=int(manifest["build_seed"]),
        state=state,
        quantization=_quantization_from_config(manifest.get("quantization")),
        backend_selection=(
            None
            if selection is None
            else tuple((str(kernel), str(backend)) for kernel, backend in selection)
        ),
    )
