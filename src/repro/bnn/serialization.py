"""Saving and loading Bayesian network parameters.

A trained BNN is defined by its variational parameters (every layer's ``mu``
and ``rho``) plus the deterministic biases.  This module stores them in a
single ``.npz`` archive keyed by parameter name, together with a small
manifest used to verify that the checkpoint matches the network it is loaded
into.  Epsilons are never part of a checkpoint -- they are regenerated (or
resampled) at run time, which is the whole point of the paper.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .model import BayesianNetwork

__all__ = ["save_parameters", "load_parameters", "CheckpointMismatchError"]

_MANIFEST_KEY = "__manifest__"
_FORMAT_VERSION = 1


class CheckpointMismatchError(RuntimeError):
    """Raised when a checkpoint does not match the target network's structure."""


def _parameter_names(model: BayesianNetwork) -> list[str]:
    names = [parameter.name for parameter in model.parameters()]
    if len(set(names)) != len(names):
        raise ValueError(
            "parameter names are not unique; give every layer an explicit name "
            "before saving"
        )
    return names


def save_parameters(model: BayesianNetwork, path: str | Path) -> Path:
    """Write every trainable parameter of ``model`` to ``path`` (.npz).

    Returns the path written.  The archive also records a manifest (model
    name, parameter names and shapes) so loading can detect mismatches early.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    names = _parameter_names(model)
    arrays = {name: parameter.value for name, parameter in zip(names, model.parameters())}
    manifest = {
        "format_version": _FORMAT_VERSION,
        "model_name": model.name,
        "parameters": {
            name: list(parameter.value.shape)
            for name, parameter in zip(names, model.parameters())
        },
    }
    arrays[_MANIFEST_KEY] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_parameters(model: BayesianNetwork, path: str | Path, strict: bool = True) -> None:
    """Load parameters from ``path`` into ``model`` (in place).

    Parameters
    ----------
    model:
        The network to populate; its structure must match the checkpoint.
    path:
        Archive produced by :func:`save_parameters`.
    strict:
        When ``True`` (default) the checkpoint must contain exactly the
        model's parameters; when ``False`` missing parameters are left at
        their current values and extra entries are ignored.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path, allow_pickle=False) as archive:
        stored = {key: archive[key] for key in archive.files}
    manifest_raw = stored.pop(_MANIFEST_KEY, None)
    if manifest_raw is None:
        raise CheckpointMismatchError(f"{path} is not a Shift-BNN checkpoint (no manifest)")
    manifest = json.loads(bytes(manifest_raw.tolist()).decode("utf-8"))
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise CheckpointMismatchError(
            f"unsupported checkpoint format version {manifest.get('format_version')!r}"
        )
    names = _parameter_names(model)
    parameters = dict(zip(names, model.parameters()))
    missing = [name for name in parameters if name not in stored]
    unexpected = [name for name in stored if name not in parameters]
    if strict and (missing or unexpected):
        raise CheckpointMismatchError(
            f"checkpoint does not match the model: missing={missing}, unexpected={unexpected}"
        )
    for name, parameter in parameters.items():
        if name not in stored:
            continue
        value = stored[name]
        if value.shape != parameter.value.shape:
            raise CheckpointMismatchError(
                f"shape mismatch for {name!r}: checkpoint {value.shape}, "
                f"model {parameter.value.shape}"
            )
        parameter.value[...] = value
