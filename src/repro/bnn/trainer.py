"""BNN trainers: the stored-epsilon baseline and the Shift-BNN policy.

Both trainers run the identical Bayes-by-Backprop algorithm of Fig. 1(a); the
only difference is the epsilon-management policy of the underlying
:class:`~repro.core.checkpoint.StreamBank`:

* :class:`BaselineBNNTrainer` stores every epsilon between the forward and
  backward stages (what a conventional accelerator or GPU must do);
* :class:`ShiftBNNTrainer` stores none of them and regenerates them by LFSR
  reversal.

Because the regenerated values are bit-identical to the stored ones, the two
trainers produce *exactly* the same parameter trajectory when started from the
same model and seed -- the property behind Fig. 9 of the paper.  Each trainer
also reports how many epsilon bytes its policy moved to and from backing
storage, which feeds the characterisation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol, Sequence

import numpy as np

from ..core.checkpoint import StreamBank, StreamPolicy
from ..core.lfsr import MAXIMAL_TAPS
from ..nn.losses import Loss, SoftmaxCrossEntropy, loss_probabilities
from ..nn.metrics import accuracy
from ..nn.optim import SGD, Adam, Optimizer
from ..nn.quantization import QuantizationConfig
from .elbo import ELBOReport
from .model import BayesianNetwork
from .predict import mc_predict

__all__ = [
    "TrainerConfig",
    "TrainingHistory",
    "ExecutionBackend",
    "BNNTrainer",
    "BaselineBNNTrainer",
    "ShiftBNNTrainer",
]


class ExecutionBackend(Protocol):
    """Pluggable executor of one ``train_step``'s FW / BW / GC stages.

    ``run_step`` must leave the trainer's model holding the step's
    accumulated (un-scaled) parameter gradients and the trainer's bank
    holding the post-step generator states and traffic counters, and return
    ``(total_nll, correct_probs)`` exactly as the built-in pipelines do --
    the trainer then applies the optimiser update.  The distributed
    sample/row-sharded engine (:class:`repro.distrib.DistributedBackend`) is the
    canonical implementation; the contract is that any backend follows the
    single-process parameter trajectory bit for bit.
    """

    def run_step(
        self,
        trainer: "BNNTrainer",
        x: np.ndarray,
        y: np.ndarray,
        kl_weight: float,
    ) -> tuple[float, np.ndarray]: ...

    def close(self) -> None: ...


@dataclass(frozen=True)
class TrainerConfig:
    """Hyper-parameters shared by the baseline and Shift-BNN trainers.

    Attributes
    ----------
    n_samples:
        Number of Monte-Carlo weight samples ``S`` per training example.
    learning_rate, optimizer, momentum:
        Optimiser selection (``"adam"`` or ``"sgd"``).
    kl_weight:
        Weight of the complexity (prior/posterior) term per batch.  ``None``
        selects ``1 / total_training_examples``, the per-example ELBO scaling
        that matches the per-example mean used for the likelihood term (the
        same convention as Blundell et al.'s ``1/M`` once the likelihood is a
        sum over the minibatch).
    quantization_bits:
        8, 16 or 32 -- the datapath word length of Table 1.  ``None`` means
        full precision (same as 32).
    lfsr_bits:
        Width of each GRNG's LFSR.
    grng_stride:
        LFSR shifts per epsilon.  The default uses non-overlapping patterns
        (independent variables); set to 1 for the hardware-faithful sliding
        window.
    include_entropy_term:
        Keep the exact ``-1/sigma`` term of the sigma gradient (Blundell's
        estimator).  Set to ``False`` to mirror the accelerator's simplified
        updater.
    batched:
        Execute the ``S`` Monte-Carlo samples of each step through the
        batched ``(S, batch, ...)`` pipeline (default).  ``False`` selects
        the per-sample loop; both produce bit-identical parameter
        trajectories, only wall-clock time differs.
    lockstep:
        With ``batched=False``, whether the per-sample samplers share the
        bank's speculative cross-sample prefetching (default) or generate
        fully independently per row (the pre-lockstep baseline).  Results
        are identical in every mode.
    seed:
        Seed for the stream bank (epsilons).  Model initialisation has its own
        rng, owned by whoever builds the model.
    """

    n_samples: int = 4
    learning_rate: float = 1e-3
    optimizer: str = "adam"
    momentum: float = 0.9
    kl_weight: float | None = None
    quantization_bits: int | None = None
    lfsr_bits: int = 256
    grng_stride: int = 256
    include_entropy_term: bool = True
    batched: bool = True
    lockstep: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_samples < 1:
            raise ValueError("n_samples must be at least 1")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError("optimizer must be 'adam' or 'sgd'")
        if self.quantization_bits not in (None, 8, 16, 32):
            raise ValueError("quantization_bits must be one of None, 8, 16, 32")
        # Reject bad GRNG settings here, where the mistake is visible, instead
        # of letting them explode deep inside the LFSR core mid-training.
        if self.lfsr_bits not in MAXIMAL_TAPS:
            widths = ", ".join(str(width) for width in sorted(MAXIMAL_TAPS))
            raise ValueError(
                f"lfsr_bits must be a tabulated maximal-length width "
                f"({widths}), got {self.lfsr_bits}"
            )
        if self.grng_stride < 1:
            raise ValueError(
                f"grng_stride must be at least 1 shift per variable, "
                f"got {self.grng_stride}"
            )


@dataclass
class TrainingHistory:
    """Per-iteration and per-epoch records of a training run."""

    losses: list[float] = field(default_factory=list)
    nlls: list[float] = field(default_factory=list)
    complexities: list[float] = field(default_factory=list)
    train_accuracies: list[float] = field(default_factory=list)
    epoch_losses: list[float] = field(default_factory=list)
    epoch_accuracies: list[float] = field(default_factory=list)
    validation_accuracies: list[float] = field(default_factory=list)

    def record_step(self, report: ELBOReport, batch_accuracy: float) -> None:
        self.losses.append(report.total)
        self.nlls.append(report.nll)
        self.complexities.append(report.complexity)
        self.train_accuracies.append(batch_accuracy)

    @property
    def steps(self) -> int:
        """Number of optimisation steps recorded."""
        return len(self.losses)


class BNNTrainer:
    """Bayes-by-Backprop trainer over a configurable epsilon-stream policy."""

    policy: StreamPolicy = "stored"

    def __init__(
        self,
        model: BayesianNetwork,
        config: TrainerConfig | None = None,
        loss: Loss | None = None,
        policy: StreamPolicy | None = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        self.model = model
        self.config = config or TrainerConfig()
        self.loss = loss or SoftmaxCrossEntropy()
        self.backend = backend
        if policy is not None:
            self.policy = policy
        self.bank = StreamBank(
            n_samples=self.config.n_samples,
            policy=self.policy,
            seed=self.config.seed,
            lfsr_bits=self.config.lfsr_bits,
            grng_stride=self.config.grng_stride,
            lockstep=self.config.lockstep,
        )
        if self.config.quantization_bits in (8, 16):
            quantization = QuantizationConfig.from_word_length(self.config.quantization_bits)
        else:
            quantization = QuantizationConfig.full_precision()
        self.model.quantization = quantization
        self._quantization = quantization
        self.optimizer = self._build_optimizer()
        self.history = TrainingHistory()

    @property
    def step_count(self) -> int:
        """Number of optimisation steps this trainer has applied."""
        return self.history.steps

    def close(self) -> None:
        """Release the execution backend (worker processes), if any."""
        if self.backend is not None:
            self.backend.close()

    def __enter__(self) -> "BNNTrainer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _build_optimizer(self) -> Optimizer:
        params = self.model.parameters()
        if self.config.optimizer == "adam":
            return Adam(params, learning_rate=self.config.learning_rate)
        return SGD(
            params,
            learning_rate=self.config.learning_rate,
            momentum=self.config.momentum,
        )

    # ------------------------------------------------------------------
    # single step
    # ------------------------------------------------------------------
    def train_step(
        self,
        x: np.ndarray,
        y: np.ndarray,
        kl_weight: float = 1.0,
        batched: bool | None = None,
    ) -> ELBOReport:
        """One optimisation step on a single minibatch.

        Runs the FW / BW / GC stages for each of the ``S`` Monte-Carlo samples,
        averages the gradients and applies one optimiser update.  ``batched``
        overrides the config's execution mode for this step; the batched and
        per-sample pipelines follow bit-identical parameter trajectories.
        """
        if self.backend is not None and batched is None:
            # pluggable execution backend (e.g. the distributed sample/row-
            # sharded engine); an explicit ``batched=`` forces the built-in
            # pipelines,
            # which is how equivalence tests compare the two in one process
            total_nll, correct_probs = self.backend.run_step(self, x, y, kl_weight)
        elif self.config.batched if batched is None else batched:
            total_nll, correct_probs = self._run_samples_batched(x, y, kl_weight)
        else:
            total_nll, correct_probs = self._run_samples_sequential(x, y, kl_weight)
        return self._apply_step(total_nll, correct_probs, y, kl_weight)

    def _run_samples_sequential(
        self, x: np.ndarray, y: np.ndarray, kl_weight: float
    ) -> tuple[float, np.ndarray]:
        """FW / BW / GC for each sample in turn through per-sample samplers."""
        config = self.config
        model = self.model
        model.train()
        model.zero_grad()
        total_nll = 0.0
        correct_probs = np.zeros((x.shape[0], 0))
        for sample_index in range(config.n_samples):
            sampler = self.bank.sampler(sample_index)
            logits = model.forward_sample(x, sampler)
            if correct_probs.shape[1] == 0:
                correct_probs = np.zeros((x.shape[0], logits.shape[1]))
            total_nll += self.loss.forward(logits, y)
            # the loss's forward already computed the softmax -- reuse it
            correct_probs += self._loss_probabilities(logits)
            grad_logits = self.loss.backward()
            model.backward_sample(
                grad_logits,
                sampler,
                kl_weight=kl_weight,
                include_entropy_term=config.include_entropy_term,
            )
        return total_nll, correct_probs

    def _run_samples_batched(
        self, x: np.ndarray, y: np.ndarray, kl_weight: float
    ) -> tuple[float, np.ndarray]:
        """FW / BW / GC for all samples at once through the batched pipeline.

        The per-sample loss reduction stays a loop over the (tiny) logit
        slices so that scalar losses and gradient scaling accumulate in
        exactly the sequential order -- everything upstream and downstream of
        it is vectorised over the sample axis.
        """
        config = self.config
        model = self.model
        model.train()
        model.zero_grad()
        sampler = self.bank.batched_sampler()
        logits = model.forward_samples(x, sampler)
        total_nll = 0.0
        correct_probs = np.zeros(logits.shape[1:])
        grad_logits = np.empty_like(logits)
        for sample_index in range(config.n_samples):
            total_nll += self.loss.forward(logits[sample_index], y)
            correct_probs += self._loss_probabilities(logits[sample_index])
            grad_logits[sample_index] = self.loss.backward()
        model.backward_samples(
            grad_logits,
            sampler,
            kl_weight=kl_weight,
            include_entropy_term=config.include_entropy_term,
        )
        return total_nll, correct_probs

    def _loss_probabilities(self, logits: np.ndarray) -> np.ndarray:
        """Predictive probabilities of the most recent loss forward."""
        return loss_probabilities(self.loss, logits)

    def _apply_step(
        self,
        total_nll: float,
        correct_probs: np.ndarray,
        y: np.ndarray,
        kl_weight: float,
    ) -> ELBOReport:
        """Average the accumulated gradients and apply one optimiser update."""
        model = self.model
        self.bank.finish_iteration()
        scale = 1.0 / self.config.n_samples
        for param in model.parameters():
            param.grad *= scale
            if self._quantization.gradient_format is not None:
                param.grad[...] = self._quantization.quantize_gradients(param.grad)
        self.optimizer.step()
        mean_nll = total_nll * scale
        report = ELBOReport(
            nll=mean_nll, complexity=model.complexity(), kl_weight=kl_weight
        )
        batch_accuracy = accuracy(correct_probs * scale, y)
        self.history.record_step(report, batch_accuracy)
        return report

    # ------------------------------------------------------------------
    # full runs
    # ------------------------------------------------------------------
    def fit(
        self,
        batches: Sequence[tuple[np.ndarray, np.ndarray]] | Iterable[tuple[np.ndarray, np.ndarray]],
        epochs: int = 1,
        validation: tuple[np.ndarray, np.ndarray] | None = None,
        verbose: bool = False,
        resume: bool = False,
        checkpoint_callback: Callable[["BNNTrainer", int], None] | None = None,
        checkpoint_every_n_steps: int | None = None,
        checkpoint_path: str | None = None,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes over ``batches``.

        ``batches`` is a sequence of ``(x, y)`` minibatches; when the trainer's
        ``kl_weight`` is unset it defaults to ``1 / total_training_examples``
        (per-example ELBO scaling, consistent with the per-example mean NLL).

        With ``resume=True`` the first ``self.step_count`` steps of the
        schedule are skipped: after :func:`~repro.bnn.serialization.load_checkpoint`
        (same batches, same epochs) the run continues from the recorded step
        onto the exact trajectory of the uninterrupted run.  Epoch aggregates
        are computed from the per-step history records, so an epoch that
        straddles the checkpoint still reports the full-epoch statistics.

        ``checkpoint_callback`` (``callback(trainer, step_index)``), when
        given, is invoked after every completed optimisation step -- the hook
        the checkpoint layer and the distributed demo use to persist mid-run
        state at step granularity.

        ``checkpoint_every_n_steps`` + ``checkpoint_path`` turn on periodic
        **auto-snapshots**: every N completed steps (and after the final
        step) the trainer saves a full v2 checkpoint via
        :func:`~repro.bnn.serialization.save_checkpoint` to
        ``checkpoint_path``, overwriting the previous snapshot.  Combined
        with ``resume=True`` after
        :func:`~repro.bnn.serialization.load_checkpoint`, an interrupted fit
        (worker crash, preemption, power loss) restarts from the latest
        snapshot onto the exact uninterrupted trajectory -- the checkpoint
        captures parameters, optimiser slots, generator states and history,
        so the resumed bits match the uninterrupted run's.  Works with any
        execution backend (the distributed coordinator's bookkeeping bank is
        exactly what the checkpoint layer saves).
        """
        if (checkpoint_every_n_steps is None) != (checkpoint_path is None):
            raise ValueError(
                "checkpoint_every_n_steps and checkpoint_path come as a pair"
            )
        if checkpoint_every_n_steps is not None:
            if checkpoint_every_n_steps < 1:
                raise ValueError("checkpoint_every_n_steps must be at least 1")
            from .serialization import save_checkpoint

            user_callback = checkpoint_callback
            total = None  # bound below, once the schedule length is known

            def checkpoint_callback(trainer: "BNNTrainer", step: int) -> None:
                if (step + 1) % checkpoint_every_n_steps == 0 or step + 1 == total:
                    save_checkpoint(trainer, checkpoint_path)
                if user_callback is not None:
                    user_callback(trainer, step)

        batch_list = list(batches)
        if not batch_list:
            raise ValueError("fit() needs at least one minibatch")
        kl_weight = self.config.kl_weight
        if kl_weight is None:
            total_examples = sum(x.shape[0] for x, _ in batch_list)
            kl_weight = 1.0 / max(total_examples, 1)
        steps_per_epoch = len(batch_list)
        total = steps_per_epoch * epochs  # read by the auto-snapshot hook
        if resume:
            # schedule-absolute bookkeeping: the history up to the checkpoint
            # belongs to this same schedule, so skip what is already recorded
            start_step, base_step, base_epoch = self.step_count, 0, 0
        else:
            # a fresh schedule on top of whatever the trainer did before
            start_step = 0
            base_step = self.step_count
            base_epoch = len(self.history.epoch_losses)
        global_step = 0
        for epoch in range(epochs):
            for x, y in batch_list:
                if global_step >= start_step:
                    self.train_step(x, y, kl_weight=kl_weight)
                    if checkpoint_callback is not None:
                        checkpoint_callback(self, global_step)
                global_step += 1
            # Epoch aggregates come from the per-step records, which a
            # checkpoint preserves: a resumed run reports the same epoch
            # statistics as the uninterrupted one.
            begin = base_step + epoch * steps_per_epoch
            end = begin + steps_per_epoch
            epoch_slot = base_epoch + epoch
            if len(self.history.epoch_losses) <= epoch_slot:
                self.history.epoch_losses.append(
                    float(np.mean(self.history.losses[begin:end]))
                )
                self.history.epoch_accuracies.append(
                    float(np.mean(self.history.train_accuracies[begin:end]))
                )
            if (
                validation is not None
                and len(self.history.validation_accuracies) <= epoch_slot
            ):
                val_acc = self.evaluate(*validation)
                self.history.validation_accuracies.append(val_acc)
            if verbose:
                message = (
                    f"[{type(self).__name__}] epoch {epoch + 1}/{epochs} "
                    f"loss={self.history.epoch_losses[-1]:.4f} "
                    f"acc={self.history.epoch_accuracies[-1]:.3f}"
                )
                if validation is not None:
                    message += f" val_acc={self.history.validation_accuracies[-1]:.3f}"
                print(message)
        return self.history

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, n_samples: int | None = None
    ) -> float:
        """Monte-Carlo predictive accuracy on held-out data."""
        result = mc_predict(
            self.model,
            x,
            n_samples=n_samples or self.config.n_samples,
            seed=self.config.seed + 7919,
            grng_stride=self.config.grng_stride,
            lfsr_bits=self.config.lfsr_bits,
            batched=self.config.batched,
            lockstep=self.config.lockstep,
        )
        return accuracy(result.mean_probabilities, y)

    # ------------------------------------------------------------------
    # traffic accounting
    # ------------------------------------------------------------------
    def epsilon_offchip_bytes(self) -> int:
        """Bytes of epsilon traffic to/from backing storage under this policy."""
        return self.bank.total_offchip_epsilon_bytes()

    def epsilon_footprint_bytes(self) -> int:
        """Peak memory footprint attributable to epsilons under this policy."""
        return self.bank.total_epsilon_footprint_bytes()


class BaselineBNNTrainer(BNNTrainer):
    """Vanilla BNN training: epsilons are stored between FW and BW stages."""

    policy: StreamPolicy = "stored"


class ShiftBNNTrainer(BNNTrainer):
    """Shift-BNN training: epsilons are regenerated by reversed LFSR shifting."""

    policy: StreamPolicy = "reversible"
