"""Bayesian network container mixing Bayesian and deterministic layers."""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..core.sampler import WeightSampler
from ..nn.layers import Layer, Parameter
from ..nn.quantization import QuantizationConfig
from .bayes_layers import BayesianLayer
from .elbo import gaussian_kl_divergence
from .priors import GaussianPrior, Prior

__all__ = ["BayesianNetwork"]


class BayesianNetwork:
    """An ordered chain of layers, some Bayesian, some deterministic.

    The network exposes per-sample forward/backward passes: a single
    Monte-Carlo sample's forward pass draws one weight sample per Bayesian
    layer from the provided :class:`WeightSampler`, and the matching backward
    pass re-samples the identical weights through the same sampler (whose
    stream either stored the epsilons or regenerates them by LFSR reversal).
    """

    def __init__(
        self,
        layers: Iterable[Layer],
        prior: Prior | None = None,
        name: str = "bnn",
    ) -> None:
        self.layers = list(layers)
        if not self.layers:
            raise ValueError("a BayesianNetwork needs at least one layer")
        if not any(isinstance(layer, BayesianLayer) for layer in self.layers):
            raise ValueError("a BayesianNetwork needs at least one Bayesian layer")
        self.prior = prior or GaussianPrior(sigma=0.5)
        self.name = name
        self._quantization = QuantizationConfig.full_precision()

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @property
    def quantization(self) -> QuantizationConfig:
        """Datapath quantisation applied by every Bayesian layer."""
        return self._quantization

    @quantization.setter
    def quantization(self, config: QuantizationConfig) -> None:
        self._quantization = config
        for layer in self.bayesian_layers():
            layer.quantization = config

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def bayesian_layers(self) -> list[BayesianLayer]:
        """The Bayesian layers, in forward order."""
        return [layer for layer in self.layers if isinstance(layer, BayesianLayer)]

    def parameters(self) -> list[Parameter]:
        """All trainable parameters (mu, rho, biases, deterministic weights)."""
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def zero_grad(self) -> None:
        """Clear every parameter gradient."""
        for param in self.parameters():
            param.zero_grad()

    @property
    def n_bayesian_weights(self) -> int:
        """Total number of weights that consume one epsilon per sample."""
        return sum(layer.n_bayesian_weights for layer in self.bayesian_layers())

    @property
    def parameter_count(self) -> int:
        """Total number of trainable scalars (mu, rho, biases, ...)."""
        return sum(param.size for param in self.parameters())

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    # ------------------------------------------------------------------
    # per-sample execution
    # ------------------------------------------------------------------
    def forward_sample(self, x: np.ndarray, sampler: WeightSampler) -> np.ndarray:
        """Forward stage for one Monte-Carlo sample."""
        out = x
        for layer in self.layers:
            if isinstance(layer, BayesianLayer):
                out = layer.forward_sample(out, sampler)
            else:
                out = layer.forward(out)
        return out

    def backward_sample(
        self,
        grad_out: np.ndarray,
        sampler: WeightSampler,
        kl_weight: float,
        include_entropy_term: bool = True,
    ) -> np.ndarray:
        """Backward + gradient-calculation stages for one Monte-Carlo sample.

        Layers are walked in reverse order; Bayesian layers reconstruct their
        weight sample through ``sampler`` which must be the one used by the
        matching :meth:`forward_sample` call.
        """
        grad = grad_out
        for layer in reversed(self.layers):
            if isinstance(layer, BayesianLayer):
                grad = layer.backward_sample(
                    grad,
                    sampler,
                    kl_weight=kl_weight,
                    prior=self.prior,
                    include_entropy_term=include_entropy_term,
                )
            else:
                grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------------
    # loss helpers
    # ------------------------------------------------------------------
    def complexity(self) -> float:
        """Analytic KL divergence between the posterior and a Gaussian prior.

        Falls back to zero for non-Gaussian priors (the trainer then relies on
        the sampled estimate for reporting only; gradients are unaffected).
        """
        if not isinstance(self.prior, GaussianPrior):
            return 0.0
        return sum(
            gaussian_kl_divergence(layer.weight_posterior, self.prior)
            for layer in self.bayesian_layers()
        )

    @property
    def training(self) -> bool:
        """Whether the network is in training mode (true if any layer is)."""
        return any(layer.training for layer in self.layers)

    def train(self) -> None:
        """Put every layer in training mode."""
        for layer in self.layers:
            layer.train()

    def eval(self) -> None:
        """Put every layer in evaluation mode."""
        for layer in self.layers:
            layer.eval()

    def summary(self) -> str:
        """Human-readable per-layer summary."""
        lines = [
            f"BayesianNetwork '{self.name}': {self.parameter_count} parameters, "
            f"{self.n_bayesian_weights} Bayesian weights"
        ]
        for index, layer in enumerate(self.layers):
            kind = "bayes" if isinstance(layer, BayesianLayer) else "det"
            lines.append(
                f"  [{index:2d}] {layer.name:<24s} ({kind}) params={layer.parameter_count}"
            )
        return "\n".join(lines)
