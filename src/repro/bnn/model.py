"""Bayesian network container mixing Bayesian and deterministic layers.

Two execution modes are offered:

* the per-sample mode (``forward_sample`` / ``backward_sample``) runs one
  Monte-Carlo sample at a time through a per-sample
  :class:`~repro.core.sampler.WeightSampler`;
* the batched mode (``forward_samples`` / ``backward_samples``) runs all
  ``S`` samples in one pass through a
  :class:`~repro.core.sampler.BatchedWeightSampler`.  Activations travel
  folded as ``(S * batch, ...)`` -- deterministic layers simply broadcast
  over the folded axis -- while Bayesian layers draw ``(S, *shape)`` weight
  tensors.  The batched pipeline prefetches the whole forward pass's epsilon
  blocks in a single generator-bank kernel call (the per-layer block sizes
  are the network's static schedule) and is bit-identical to the per-sample
  mode: same values, same parameter trajectory, same stream state.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..core.sampler import BatchedWeightSampler, WeightSampler
from ..nn.layers import Layer, Parameter
from ..nn.quantization import QuantizationConfig
from .bayes_layers import BayesianLayer
from .elbo import gaussian_kl_divergence
from .grad_tape import active_tape
from .priors import GaussianPrior, Prior

__all__ = ["BayesianNetwork"]


class BayesianNetwork:
    """An ordered chain of layers, some Bayesian, some deterministic.

    The network exposes per-sample forward/backward passes: a single
    Monte-Carlo sample's forward pass draws one weight sample per Bayesian
    layer from the provided :class:`WeightSampler`, and the matching backward
    pass re-samples the identical weights through the same sampler (whose
    stream either stored the epsilons or regenerates them by LFSR reversal).
    """

    def __init__(
        self,
        layers: Iterable[Layer],
        prior: Prior | None = None,
        name: str = "bnn",
    ) -> None:
        self.layers = list(layers)
        if not self.layers:
            raise ValueError("a BayesianNetwork needs at least one layer")
        if not any(isinstance(layer, BayesianLayer) for layer in self.layers):
            raise ValueError("a BayesianNetwork needs at least one Bayesian layer")
        self.prior = prior or GaussianPrior(sigma=0.5)
        self.name = name
        self._quantization = QuantizationConfig.full_precision()

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @property
    def quantization(self) -> QuantizationConfig:
        """Datapath quantisation applied by every Bayesian layer."""
        return self._quantization

    @quantization.setter
    def quantization(self, config: QuantizationConfig) -> None:
        self._quantization = config
        for layer in self.bayesian_layers():
            layer.quantization = config

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def bayesian_layers(self) -> list[BayesianLayer]:
        """The Bayesian layers, in forward order."""
        return [layer for layer in self.layers if isinstance(layer, BayesianLayer)]

    def parameters(self) -> list[Parameter]:
        """All trainable parameters (mu, rho, biases, deterministic weights)."""
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def zero_grad(self) -> None:
        """Clear every parameter gradient."""
        for param in self.parameters():
            param.zero_grad()

    @property
    def n_bayesian_weights(self) -> int:
        """Total number of weights that consume one epsilon per sample."""
        return sum(layer.n_bayesian_weights for layer in self.bayesian_layers())

    @property
    def parameter_count(self) -> int:
        """Total number of trainable scalars (mu, rho, biases, ...)."""
        return sum(param.size for param in self.parameters())

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    # ------------------------------------------------------------------
    # per-sample execution
    # ------------------------------------------------------------------
    def forward_sample(self, x: np.ndarray, sampler: WeightSampler) -> np.ndarray:
        """Forward stage for one Monte-Carlo sample."""
        out = x
        for layer in self.layers:
            if isinstance(layer, BayesianLayer):
                out = layer.forward_sample(out, sampler)
            else:
                out = layer.forward(out)
        return out

    def backward_sample(
        self,
        grad_out: np.ndarray,
        sampler: WeightSampler,
        kl_weight: float,
        include_entropy_term: bool = True,
    ) -> np.ndarray:
        """Backward + gradient-calculation stages for one Monte-Carlo sample.

        Layers are walked in reverse order; Bayesian layers reconstruct their
        weight sample through ``sampler`` which must be the one used by the
        matching :meth:`forward_sample` call.
        """
        grad = grad_out
        for layer in reversed(self.layers):
            if isinstance(layer, BayesianLayer):
                grad = layer.backward_sample(
                    grad,
                    sampler,
                    kl_weight=kl_weight,
                    prior=self.prior,
                    include_entropy_term=include_entropy_term,
                )
            else:
                grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------------
    # batched execution (all S Monte-Carlo samples per pass)
    # ------------------------------------------------------------------
    def forward_samples(
        self, x: np.ndarray, sampler: BatchedWeightSampler
    ) -> np.ndarray:
        """Forward stage for all ``S`` Monte-Carlo samples at once.

        ``x`` is one minibatch shared by every sample; the result has shape
        ``(S, batch, ...)`` with slice ``[i]`` bit-identical to
        ``forward_sample(x, bank.sampler(i))``.
        """
        n_samples = sampler.n_samples
        sampler.prefetch_forward(
            [layer.n_bayesian_weights for layer in self.bayesian_layers()]
        )
        folded = np.empty((n_samples * x.shape[0],) + x.shape[1:], dtype=x.dtype)
        folded.reshape((n_samples,) + x.shape)[:] = x
        out = folded
        self._det_layer_inputs: dict[int, np.ndarray] = {}
        for index, layer in enumerate(self.layers):
            if isinstance(layer, BayesianLayer):
                out = layer.forward_samples(out, sampler, n_samples)
            else:
                if layer.parameters():
                    # Trainable deterministic layer: remember the folded input
                    # so the backward pass can rebuild per-sample caches and
                    # accumulate its parameter gradients one sample at a time
                    # (a single folded contraction would round differently
                    # from S sequential backward_sample calls).
                    self._det_layer_inputs[index] = out
                out = layer.forward(out)
        return out.reshape((n_samples, x.shape[0]) + out.shape[1:])

    def backward_samples(
        self,
        grad_out: np.ndarray,
        sampler: BatchedWeightSampler,
        kl_weight: float,
        include_entropy_term: bool = True,
    ) -> np.ndarray:
        """Backward + gradient stages for all ``S`` samples at once.

        ``grad_out`` is ``(S, batch, ...)`` (one output gradient per sample,
        as returned by the loss for each slice of :meth:`forward_samples`).
        Parameter gradients accumulate over the sample axis in sample order,
        matching ``S`` sequential :meth:`backward_sample` calls bit for bit.
        """
        n_samples = sampler.n_samples
        if grad_out.shape[0] != n_samples:
            raise ValueError(
                f"grad_out carries {grad_out.shape[0]} samples, "
                f"sampler serves {n_samples}"
            )
        batch = grad_out.shape[1]
        grad = grad_out.reshape((n_samples * batch,) + grad_out.shape[2:])
        det_inputs = getattr(self, "_det_layer_inputs", {})
        for index in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[index]
            if isinstance(layer, BayesianLayer):
                grad = layer.backward_samples(
                    grad,
                    sampler,
                    n_samples,
                    kl_weight=kl_weight,
                    prior=self.prior,
                    include_entropy_term=include_entropy_term,
                )
            elif index in det_inputs:
                grad = self._det_backward_per_sample(
                    layer, det_inputs[index], grad, n_samples, batch
                )
            else:
                grad = layer.backward(grad)
        self.release_sample_caches()
        return grad.reshape((n_samples, batch) + grad.shape[1:])

    def release_sample_caches(self) -> None:
        """Drop the folded ``(S * batch, ...)`` activations cached by a batched pass.

        The batched pipeline's caches (Bayesian layer inputs / per-sample
        im2col column matrices, and the stashed inputs of trainable
        deterministic layers) are ``S`` times the sequential path's resident
        size; they are released automatically at the end of
        :meth:`backward_samples` and after forward-only prediction.
        """
        for layer in self.layers:
            if isinstance(layer, BayesianLayer):
                layer._cache = {}
        self._det_layer_inputs = {}

    @staticmethod
    def _det_backward_per_sample(
        layer: Layer,
        folded_input: np.ndarray,
        grad: np.ndarray,
        n_samples: int,
        batch: int,
    ) -> np.ndarray:
        """Backward a trainable deterministic layer one sample at a time.

        Replaying ``forward`` on each sample's slice rebuilds exactly the
        cache that sample's sequential pass would have had (the layer is a
        pure function of its input and parameters), and the per-sample
        ``backward`` calls then accumulate the parameter gradients in sample
        order -- bit-identical to ``S`` sequential passes, which one folded
        ``(S * batch)`` contraction is not.

        With a :class:`~repro.bnn.grad_tape.SampleGradientTape` active, the
        per-sample contributions are captured instead of accumulated: the
        layer's gradients are zeroed before each sample's backward call so
        each call leaves exactly that sample's contribution behind, which is
        copied onto the tape (and the in-place accumulation is discarded --
        the tape's consumer owns the reduction).
        """
        tape = active_tape()
        params = layer.parameters() if tape is not None else []
        stacks = {
            param.name: np.empty((n_samples,) + param.value.shape)
            for param in params
        }
        grad_input = np.empty_like(folded_input)
        for s in range(n_samples):
            rows = slice(s * batch, (s + 1) * batch)
            if params:
                for param in params:
                    param.zero_grad()
            layer.forward(folded_input[rows])
            grad_input[rows] = layer.backward(grad[rows])
            for param in params:
                stacks[param.name][s] = param.grad
        if tape is not None:
            for param in params:
                param.zero_grad()
                tape.record(param.name, stacks[param.name])
        return grad_input

    # ------------------------------------------------------------------
    # loss helpers
    # ------------------------------------------------------------------
    def complexity(self) -> float:
        """Analytic KL divergence between the posterior and a Gaussian prior.

        Falls back to zero for non-Gaussian priors (the trainer then relies on
        the sampled estimate for reporting only; gradients are unaffected).
        """
        if not isinstance(self.prior, GaussianPrior):
            return 0.0
        return sum(
            gaussian_kl_divergence(layer.weight_posterior, self.prior)
            for layer in self.bayesian_layers()
        )

    @property
    def training(self) -> bool:
        """Whether the network is in training mode (true if any layer is)."""
        return any(layer.training for layer in self.layers)

    def train(self) -> None:
        """Put every layer in training mode."""
        for layer in self.layers:
            layer.train()

    def eval(self) -> None:
        """Put every layer in evaluation mode."""
        for layer in self.layers:
            layer.eval()

    def summary(self) -> str:
        """Human-readable per-layer summary."""
        lines = [
            f"BayesianNetwork '{self.name}': {self.parameter_count} parameters, "
            f"{self.n_bayesian_weights} Bayesian weights"
        ]
        for index, layer in enumerate(self.layers):
            kind = "bayes" if isinstance(layer, BayesianLayer) else "det"
            lines.append(
                f"  [{index:2d}] {layer.name:<24s} ({kind}) params={layer.parameter_count}"
            )
        return "\n".join(lines)
