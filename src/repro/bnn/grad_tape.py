"""Per-sample gradient capture for the distributed training engine.

The GC stage accumulates every parameter's gradient **one Monte-Carlo sample
at a time, in sample order** (float addition is not associative, and the
sequential trainers add one sample at a time -- see
:meth:`~repro.bnn.posteriors.GaussianPosterior.accumulate_sample_gradients`
and the bias loops in :mod:`repro.bnn.bayes_layers`).  That discipline is
what lets the batched engine stay on the sequential trajectory bit for bit;
it is also exactly what makes data-parallel training reducible without
losing bit-exactness: if a worker captures the *individual* per-sample
contributions instead of its shard's partial sum, the coordinator can replay
``param.grad += contribution[s]`` in canonical sample order across all
shards and obtain the identical left-to-right sum the single-process run
computes.  (Shard-level partial sums would not reduce exactly:
``(c0 + c1) + (c2 + c3)`` rounds differently from ``((c0 + c1) + c2) + c3``.)

A :class:`SampleGradientTape` is installed as a context manager around one
FW/BW/GC pass.  While active, the accumulation sites *record* each
parameter's ``(S, *shape)`` contribution stack on the tape instead of adding
it into ``param.grad``; the shard's parameter gradients are then reduced by
whoever owns the canonical sample order (the distributed coordinator).
"""

from __future__ import annotations

import numpy as np

__all__ = ["SampleGradientTape", "active_tape"]

#: The currently-installed tape (module-level: the FW/BW/GC pass of one step
#: is single-threaded and the accumulation call sites are deep inside layer
#: code, so threading a handle through every signature would buy nothing).
_ACTIVE: list["SampleGradientTape"] = []


def active_tape() -> "SampleGradientTape | None":
    """The innermost active tape, or ``None`` when gradients accumulate normally."""
    return _ACTIVE[-1] if _ACTIVE else None


class SampleGradientTape:
    """Records per-parameter, per-sample gradient contribution stacks.

    While the tape is active (used as a context manager), the GC-stage
    accumulation sites call :meth:`record` with the ``(S, *shape)`` stack of
    contributions that would otherwise have been added into ``param.grad``
    sample by sample -- and skip the accumulation.  After the pass,
    :attr:`contributions` maps parameter name to its stack; slice ``[s]`` is
    bit-for-bit the array the sequential trainer would have added for
    Monte-Carlo sample ``s``.
    """

    def __init__(self) -> None:
        self.contributions: dict[str, np.ndarray] = {}

    def record(self, name: str, stack: np.ndarray) -> None:
        """Store the ``(S, *shape)`` contribution stack of parameter ``name``."""
        if name in self.contributions:
            raise ValueError(
                f"parameter {name!r} was recorded twice in one pass; "
                "parameter names must be unique per step"
            )
        self.contributions[name] = np.asarray(stack)

    def __enter__(self) -> "SampleGradientTape":
        _ACTIVE.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _ACTIVE.pop()

    def __len__(self) -> int:
        return len(self.contributions)
