"""Weight priors for variational BNN training.

The paper trains with the standard Bayes-by-Backprop setup: a Gaussian (or
scale-mixture) prior over every weight, and a mean-field Gaussian variational
posterior.  Only two things about the prior matter to the training loop:

* its log-density (for reporting the complexity part of the loss), and
* the gradient of its negative log-density with respect to a sampled weight,
  which the accelerator's Derivative Processing Unit (DPU) computes as
  ``w / sigma_c**2`` for the default Gaussian prior (Section 6.2).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["Prior", "GaussianPrior", "ScaleMixturePrior"]


class Prior:
    """Interface of a weight prior."""

    def log_prob(self, weights: np.ndarray) -> float:
        """Total log-density of ``weights`` under the prior."""
        raise NotImplementedError

    def nll_grad(self, weights: np.ndarray) -> np.ndarray:
        """Gradient of ``-log P(w)`` with respect to ``w`` (element-wise)."""
        raise NotImplementedError


class GaussianPrior(Prior):
    """Zero-mean isotropic Gaussian prior ``N(0, sigma_c^2)``.

    The paper fixes ``sigma_c = 0.5`` so that the DPU's prior gradient
    ``w / sigma_c^2`` reduces to a 2-bit left shift of ``w``.
    """

    def __init__(self, sigma: float = 0.5) -> None:
        if sigma <= 0:
            raise ValueError("prior sigma must be positive")
        self.sigma = float(sigma)
        self._inv_var = 1.0 / (sigma * sigma)
        self._log_norm = -0.5 * math.log(2.0 * math.pi) - math.log(sigma)

    def log_prob(self, weights: np.ndarray) -> float:
        weights = np.asarray(weights)
        return float(
            weights.size * self._log_norm - 0.5 * self._inv_var * np.sum(weights**2)
        )

    def nll_grad(self, weights: np.ndarray) -> np.ndarray:
        return np.asarray(weights) * self._inv_var

    def __repr__(self) -> str:
        return f"GaussianPrior(sigma={self.sigma})"


class ScaleMixturePrior(Prior):
    """Blundell et al.'s two-component scale-mixture-of-Gaussians prior.

    ``P(w) = pi * N(0, sigma1^2) + (1 - pi) * N(0, sigma2^2)`` with
    ``sigma1 > sigma2``.  Provided as the paper's cited training recipe
    ([6] Blundell et al. 2015) for users who want the original prior; the
    default experiments use :class:`GaussianPrior` to match the accelerator's
    shift-based DPU.
    """

    def __init__(self, pi: float = 0.5, sigma1: float = 1.0, sigma2: float = 0.0025) -> None:
        if not 0.0 < pi < 1.0:
            raise ValueError("mixture weight pi must be in (0, 1)")
        if sigma1 <= 0 or sigma2 <= 0:
            raise ValueError("mixture sigmas must be positive")
        self.pi = float(pi)
        self.sigma1 = float(sigma1)
        self.sigma2 = float(sigma2)

    @staticmethod
    def _component_pdf(weights: np.ndarray, sigma: float) -> np.ndarray:
        coeff = 1.0 / (math.sqrt(2.0 * math.pi) * sigma)
        return coeff * np.exp(-0.5 * (weights / sigma) ** 2)

    def _mixture_pdf(self, weights: np.ndarray) -> np.ndarray:
        return self.pi * self._component_pdf(weights, self.sigma1) + (
            1.0 - self.pi
        ) * self._component_pdf(weights, self.sigma2)

    def log_prob(self, weights: np.ndarray) -> float:
        density = np.clip(self._mixture_pdf(np.asarray(weights)), 1e-300, None)
        return float(np.sum(np.log(density)))

    def nll_grad(self, weights: np.ndarray) -> np.ndarray:
        weights = np.asarray(weights)
        pdf1 = self._component_pdf(weights, self.sigma1)
        pdf2 = self._component_pdf(weights, self.sigma2)
        mixture = np.clip(self.pi * pdf1 + (1.0 - self.pi) * pdf2, 1e-300, None)
        # d(-log P)/dw = (pi pdf1 w/s1^2 + (1-pi) pdf2 w/s2^2) / mixture
        numerator = (
            self.pi * pdf1 * weights / self.sigma1**2
            + (1.0 - self.pi) * pdf2 * weights / self.sigma2**2
        )
        return numerator / mixture

    def __repr__(self) -> str:
        return (
            f"ScaleMixturePrior(pi={self.pi}, sigma1={self.sigma1}, sigma2={self.sigma2})"
        )
