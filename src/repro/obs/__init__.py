"""Observability: request tracing, metrics exposition, pipeline profiling.

- :mod:`repro.obs.trace` -- request IDs and span trees threaded from gateway
  admission through the microbatcher and the worker-process boundary, with a
  bounded ring buffer plus slowest-N exemplar retention;
- :mod:`repro.obs.metrics` -- a dependency-free registry of counters /
  gauges / fixed-bucket histograms rendered as Prometheus text;
- :mod:`repro.obs.adapters` -- scrape-time collectors that publish the
  existing serving stats surfaces into a registry without touching the hot
  path.

``REPRO_OBS=0`` disables tracing and hot-path instrumentation globally
(read at component construction).  Observability never alters a response
body: predict wire bytes are identical with tracing on, off, or sampled.
"""

from .adapters import bind_distrib_collectors, bind_serving_collectors
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    obs_enabled,
)
from .trace import StageRecorder, TraceHandle, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StageRecorder",
    "TraceHandle",
    "Tracer",
    "bind_distrib_collectors",
    "bind_serving_collectors",
    "default_registry",
    "obs_enabled",
]
