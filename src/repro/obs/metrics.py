"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately tiny and dependency-free: metric families hold
labelled children keyed by label-value tuples, histograms use fixed bucket
bounds (so merging and rendering stay O(buckets)), and the whole registry
renders to the Prometheus text exposition format (version 0.0.4) for
``GET /v1/metrics``.

Two publishing styles coexist:

- *push*: hot-path call sites increment counters / observe histograms
  directly (gateway request counters, distrib phase timings);
- *pull*: collector callables registered with
  :meth:`MetricsRegistry.register_collector` run at scrape time and load
  absolute values from existing stats snapshots (``ServerStats``,
  ``AdmissionController``), so the serving hot path is untouched.

``REPRO_OBS=0`` is the global kill switch (see :func:`obs_enabled`); it is
read at component construction time so two stacks with different settings
can coexist in one process (the overhead benchmark relies on this).
"""

from __future__ import annotations

import math
import os
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "obs_enabled",
]

#: Falsy spellings accepted by the ``REPRO_OBS`` kill switch.
_FALSY = frozenset({"0", "false", "off", "no", ""})

#: Shared latency bucket bounds (milliseconds) used by the request-latency
#: histograms in ``ServerStats`` and the gateway; fixed so percentile
#: estimates and exposition stay comparable across components.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


def obs_enabled(default: bool = True) -> bool:
    """Return whether observability instrumentation is enabled.

    Controlled by the ``REPRO_OBS`` environment variable (same convention as
    ``REPRO_FUSED`` / ``REPRO_BACKEND``): unset means *enabled*; ``0`` /
    ``false`` / ``off`` / ``no`` disable.  Components read this once at
    construction, never per request.
    """

    raw = os.environ.get("REPRO_OBS")
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


def _format_value(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""

    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in zip(names, values)
    )
    return "{" + inner + "}"


class Counter:
    """Monotonic counter child.

    ``set_total`` exists for pull-model collectors that load an absolute
    running total from a stats snapshot at scrape time; push-model call
    sites use ``inc`` only.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Instantaneous-value child."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram child with percentile estimation.

    Buckets follow Prometheus ``le`` semantics: bucket *i* counts
    observations ``<= bounds[i]``, plus an implicit ``+Inf`` overflow
    bucket.  :meth:`percentile` linearly interpolates within the winning
    bucket; values landing in the overflow bucket report the tracked
    maximum (exact for the common "one straggler" case, an upper bound
    otherwise).
    """

    __slots__ = ("_bounds", "_counts", "_count", "_lock", "_max", "_sum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._max = 0.0
        self._lock = threading.Lock()

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    def load(
        self,
        counts: Sequence[int],
        total_sum: float,
        total_count: int,
        max_value: float = 0.0,
    ) -> None:
        """Overwrite state from an external snapshot (pull collectors)."""

        if len(counts) != len(self._counts):
            raise ValueError(
                f"expected {len(self._counts)} bucket counts, got {len(counts)}"
            )
        with self._lock:
            self._counts = [int(c) for c in counts]
            self._sum = float(total_sum)
            self._count = int(total_count)
            self._max = float(max_value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    def mean(self) -> float | None:
        with self._lock:
            if self._count == 0:
                return None
            return self._sum / self._count

    def percentile(self, q: float) -> float | None:
        """Estimate the q-th percentile (``0 <= q <= 100``) from buckets."""

        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        with self._lock:
            count = self._count
            if count == 0:
                return None
            counts = list(self._counts)
            max_value = self._max
        target = (q / 100.0) * count
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                if index == len(self._bounds):
                    return max_value  # overflow bucket: report tracked max
                upper = self._bounds[index]
                lower = self._bounds[index - 1] if index else 0.0
                if bucket_count == 0:
                    return upper
                fraction = (target - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return max_value

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "bounds": list(self._bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
                "max": self._max,
            }


class _MetricFamily:
    """A named metric with labelled children of a single type."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _make_child(self) -> object:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self._buckets or DEFAULT_LATENCY_BUCKETS_MS)

    def labels(self, **labels: str):
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    # Unlabelled families behave as their single default child.
    def _default(self):
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def set_total(self, value: float) -> None:
        self._default().set_total(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def load(self, *args, **kwargs) -> None:
        self._default().load(*args, **kwargs)

    def percentile(self, q: float) -> float | None:
        return self._default().percentile(q)

    @property
    def count(self) -> int:
        return self._default().count

    @property
    def value(self) -> float:
        return self._default().value

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    def render(self, lines: List[str]) -> None:
        children = self.children()
        if not children:
            return
        lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key, child in children:
            base_labels = _format_labels(self.labelnames, key)
            if self.kind in ("counter", "gauge"):
                lines.append(f"{self.name}{base_labels} {_format_value(child.value)}")
                continue
            snap = child.snapshot()
            cumulative = 0
            bucket_names = self.labelnames + ("le",)
            for bound, count in zip(snap["bounds"], snap["counts"]):
                cumulative += count
                labels = _format_labels(bucket_names, key + (_format_value(bound),))
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            cumulative += snap["counts"][-1]
            labels = _format_labels(bucket_names, key + ("+Inf",))
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
            lines.append(
                f"{self.name}_sum{base_labels} {_format_value(snap['sum'])}"
            )
            lines.append(f"{self.name}_count{base_labels} {snap['count']}")


class MetricsRegistry:
    """A named collection of metric families with scrape-time collectors."""

    def __init__(self) -> None:
        self._families: Dict[str, _MetricFamily] = {}
        self._collectors: List[Callable[[], None]] = []
        self._lock = threading.Lock()

    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> _MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind:
                    raise ValueError(
                        f"metric {name} already registered as {family.kind}"
                    )
                if family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name} already registered with labels "
                        f"{family.labelnames}"
                    )
                return family
            family = _MetricFamily(name, help_text, kind, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> _MetricFamily:
        return self._family(name, help_text, "counter", labelnames)

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> _MetricFamily:
        return self._family(name, help_text, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> _MetricFamily:
        return self._family(name, help_text, "histogram", labelnames, buckets)

    def register_collector(self, collector: Callable[[], None]) -> None:
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def unregister_collector(self, collector: Callable[[], None]) -> None:
        with self._lock:
            if collector in self._collectors:
                self._collectors.remove(collector)

    def collect(self) -> None:
        """Run registered collectors (refreshes pull-model families)."""

        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()

    def render(self) -> str:
        """Render the Prometheus text exposition (families sorted by name)."""

        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        lines: List[str] = []
        for family in families:
            family.render(lines)
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Machine-readable dump (name -> {kind, children})."""

        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        out: Dict[str, Dict[str, object]] = {}
        for family in families:
            children = {}
            for key, child in family.children():
                label_key = ",".join(
                    f"{n}={v}" for n, v in zip(family.labelnames, key)
                )
                if family.kind == "histogram":
                    children[label_key] = child.snapshot()
                else:
                    children[label_key] = child.value
            out[family.name] = {"kind": family.kind, "children": children}
        return out


_DEFAULT_REGISTRY: MetricsRegistry | None = None
_DEFAULT_LOCK = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-global registry (used by distrib when none is injected)."""

    global _DEFAULT_REGISTRY
    with _DEFAULT_LOCK:
        if _DEFAULT_REGISTRY is None:
            _DEFAULT_REGISTRY = MetricsRegistry()
        return _DEFAULT_REGISTRY
