"""Thin adapters publishing existing stats surfaces into a MetricsRegistry.

Pull-model: :func:`bind_serving_collectors` registers one collector that, at
scrape time, loads absolute totals from ``ServerStats.snapshot()``, the
``AdmissionController`` snapshots, the microbatcher flush counters, and the
kernel-backend dispatch counters.  The serving hot path never touches the
registry -- only the scrape does -- so ``/v1/metrics`` costs nothing between
scrapes.  :func:`bind_distrib_collectors` does the same for the distributed
training backend's elastic-pool and delta-cache gauges (its counters --
bytes shipped, resyncs, replans, pool events -- are pushed by the
coordinator itself, since they change at most once per step).
"""

from __future__ import annotations

from typing import Callable

from .metrics import DEFAULT_LATENCY_BUCKETS_MS, MetricsRegistry

__all__ = ["bind_serving_collectors", "bind_distrib_collectors"]


def bind_distrib_collectors(
    registry: MetricsRegistry, backend
) -> Callable[[], None]:
    """Register scrape-time gauges for a :class:`DistributedBackend`.

    Returns the collector so the backend can unregister it at close time.
    All reads are plain attribute lookups on the coordinator -- safe to
    scrape mid-step and free between scrapes.
    """

    workers = registry.gauge(
        "repro_distrib_pool_workers",
        "Worker processes currently alive in the elastic training pool.",
    )
    joins = registry.gauge(
        "repro_distrib_pool_pending_joins",
        "Join requests queued for the next step boundary.",
    )
    leaves = registry.gauge(
        "repro_distrib_pool_pending_leaves",
        "Leave requests queued for the next step boundary.",
    )
    mirror = registry.gauge(
        "repro_distrib_delta_mirror_entries",
        "Tensors tracked across the coordinator's per-worker delta mirrors.",
    )

    def collect() -> None:
        workers.set(backend.alive_workers)
        joins.set(backend.pending_joins)
        leaves.set(backend.pending_leaves)
        mirror.set(backend.delta_mirror_entries)

    registry.register_collector(collect)
    return collect


def bind_serving_collectors(
    registry: MetricsRegistry, gateway
) -> Callable[[], None]:
    """Register scrape-time collectors for a :class:`ServingGateway`.

    Returns the collector so the gateway can unregister it at close time
    (a collector scraping a closed server would raise).
    """

    requests = registry.counter(
        "repro_requests_total",
        "Requests finished by the prediction server.",
        ("outcome",),
    )
    version_requests = registry.counter(
        "repro_version_requests_total",
        "Completed requests per model version.",
        ("version",),
    )
    rows = registry.counter(
        "repro_rows_completed_total", "Input rows completed by the server."
    )
    tiles = registry.counter(
        "repro_tiles_executed_total", "Execution tiles dispatched."
    )
    latency = registry.histogram(
        "repro_request_latency_ms",
        "End-to-end request latency (submit to completion), milliseconds.",
        buckets=DEFAULT_LATENCY_BUCKETS_MS,
    )
    saturation = registry.gauge(
        "repro_latency_window_saturation",
        "Fraction of the legacy latency window filled (1 = the old "
        "deque-window percentiles would have forgotten history).",
    )
    queue_rows = registry.gauge(
        "repro_queue_pending_rows", "Rows waiting in the microbatcher."
    )
    queue_waiting = registry.gauge(
        "repro_queue_waiting_requests",
        "Requests parked in the priority waiting room.",
    )
    drain = registry.gauge(
        "repro_drain_rate_rows_per_s",
        "Measured drain rate of the serving queue (rows/s; 0 while cold).",
    )
    flushes = registry.counter(
        "repro_tile_flushes_total",
        "Microbatcher tile flushes by cause.",
        ("cause",),
    )
    fusion = registry.counter(
        "repro_fusion_events_total",
        "Fused-tile execution events by kind.",
        ("kind",),
    )
    admission = registry.counter(
        "repro_admission_requests_total",
        "Admission controller decisions.",
        ("outcome",),
    )
    tenant_requests = registry.counter(
        "repro_tenant_requests_total",
        "Per-tenant admission outcomes.",
        ("tenant", "tier", "outcome"),
    )
    tenant_rows = registry.counter(
        "repro_tenant_rows_total",
        "Per-tenant admitted input rows.",
        ("tenant", "tier"),
    )
    kernel_calls = registry.counter(
        "repro_kernel_calls_total",
        "Kernel dispatch calls per (kernel, backend).",
        ("kernel", "backend"),
    )
    kernel_rows = registry.counter(
        "repro_kernel_rows_total",
        "Rows processed per (kernel, backend).",
        ("kernel", "backend"),
    )
    traces = registry.counter(
        "repro_traces_recorded_total", "Traces finished and retained."
    )
    traces_open = registry.gauge(
        "repro_traces_open", "Traces begun but not yet finished."
    )

    def collect() -> None:
        server = gateway.prediction_server
        snap = server.stats()
        requests.labels(outcome="completed").set_total(snap.requests_completed)
        requests.labels(outcome="failed").set_total(snap.requests_failed)
        for version, counters in snap.per_version.items():
            version_requests.labels(version=version).set_total(
                counters.get("completed", 0)
            )
        rows.set_total(snap.rows_completed)
        tiles.set_total(snap.tiles_executed)
        hist = snap.latency_histogram_ms
        if hist:
            latency.load(hist["counts"], hist["sum"], hist["count"], hist["max"])
        saturation.set(snap.latency_window_saturation)
        queue_rows.set(server.pending_rows)
        queue_waiting.set(server.waiting_requests)
        drain.set(server.drain_rate_rows_per_s() or 0.0)
        for cause, count in server.flush_causes().items():
            flushes.labels(cause=cause).set_total(count)
        for kind, count in snap.fusion.items():
            if isinstance(count, (int, float)):
                fusion.labels(kind=str(kind)).set_total(count)
        adm = gateway.admission.snapshot()
        admission.labels(outcome="admitted").set_total(adm["admitted"])
        admission.labels(outcome="shed_rate_limited").set_total(
            adm["shed_rate_limited"]
        )
        admission.labels(outcome="shed_capacity").set_total(adm["shed_capacity"])
        for tenant, info in gateway.admission.tenants_snapshot().items():
            tier = info["tier"]
            tenant_requests.labels(
                tenant=tenant, tier=tier, outcome="admitted"
            ).set_total(info["admitted"])
            tenant_requests.labels(
                tenant=tenant, tier=tier, outcome="shed"
            ).set_total(info["shed"])
            tenant_rows.labels(tenant=tenant, tier=tier).set_total(info["rows"])
        for kernel, info in snap.kernel_backends.items():
            for backend, counters in info.get("backends", {}).items():
                kernel_calls.labels(kernel=kernel, backend=backend).set_total(
                    counters["calls"]
                )
                kernel_rows.labels(kernel=kernel, backend=backend).set_total(
                    counters["rows"]
                )
        tracer = server.tracer
        traces.set_total(tracer.recorded_count)
        traces_open.set(tracer.open_count)

    registry.register_collector(collect)
    return collect
