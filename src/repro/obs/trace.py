"""Request tracing: span trees threaded from gateway admission to workers.

A :class:`Tracer` assigns each request an ID at admission and accumulates
spans as the request moves through admission -> microbatcher waiting room ->
tile assembly -> worker execution -> serialization.  Worker processes record
leaf spans on their own monotonic clock via a :class:`StageRecorder`; the
pool reconciles clocks with a per-rank offset captured from the worker's
ready handshake (the offset is biased by the ready message's queue latency,
which is microseconds against millisecond spans -- documented, accepted).

Finished traces land in a bounded ring buffer; a separate slowest-N exemplar
heap keeps the worst offenders alive past ring eviction so
``GET /v1/traces?slowest=N`` can answer "where did the tail go?" long after
the ring has churned.

Tracing never touches response bodies: span data rides message side-channels
(extra tuple elements on the worker task/done protocol, the ``X-Request-Id``
response *header*) and the predict payload bytes are identical with tracing
on, off, or sampled.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from .metrics import obs_enabled

__all__ = ["StageRecorder", "TraceHandle", "Tracer"]


class TraceHandle:
    """Mutable accumulator for one request's spans.

    Span times are parent-process monotonic seconds; they are re-based to
    offsets relative to the trace start when the trace is finished, so the
    stored record is JSON-ready.  ``finish`` is idempotent: the first caller
    wins, which lets the server close non-deferred traces while the gateway
    (which sets ``deferred`` and adds the serialization span after the
    response is written) closes its own.
    """

    __slots__ = (
        "_finished",
        "_lock",
        "_spans",
        "_tracer",
        "deferred",
        "meta",
        "started_at",
        "trace_id",
    )

    def __init__(self, tracer: "Tracer", trace_id: str, started_at: float, meta: dict):
        self._tracer = tracer
        self.trace_id = trace_id
        self.started_at = started_at
        self.meta = meta
        self.deferred = False
        self._spans: List[dict] = []
        self._finished = False
        self._lock = threading.Lock()

    def add_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        status: str = "ok",
        parent: Optional[str] = None,
        **meta: object,
    ) -> None:
        span = {
            "name": name,
            "start_s": float(start_s),
            "end_s": float(end_s),
            "status": status,
            "parent": parent,
        }
        if meta:
            span["meta"] = meta
        with self._lock:
            if not self._finished:
                self._spans.append(span)

    @contextmanager
    def span(self, name: str, parent: Optional[str] = None, **meta: object) -> Iterator[None]:
        start = self._tracer._clock()
        try:
            yield
        finally:
            self.add_span(name, start, self._tracer._clock(), parent=parent, **meta)

    def annotate(self, **meta: object) -> None:
        with self._lock:
            self.meta.update(meta)

    def finish(self, status: str = "ok") -> None:
        with self._lock:
            if self._finished:
                return
            self._finished = True
            spans = self._spans
            self._spans = []
        self._tracer._record(self, status, spans)


class Tracer:
    """Assigns request IDs, samples, and retains finished traces."""

    def __init__(
        self,
        ring_size: int = 512,
        slowest_n: int = 16,
        sample_rate: float = 1.0,
        enabled: Optional[bool] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self._ring_size = ring_size
        self._slowest_n = max(0, slowest_n)
        self._sample_rate = sample_rate
        self._enabled = obs_enabled() if enabled is None else bool(enabled)
        self._clock = clock
        self._prefix = os.urandom(3).hex()
        self._counter = itertools.count(1)
        self._ring: "OrderedDict[str, dict]" = OrderedDict()
        # Min-heap of (duration_ms, sequence, record): survives ring eviction.
        self._slowest: List[tuple] = []
        self._open: Dict[str, TraceHandle] = {}
        self._recorded = 0
        # Deterministic counter-based sampling: fire when the accumulator
        # crosses 1 (no RNG, so sampled runs are reproducible).
        self._accumulator = 0.0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def sample_rate(self) -> float:
        return self._sample_rate

    def begin(self, **meta: object) -> Optional[TraceHandle]:
        """Start a trace, or return None when disabled / sampled out."""

        if not self._enabled:
            return None
        with self._lock:
            self._accumulator += self._sample_rate
            if self._accumulator < 1.0:
                return None
            self._accumulator -= 1.0
            sequence = next(self._counter)
        trace_id = f"{self._prefix}{sequence:08x}"
        handle = TraceHandle(self, trace_id, self._clock(), dict(meta))
        with self._lock:
            self._open[trace_id] = handle
        return handle

    def _record(self, handle: TraceHandle, status: str, spans: List[dict]) -> None:
        end = self._clock()
        base = handle.started_at
        record = {
            "trace_id": handle.trace_id,
            "status": status,
            "duration_ms": (end - base) * 1e3,
            "meta": dict(handle.meta),
            "spans": [
                {
                    "name": span["name"],
                    "offset_ms": (span["start_s"] - base) * 1e3,
                    "duration_ms": (span["end_s"] - span["start_s"]) * 1e3,
                    "status": span["status"],
                    "parent": span["parent"],
                    **({"meta": span["meta"]} if "meta" in span else {}),
                }
                for span in spans
            ],
        }
        with self._lock:
            self._open.pop(handle.trace_id, None)
            self._ring[handle.trace_id] = record
            while len(self._ring) > self._ring_size:
                self._ring.popitem(last=False)
            self._recorded += 1
            if self._slowest_n:
                entry = (record["duration_ms"], self._recorded, record)
                if len(self._slowest) < self._slowest_n:
                    heapq.heappush(self._slowest, entry)
                elif entry[0] > self._slowest[0][0]:
                    heapq.heapreplace(self._slowest, entry)

    def get(self, trace_id: str) -> Optional[dict]:
        with self._lock:
            record = self._ring.get(trace_id)
            if record is None:
                for _, _, kept in self._slowest:
                    if kept["trace_id"] == trace_id:
                        record = kept
                        break
            return record

    def slowest(self, n: int = 8) -> List[dict]:
        with self._lock:
            entries = sorted(self._slowest, key=lambda e: e[0], reverse=True)
        return [record for _, _, record in entries[: max(0, n)]]

    def abort_open(self, status: str = "aborted") -> int:
        """Finish every still-open trace (shutdown path); returns the count."""

        with self._lock:
            handles = list(self._open.values())
        for handle in handles:
            handle.finish(status)
        return len(handles)

    @property
    def open_count(self) -> int:
        with self._lock:
            return len(self._open)

    @property
    def recorded_count(self) -> int:
        with self._lock:
            return self._recorded


class StageRecorder:
    """Lightweight span sink for worker processes and inline execution.

    Records raw ``(name, start, end)`` stage timings on the local monotonic
    clock; the parent drains them, converts via the per-rank clock offset,
    and attaches them to the owning :class:`TraceHandle`.
    """

    __slots__ = ("_spans",)

    def __init__(self) -> None:
        self._spans: List[dict] = []

    def record(
        self,
        name: str,
        start_s: float,
        end_s: float,
        status: str = "ok",
        **meta: object,
    ) -> None:
        span = {
            "name": name,
            "start_s": float(start_s),
            "end_s": float(end_s),
            "status": status,
        }
        if meta:
            span["meta"] = meta
        self._spans.append(span)

    @contextmanager
    def stage(self, name: str, **meta: object) -> Iterator[None]:
        start = time.monotonic()
        try:
            yield
        finally:
            self.record(name, start, time.monotonic(), **meta)

    def drain(self) -> List[dict]:
        spans, self._spans = self._spans, []
        return spans
