"""Shift-BNN reproduction: memory-friendly BNN training via reversible LFSRs.

This package reproduces "Shift-BNN: Highly-Efficient Probabilistic Bayesian
Neural Network Training via Memory-Friendly Pattern Retrieving" (MICRO 2021)
as a pure-Python library.  It is organised as:

* :mod:`repro.core` -- the paper's contribution: reversible LFSR-based
  Gaussian sampling (generate epsilons forward, retrieve them backward,
  nothing stored in between);
* :mod:`repro.nn` / :mod:`repro.bnn` -- a NumPy deep-learning substrate and
  Bayes-by-Backprop training on top of it, with interchangeable
  epsilon-management policies (stored vs regenerated);
* :mod:`repro.models`, :mod:`repro.datasets` -- the five evaluation models and
  synthetic stand-ins for their datasets;
* :mod:`repro.accel` -- an analytic accelerator simulator (mappings, traffic,
  energy, latency, FPGA resources, a GPU roofline reference);
* :mod:`repro.serve` -- an asynchronous micro-batching serving front-end that
  pools prediction requests into ``(S, batch)`` tiles for the batched engine,
  optionally sharded across model-replica worker processes;
* :mod:`repro.distrib` -- a data-parallel distributed training engine that
  shards each training step across an elastic pool of worker processes (2-D:
  Monte-Carlo samples x minibatch row blocks), ships step state as
  content-fingerprinted deltas, and survives worker joins, leaves and
  crashes with deterministic fault tolerance -- bit-identical to
  single-process runs throughout;
* :mod:`repro.experiments` -- one module per paper table / figure,
  regenerating the evaluation;
* :mod:`repro.analysis` -- metric and table helpers.

Quick start::

    from repro.models import get_model
    from repro.datasets import synthetic_mnist, BatchLoader
    from repro.bnn import ShiftBNNTrainer, TrainerConfig

    spec = get_model("B-MLP", reduced=True)
    train, test = synthetic_mnist(512, 128, image_size=14)
    trainer = ShiftBNNTrainer(spec.build_bayesian(seed=0), TrainerConfig(n_samples=2))
    trainer.fit(BatchLoader(train, 64, flatten=True).batches(), epochs=5)
"""

from . import accel, analysis, bnn, core, datasets, distrib, experiments, models, nn, serve

__version__ = "1.1.0"

__all__ = [
    "core",
    "nn",
    "bnn",
    "models",
    "datasets",
    "accel",
    "analysis",
    "experiments",
    "serve",
    "distrib",
    "__version__",
]
