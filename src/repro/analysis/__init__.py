"""Analysis helpers: derived metrics and table rendering."""

from .metrics import (
    efficiency_ratio,
    energy_reduction_percent,
    geometric_mean,
    normalise,
    speedup,
)
from .tables import format_csv, format_table

__all__ = [
    "geometric_mean",
    "normalise",
    "speedup",
    "energy_reduction_percent",
    "efficiency_ratio",
    "format_table",
    "format_csv",
]
