"""Plain-text table rendering for experiment output.

Every experiment module produces structured rows; this helper renders them as
aligned ASCII tables (what the benchmark harness prints) and as CSV text (for
saving results to disk), without any third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_csv"]


def _stringify(value: object, float_format: str) -> str:
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_format: str = ".3f",
) -> str:
    """Render rows as an aligned ASCII table."""
    materialised = [[_stringify(cell, float_format) for cell in row] for row in rows]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [len(str(header)) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in materialised:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_csv(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = ".6g",
) -> str:
    """Render rows as CSV text (no quoting; cells must not contain commas)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        cells = [_stringify(cell, float_format) for cell in row]
        if any("," in cell for cell in cells):
            raise ValueError("CSV cells must not contain commas")
        lines.append(",".join(cells))
    return "\n".join(lines)
