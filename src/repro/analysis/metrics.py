"""Derived metrics and normalisation helpers used by the experiments."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "geometric_mean",
    "normalise",
    "speedup",
    "energy_reduction_percent",
    "efficiency_ratio",
]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the conventional way to average speedups."""
    if not values:
        raise ValueError("geometric_mean needs at least one value")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric_mean is defined for positive values only")
        product *= value
    return product ** (1.0 / len(values))


def normalise(values: Mapping[str, float], baseline_key: str) -> dict[str, float]:
    """Divide every entry by the baseline entry (the paper's normalised plots)."""
    if baseline_key not in values:
        raise KeyError(f"baseline {baseline_key!r} missing from {sorted(values)}")
    baseline = values[baseline_key]
    if baseline == 0:
        raise ValueError("baseline value must be non-zero")
    return {key: value / baseline for key, value in values.items()}


def speedup(baseline_latency: float, improved_latency: float) -> float:
    """Latency ratio baseline / improved (>1 means the improved design is faster)."""
    if improved_latency <= 0:
        raise ValueError("latencies must be positive")
    return baseline_latency / improved_latency


def energy_reduction_percent(baseline_energy: float, improved_energy: float) -> float:
    """Percentage of the baseline energy that the improved design saves."""
    if baseline_energy <= 0:
        raise ValueError("baseline energy must be positive")
    return (1.0 - improved_energy / baseline_energy) * 100.0


def efficiency_ratio(improved_efficiency: float, baseline_efficiency: float) -> float:
    """Energy-efficiency improvement factor (GOPS/W ratio)."""
    if baseline_efficiency <= 0:
        raise ValueError("baseline efficiency must be positive")
    return improved_efficiency / baseline_efficiency
