"""Deterministic parameter initialisers for the NumPy substrate.

Initialisation randomness is kept separate from the Bayesian sampling
randomness: initialisers use a plain seeded ``numpy.random.Generator`` while
weight-sampling epsilons always come from the LFSR-based streams in
:mod:`repro.core`.  That separation lets the baseline and Shift-BNN trainers
start from identical parameters and consume identical epsilons.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "Initializer",
    "Zeros",
    "Constant",
    "HeNormal",
    "GlorotUniform",
    "fan_in_and_out",
]


def fan_in_and_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Return (fan_in, fan_out) for dense ``(in, out)`` or conv ``(M, N, K, K)`` shapes."""
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        out_channels, in_channels, k_h, k_w = shape
        receptive = k_h * k_w
        return in_channels * receptive, out_channels * receptive
    if len(shape) == 1:
        return shape[0], shape[0]
    raise ValueError(f"unsupported parameter shape {shape}")


class Initializer:
    """Base class: callable producing an array for a given shape."""

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


class Zeros(Initializer):
    """All-zero initialisation (biases, sigma offsets)."""

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return np.zeros(shape, dtype=np.float64)


class Constant(Initializer):
    """Constant-valued initialisation (e.g. the rho parameter of sigma)."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return np.full(shape, self.value, dtype=np.float64)


class HeNormal(Initializer):
    """He/Kaiming normal initialisation, suited to ReLU networks."""

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        fan_in, _ = fan_in_and_out(shape)
        std = math.sqrt(2.0 / max(fan_in, 1))
        return rng.normal(0.0, std, size=shape)


class GlorotUniform(Initializer):
    """Glorot/Xavier uniform initialisation."""

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        fan_in, fan_out = fan_in_and_out(shape)
        limit = math.sqrt(6.0 / max(fan_in + fan_out, 1))
        return rng.uniform(-limit, limit, size=shape)
