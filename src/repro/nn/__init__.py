"""NumPy deep-learning substrate (layers, losses, optimisers, quantisation).

This package replaces the PyTorch dependency of the original paper: it
provides everything needed to train the deterministic DNN baselines and to
serve as the arithmetic backend of the Bayesian layers in :mod:`repro.bnn`.
"""

from . import functional
from .initializers import Constant, GlorotUniform, HeNormal, Initializer, Zeros
from .layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    Parameter,
    ReLU,
)
from .losses import Loss, MeanSquaredError, SoftmaxCrossEntropy
from .metrics import (
    accuracy,
    expected_calibration_error,
    negative_log_likelihood,
    predictive_entropy,
)
from .network import Sequential
from .optim import SGD, Adam, Optimizer
from .quantization import FixedPointFormat, QuantizationConfig, quantize
from .tensor_utils import conv_output_size, one_hot

__all__ = [
    "functional",
    "Initializer",
    "Zeros",
    "Constant",
    "HeNormal",
    "GlorotUniform",
    "Parameter",
    "Layer",
    "Dense",
    "Conv2D",
    "ReLU",
    "Flatten",
    "MaxPool2D",
    "AvgPool2D",
    "Dropout",
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "FixedPointFormat",
    "QuantizationConfig",
    "quantize",
    "accuracy",
    "negative_log_likelihood",
    "expected_calibration_error",
    "predictive_entropy",
    "one_hot",
    "conv_output_size",
]
