"""Loss functions for the NumPy substrate.

The BNN loss (Eq. 1 of the paper) is the negative log-likelihood plus the
KL-style prior/posterior terms.  The likelihood part is an ordinary
classification loss and lives here; the prior/posterior terms depend on the
variational parameters and live in :mod:`repro.bnn.elbo`.
"""

from __future__ import annotations

import numpy as np

from .functional import softmax
from .tensor_utils import one_hot

__all__ = ["Loss", "SoftmaxCrossEntropy", "MeanSquaredError", "loss_probabilities"]


def loss_probabilities(loss: "Loss", logits: np.ndarray) -> np.ndarray:
    """Predictive probabilities of the most recent ``loss.forward(logits, ...)``.

    Losses that already computed a predictive distribution expose it as a
    ``probabilities`` attribute (e.g. :class:`SoftmaxCrossEntropy`'s cached
    softmax) and it is reused; otherwise the softmax of ``logits`` is
    computed here.  Both the single-process trainers and the distributed
    shard workers derive their per-sample probabilities through this one
    helper, so the two can never drift apart on the tie-break between
    cached and recomputed values (a bit-exactness contract, not a style
    point).
    """
    probabilities = getattr(loss, "probabilities", None)
    if probabilities is not None:
        return probabilities
    return softmax(logits)


class Loss:
    """Base class: ``forward`` returns a scalar, ``backward`` the logit gradient."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy against integer class labels.

    ``forward`` accepts logits of shape ``(N, classes)`` and labels of shape
    ``(N,)``; ``backward`` returns the gradient with respect to the logits.
    """

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        if predictions.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {predictions.shape}")
        probabilities = softmax(predictions)
        encoded = one_hot(np.asarray(targets), predictions.shape[1])
        self._cache = (probabilities, encoded)
        clipped = np.clip(probabilities, 1e-12, 1.0)
        return float(-(encoded * np.log(clipped)).sum() / predictions.shape[0])

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probabilities, encoded = self._cache
        return (probabilities - encoded) / probabilities.shape[0]

    @property
    def probabilities(self) -> np.ndarray:
        """Softmax probabilities cached by the most recent :meth:`forward`.

        ``forward`` already pays for the softmax; consumers that want the
        predictive distribution of the same logits (e.g. the trainers' batch
        accuracy) should reuse this instead of recomputing it.
        """
        if self._cache is None:
            raise RuntimeError("probabilities read before forward")
        return self._cache[0]


class MeanSquaredError(Loss):
    """Mean squared error for regression-style outputs."""

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"prediction shape {predictions.shape} != target shape {targets.shape}"
            )
        self._cache = (predictions, targets)
        return float(np.mean((predictions - targets) ** 2))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        predictions, targets = self._cache
        return 2.0 * (predictions - targets) / predictions.size
