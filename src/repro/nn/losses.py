"""Loss functions for the NumPy substrate.

The BNN loss (Eq. 1 of the paper) is the negative log-likelihood plus the
KL-style prior/posterior terms.  The likelihood part is an ordinary
classification loss and lives here; the prior/posterior terms depend on the
variational parameters and live in :mod:`repro.bnn.elbo`.
"""

from __future__ import annotations

import numpy as np

from .functional import softmax
from .tensor_utils import one_hot

__all__ = ["Loss", "SoftmaxCrossEntropy", "MeanSquaredError", "loss_probabilities"]


def loss_probabilities(loss: "Loss", logits: np.ndarray) -> np.ndarray:
    """Predictive probabilities of the most recent ``loss.forward(logits, ...)``.

    Losses that already computed a predictive distribution expose it as a
    ``probabilities`` attribute (e.g. :class:`SoftmaxCrossEntropy`'s cached
    softmax) and it is reused; otherwise the softmax of ``logits`` is
    computed here.  Both the single-process trainers and the distributed
    shard workers derive their per-sample probabilities through this one
    helper, so the two can never drift apart on the tie-break between
    cached and recomputed values (a bit-exactness contract, not a style
    point).
    """
    probabilities = getattr(loss, "probabilities", None)
    if probabilities is not None:
        return probabilities
    return softmax(logits)


class Loss:
    """Base class: ``forward`` returns a scalar, ``backward`` the logit gradient.

    Losses that can be decomposed across a row-partitioned minibatch (the
    distributed trainer's batch-axis sharding) additionally implement
    :meth:`forward_rows` / :meth:`backward_rows`: the same arithmetic as
    ``forward`` / ``backward`` but normalised by the *full* minibatch row
    count instead of by the rows present, so per-row-block results sum to a
    deterministic whole.  Losses without the pair still work everywhere a
    single row block is used.
    """

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def forward_rows(
        self, predictions: np.ndarray, targets: np.ndarray, total_rows: int
    ) -> float:
        raise NotImplementedError(
            f"{type(self).__name__} does not support row-block decomposition "
            "(implement forward_rows/backward_rows, or run with n_row_blocks=1)"
        )

    def backward_rows(self) -> np.ndarray:
        raise NotImplementedError(
            f"{type(self).__name__} does not support row-block decomposition "
            "(implement forward_rows/backward_rows, or run with n_row_blocks=1)"
        )

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy against integer class labels.

    ``forward`` accepts logits of shape ``(N, classes)`` and labels of shape
    ``(N,)``; ``backward`` returns the gradient with respect to the logits.
    """

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None
        self._rows_norm: int | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        if predictions.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {predictions.shape}")
        probabilities = softmax(predictions)
        encoded = one_hot(np.asarray(targets), predictions.shape[1])
        self._cache = (probabilities, encoded)
        clipped = np.clip(probabilities, 1e-12, 1.0)
        return float(-(encoded * np.log(clipped)).sum() / predictions.shape[0])

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probabilities, encoded = self._cache
        return (probabilities - encoded) / probabilities.shape[0]

    def forward_rows(
        self, predictions: np.ndarray, targets: np.ndarray, total_rows: int
    ) -> float:
        """Cross-entropy of a row block, normalised by the full batch size.

        ``predictions``/``targets`` hold one contiguous block of the
        minibatch's rows; ``total_rows`` is the unsplit minibatch row count.
        Per-row arithmetic (softmax, one-hot, log) is identical to
        :meth:`forward`; only the normaliser differs, so with a single
        block covering all rows this *is* ``forward`` bit for bit.
        """
        if predictions.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {predictions.shape}")
        if total_rows < predictions.shape[0]:
            raise ValueError(
                f"total_rows {total_rows} < block rows {predictions.shape[0]}"
            )
        probabilities = softmax(predictions)
        encoded = one_hot(np.asarray(targets), predictions.shape[1])
        self._cache = (probabilities, encoded)
        self._rows_norm = total_rows
        clipped = np.clip(probabilities, 1e-12, 1.0)
        return float(-(encoded * np.log(clipped)).sum() / total_rows)

    def backward_rows(self) -> np.ndarray:
        if self._cache is None or self._rows_norm is None:
            raise RuntimeError("backward_rows called before forward_rows")
        probabilities, encoded = self._cache
        return (probabilities - encoded) / self._rows_norm

    @property
    def probabilities(self) -> np.ndarray:
        """Softmax probabilities cached by the most recent :meth:`forward`.

        ``forward`` already pays for the softmax; consumers that want the
        predictive distribution of the same logits (e.g. the trainers' batch
        accuracy) should reuse this instead of recomputing it.
        """
        if self._cache is None:
            raise RuntimeError("probabilities read before forward")
        return self._cache[0]


class MeanSquaredError(Loss):
    """Mean squared error for regression-style outputs."""

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None
        self._size_norm: int | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"prediction shape {predictions.shape} != target shape {targets.shape}"
            )
        self._cache = (predictions, targets)
        return float(np.mean((predictions - targets) ** 2))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        predictions, targets = self._cache
        return 2.0 * (predictions - targets) / predictions.size

    def forward_rows(
        self, predictions: np.ndarray, targets: np.ndarray, total_rows: int
    ) -> float:
        """Squared error of a row block, normalised by the full batch's size."""
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"prediction shape {predictions.shape} != target shape {targets.shape}"
            )
        if predictions.ndim < 1 or total_rows < predictions.shape[0]:
            raise ValueError(
                f"total_rows {total_rows} < block rows of {predictions.shape}"
            )
        per_row = predictions[0].size if predictions.shape[0] else 0
        self._cache = (predictions, targets)
        self._size_norm = total_rows * max(per_row, 1)
        return float(((predictions - targets) ** 2).sum() / self._size_norm)

    def backward_rows(self) -> np.ndarray:
        if self._cache is None or self._size_norm is None:
            raise RuntimeError("backward_rows called before forward_rows")
        predictions, targets = self._cache
        return 2.0 * (predictions - targets) / self._size_norm
