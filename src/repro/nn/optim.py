"""Gradient-descent optimisers operating on :class:`~repro.nn.layers.Parameter`."""

from __future__ import annotations

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser: owns a parameter list and applies updates in place."""

    def __init__(self, parameters: list[Parameter], learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.parameters = list(parameters)
        self.learning_rate = learning_rate

    def zero_grad(self) -> None:
        """Clear every parameter's accumulated gradient."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def slot_arrays(self) -> dict[str, list[np.ndarray]]:
        """Per-parameter optimiser slot tensors, keyed by slot name.

        Each value is a list aligned with :attr:`parameters`; subclasses
        override.  Resuming a run from a checkpoint restores these exactly --
        momentum / moment estimates are part of the parameter trajectory.
        """
        return {}

    def state_dict(self) -> dict:
        """Optimiser state in checkpoint form (slot tensors + step counter)."""
        return {
            "type": type(self).__name__.lower(),
            "slots": {
                slot: [array.copy() for array in arrays]
                for slot, arrays in self.slot_arrays().items()
            },
            "step_count": getattr(self, "_step_count", 0),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict` (exact, in place)."""
        if state.get("type") != type(self).__name__.lower():
            raise ValueError(
                f"optimizer state is for {state.get('type')!r}, "
                f"this optimizer is {type(self).__name__.lower()!r}"
            )
        slots = self.slot_arrays()
        saved = state.get("slots", {})
        if set(saved) != set(slots):
            raise ValueError(
                f"optimizer slots do not match: checkpoint {sorted(saved)}, "
                f"optimizer {sorted(slots)}"
            )
        for slot, arrays in slots.items():
            stored = saved[slot]
            if len(stored) != len(arrays):
                raise ValueError(
                    f"slot {slot!r} carries {len(stored)} tensors for "
                    f"{len(arrays)} parameters"
                )
            for array, value in zip(arrays, stored):
                if array.shape != value.shape:
                    raise ValueError(
                        f"slot {slot!r} shape mismatch: checkpoint "
                        f"{value.shape}, optimizer {array.shape}"
                    )
                array[...] = value
        if hasattr(self, "_step_count"):
            self._step_count = int(state.get("step_count", 0))


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def slot_arrays(self) -> dict[str, list[np.ndarray]]:
        return {"velocity": self._velocity}

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.value -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]

    def slot_arrays(self) -> dict[str, list[np.ndarray]]:
        return {"m": self._m, "v": self._v}

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
