"""Functional building blocks: im2col convolution, pooling, softmax.

These are the raw array operations behind the layer classes in
:mod:`repro.nn.layers`.  They are deliberately free of state so that both the
deterministic DNN layers and the Bayesian layers (which re-sample their weights
per Monte-Carlo sample) can share the exact same arithmetic.
"""

from __future__ import annotations

import numpy as np

from .tensor_utils import check_4d, conv_output_size

__all__ = [
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "avgpool2d_forward",
    "avgpool2d_backward",
    "softmax",
    "relu",
    "relu_grad",
]


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Unfold ``(N, C, H, W)`` into ``(N * out_h * out_w, C * kernel * kernel)``.

    Returns the column matrix and the output spatial dimensions.  This is the
    standard lowering that turns convolution into one large matrix multiply,
    mirroring how the PE arrays in the modelled accelerators consume a stream
    of (input window, weight) pairs.
    """
    check_4d(x)
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    if padding:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    cols = np.empty(
        (batch, channels, kernel, kernel, out_h, out_w), dtype=x.dtype
    )
    for row in range(kernel):
        row_end = row + stride * out_h
        for col in range(kernel):
            col_end = col + stride * out_w
            cols[:, :, row, col, :, :] = x[:, :, row:row_end:stride, col:col_end:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, channels * kernel * kernel
    )
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold a column matrix back into an ``(N, C, H, W)`` tensor (adjoint of im2col)."""
    batch, channels, height, width = x_shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    cols = cols.reshape(batch, out_h, out_w, channels, kernel, kernel).transpose(
        0, 3, 4, 5, 1, 2
    )
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype
    )
    for row in range(kernel):
        row_end = row + stride * out_h
        for col in range(kernel):
            col_end = col + stride * out_w
            padded[:, :, row:row_end:stride, col:col_end:stride] += cols[:, :, row, col, :, :]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d_forward(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, np.ndarray]:
    """2-D convolution.  Returns the output and the cached column matrix.

    ``weights`` has shape ``(M, N, K, K)`` -- output channels, input channels,
    kernel height, kernel width -- matching the 7-dimension loop of Fig. 1(b).
    """
    out_channels, in_channels, k_h, k_w = weights.shape
    if k_h != k_w:
        raise ValueError("only square kernels are supported")
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but the kernel expects {in_channels}"
        )
    cols, out_h, out_w = im2col(x, k_h, stride, padding)
    flat_weights = weights.reshape(out_channels, -1)
    out = cols @ flat_weights.T
    if bias is not None:
        out += bias
    batch = x.shape[0]
    out = out.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
    return out, cols


def conv2d_backward(
    grad_out: np.ndarray,
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    weights: np.ndarray,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_input, grad_weights, grad_bias)``.  The input gradient is
    the transposed convolution the paper's BW stage performs with 180-degree
    rotated kernels; lowering through the column matrix realises the same
    arithmetic.
    """
    out_channels = weights.shape[0]
    kernel = weights.shape[2]
    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, out_channels)
    grad_weights = (grad_flat.T @ cols).reshape(weights.shape)
    grad_bias = grad_flat.sum(axis=0)
    grad_cols = grad_flat @ weights.reshape(out_channels, -1)
    grad_input = col2im(grad_cols, x_shape, kernel, stride, padding)
    return grad_input, grad_weights, grad_bias


def maxpool2d_forward(
    x: np.ndarray, pool: int, stride: int
) -> tuple[np.ndarray, np.ndarray]:
    """Max pooling.  Returns the output and the argmax mask needed for backward."""
    check_4d(x)
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, pool, stride, 0)
    out_w = conv_output_size(width, pool, stride, 0)
    windows = np.empty((batch, channels, out_h, out_w, pool * pool), dtype=x.dtype)
    for row in range(pool):
        for col in range(pool):
            windows[..., row * pool + col] = x[
                :, :, row : row + stride * out_h : stride, col : col + stride * out_w : stride
            ]
    argmax = windows.argmax(axis=-1)
    out = np.take_along_axis(windows, argmax[..., None], axis=-1)[..., 0]
    return out, argmax


def maxpool2d_backward(
    grad_out: np.ndarray,
    argmax: np.ndarray,
    x_shape: tuple[int, int, int, int],
    pool: int,
    stride: int,
) -> np.ndarray:
    """Scatter the output gradient back to the argmax positions."""
    batch, channels, height, width = x_shape
    grad_input = np.zeros(x_shape, dtype=grad_out.dtype)
    out_h, out_w = grad_out.shape[2], grad_out.shape[3]
    rows = argmax // pool
    cols = argmax % pool
    base_r = np.arange(out_h)[None, None, :, None] * stride
    base_c = np.arange(out_w)[None, None, None, :] * stride
    abs_r = base_r + rows
    abs_c = base_c + cols
    batch_idx = np.arange(batch)[:, None, None, None]
    chan_idx = np.arange(channels)[None, :, None, None]
    np.add.at(grad_input, (batch_idx, chan_idx, abs_r, abs_c), grad_out)
    return grad_input


def avgpool2d_forward(x: np.ndarray, pool: int, stride: int) -> np.ndarray:
    """Average pooling over non-overlapping (or strided) windows."""
    check_4d(x)
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, pool, stride, 0)
    out_w = conv_output_size(width, pool, stride, 0)
    out = np.zeros((batch, channels, out_h, out_w), dtype=x.dtype)
    for row in range(pool):
        for col in range(pool):
            out += x[
                :, :, row : row + stride * out_h : stride, col : col + stride * out_w : stride
            ]
    return out / (pool * pool)


def avgpool2d_backward(
    grad_out: np.ndarray, x_shape: tuple[int, int, int, int], pool: int, stride: int
) -> np.ndarray:
    """Spread the output gradient uniformly over each pooling window."""
    grad_input = np.zeros(x_shape, dtype=grad_out.dtype)
    out_h, out_w = grad_out.shape[2], grad_out.shape[3]
    share = grad_out / (pool * pool)
    for row in range(pool):
        for col in range(pool):
            grad_input[
                :, :, row : row + stride * out_h : stride, col : col + stride * out_w : stride
            ] += share
    return grad_input


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically-stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    """Gradient of ReLU with respect to its input."""
    return grad_out * (x > 0.0)
