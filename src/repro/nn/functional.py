"""Functional building blocks: im2col convolution, pooling, softmax.

These are the raw array operations behind the layer classes in
:mod:`repro.nn.layers`.  They are deliberately free of state so that both the
deterministic DNN layers and the Bayesian layers (which re-sample their weights
per Monte-Carlo sample) can share the exact same arithmetic.

**Sample-axis conventions.**  The batched Monte-Carlo pipeline carries an
extra leading sample axis ``S`` through the network: activations travel
*folded* as ``(S * batch, ...)`` (so element-wise layers and im2col work
unchanged), while per-sample weight tensors are ``(S, *weight_shape)``.  The
``*_samples`` helpers here consume that layout.  Matrix products are computed
with one 2-D matmul per sample (:func:`sample_matmul`) rather than a stacked
3-D matmul: each sample's operands are then byte-identical to the sequential
path's, which is what guarantees the bit-exact batched/sequential equivalence
the Fig. 9 experiments rely on.
"""

from __future__ import annotations

import numpy as np

from ..core import stability as _stability
from ..core.backend import dispatch
from .tensor_utils import check_4d, conv_output_size

_im2col_kernel = dispatch("im2col")
_sample_matmul_kernel = dispatch("sample_matmul")
# Tile-fused variants: active only inside a `stability.folded_splits` context
# (the serving executor opens one around a fused multi-request forward).
# Their `fused` backends consult the row-stability probe per shape class and
# fall back to per-request-block computation -- bit-exact by construction --
# wherever the probe rejects the folded GEMM.
_fused_im2col_kernel = dispatch("fused_im2col")
_fused_sample_matmul_kernel = dispatch("fused_sample_matmul")

__all__ = [
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "conv2d_forward_samples",
    "conv2d_backward_samples",
    "sample_matmul",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "avgpool2d_forward",
    "avgpool2d_backward",
    "softmax",
    "softmax_into",
    "relu",
    "relu_grad",
]


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Unfold ``(N, C, H, W)`` into ``(N * out_h * out_w, C * kernel * kernel)``.

    Returns the column matrix and the output spatial dimensions.  This is the
    standard lowering that turns convolution into one large matrix multiply,
    mirroring how the PE arrays in the modelled accelerators consume a stream
    of (input window, weight) pairs.  The gather itself is a registered
    dispatch point (``im2col`` in :mod:`repro.core.backend`); every eligible
    backend is pure, bit-identical data movement.
    """
    check_4d(x)
    _, _, height, width = x.shape
    # Validate the window geometry up front (raises on collapsed outputs);
    # the dispatched kernels recompute the same sizes arithmetically.
    conv_output_size(height, kernel, stride, padding)
    conv_output_size(width, kernel, stride, padding)
    return _im2col_kernel(x, kernel, stride, padding)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold a column matrix back into an ``(N, C, H, W)`` tensor (adjoint of im2col)."""
    batch, channels, height, width = x_shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    cols = cols.reshape(batch, out_h, out_w, channels, kernel, kernel).transpose(
        0, 3, 4, 5, 1, 2
    )
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype
    )
    for row in range(kernel):
        row_end = row + stride * out_h
        for col in range(kernel):
            col_end = col + stride * out_w
            padded[:, :, row:row_end:stride, col:col_end:stride] += cols[:, :, row, col, :, :]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d_forward(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, np.ndarray]:
    """2-D convolution.  Returns the output and the cached column matrix.

    ``weights`` has shape ``(M, N, K, K)`` -- output channels, input channels,
    kernel height, kernel width -- matching the 7-dimension loop of Fig. 1(b).
    """
    out_channels, in_channels, k_h, k_w = weights.shape
    if k_h != k_w:
        raise ValueError("only square kernels are supported")
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but the kernel expects {in_channels}"
        )
    cols, out_h, out_w = im2col(x, k_h, stride, padding)
    flat_weights = weights.reshape(out_channels, -1)
    out = cols @ flat_weights.T
    if bias is not None:
        out += bias
    batch = x.shape[0]
    out = out.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
    return out, cols


def conv2d_backward(
    grad_out: np.ndarray,
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    weights: np.ndarray,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_input, grad_weights, grad_bias)``.  The input gradient is
    the transposed convolution the paper's BW stage performs with 180-degree
    rotated kernels; lowering through the column matrix realises the same
    arithmetic.
    """
    out_channels = weights.shape[0]
    kernel = weights.shape[2]
    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, out_channels)
    grad_weights = (grad_flat.T @ cols).reshape(weights.shape)
    grad_bias = grad_flat.sum(axis=0)
    grad_cols = grad_flat @ weights.reshape(out_channels, -1)
    grad_input = col2im(grad_cols, x_shape, kernel, stride, padding)
    return grad_input, grad_weights, grad_bias


def sample_matmul(
    a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Per-sample matrix product over a leading Monte-Carlo sample axis.

    ``a`` is ``(S, m, k)`` (or a shared ``(m, k)`` broadcast to every sample)
    and ``b`` is ``(S, k, n)``; the result is ``(S, m, n)`` with
    ``result[s] = a[s] @ b[s]``.  The product is computed as ``S`` separate
    2-D matmuls so each slice is bit-identical to the sequential per-sample
    call -- a stacked 3-D matmul may take a different BLAS path and is not
    guaranteed to round identically.  The loop body is a registered dispatch
    point (``sample_matmul`` in :mod:`repro.core.backend`) whose conformance
    gate enforces exactly that byte-identity.
    """
    if b.ndim != 3:
        raise ValueError(f"b must be (S, k, n), got shape {b.shape}")
    n_samples = b.shape[0]
    shared_a = a.ndim == 2
    if not shared_a and a.shape[0] != n_samples:
        raise ValueError(
            f"sample axes disagree: a has {a.shape[0]}, b has {n_samples}"
        )
    if out is None:
        out = np.empty(
            (n_samples, a.shape[-2], b.shape[-1]),
            dtype=np.result_type(a, b),
        )
    splits = _stability.scaled_active_splits(a.shape[-2])
    if splits is not None:
        return _fused_sample_matmul_kernel(a, b, out, splits)
    return _sample_matmul_kernel(a, b, out)


def conv2d_forward_samples(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
    n_samples: int,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Batched-sample 2-D convolution over folded activations.

    ``x`` is the folded ``(S * batch, C, H, W)`` input and ``weights`` the
    per-sample kernels ``(S, M, C, K, K)``.  The im2col lowering and matrix
    product run per sample over the folded slices -- each sample's column
    matrix then goes through exactly :func:`conv2d_forward`'s arithmetic (and
    stays cache-resident between the lowering and its matmul, which a single
    whole-batch im2col copy would not).  Returns the folded output
    ``(S * batch, M, out_h, out_w)`` and the per-sample column matrices for
    the backward pass.
    """
    if weights.ndim != 5 or weights.shape[0] != n_samples:
        raise ValueError(
            f"weights must be (S, M, C, K, K) with S={n_samples}, "
            f"got shape {weights.shape}"
        )
    _, out_channels, in_channels, k_h, k_w = weights.shape
    if k_h != k_w:
        raise ValueError("only square kernels are supported")
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but the kernel expects {in_channels}"
        )
    if x.shape[0] % n_samples:
        raise ValueError(
            f"folded batch of {x.shape[0]} does not divide into {n_samples} samples"
        )
    batch = x.shape[0] // n_samples
    flat_weights = weights.reshape(n_samples, out_channels, -1)
    # inside a fused tile, each request owns `splits[i]` of the `batch` items
    # per sample; the column matrix scales every span by out_h * out_w
    splits = _stability.scaled_active_splits(batch)
    cols_per_sample: list[np.ndarray] = []
    out: np.ndarray | None = None
    for s in range(n_samples):
        if splits is None:
            cols_s, out_h, out_w = im2col(
                x[s * batch : (s + 1) * batch], k_h, stride, padding
            )
            cols_per_sample.append(cols_s)
            out_s = cols_s @ flat_weights[s].T
        else:
            cols_s, out_h, out_w = _fused_im2col_kernel(
                x[s * batch : (s + 1) * batch], k_h, stride, padding, splits
            )
            cols_per_sample.append(cols_s)
            col_splits = tuple(rows * out_h * out_w for rows in splits)
            out_s = np.empty(
                (cols_s.shape[0], out_channels),
                dtype=np.result_type(cols_s.dtype, flat_weights.dtype),
            )
            _fused_sample_matmul_kernel(
                cols_s[None], flat_weights[s][None], out_s[None],
                col_splits, trans_b=True,
            )
        if bias is not None:
            out_s += bias
        if out is None:
            # NHWC storage with an NCHW transposed view, exactly like
            # conv2d_forward returns -- the per-sample fill is then a straight
            # contiguous copy instead of a strided scatter.
            out = np.empty(
                (x.shape[0], out_h, out_w, out_channels), dtype=out_s.dtype
            )
        out[s * batch : (s + 1) * batch] = out_s.reshape(
            batch, out_h, out_w, out_channels
        )
    assert out is not None
    return out.transpose(0, 3, 1, 2), cols_per_sample


def conv2d_backward_samples(
    grad_out: np.ndarray,
    cols: list[np.ndarray],
    x_shape: tuple[int, int, int, int],
    weights: np.ndarray,
    stride: int,
    padding: int,
    n_samples: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`conv2d_forward_samples`.

    ``cols`` is the per-sample column-matrix list the forward pass cached.
    Returns ``(grad_input, grad_weights, grad_bias)`` where ``grad_input`` is
    folded ``(S * batch, C, H, W)``, ``grad_weights`` is per-sample
    ``(S, M, C, K, K)`` and ``grad_bias`` is ``(S, M)`` -- callers accumulate
    the per-sample slices in sample order to match the sequential trainers'
    float summation order exactly.
    """
    out_channels = weights.shape[1]
    kernel = weights.shape[3]
    batch = grad_out.shape[0] // n_samples
    sample_x_shape = (batch,) + tuple(x_shape[1:])
    grad_weights = np.empty(weights.shape, dtype=np.result_type(grad_out, weights))
    grad_bias = np.empty((n_samples, out_channels), dtype=grad_weights.dtype)
    grad_input: np.ndarray | None = None
    flat_weights = weights.reshape(n_samples, out_channels, -1)
    for s in range(n_samples):
        grad_flat = (
            grad_out[s * batch : (s + 1) * batch]
            .transpose(0, 2, 3, 1)
            .reshape(-1, out_channels)
        )
        grad_weights[s] = (grad_flat.T @ cols[s]).reshape(weights.shape[1:])
        grad_bias[s] = grad_flat.sum(axis=0)
        grad_cols = grad_flat @ flat_weights[s]
        grad_input_s = col2im(grad_cols, sample_x_shape, kernel, stride, padding)
        if grad_input is None:
            grad_input = np.empty(tuple(x_shape), dtype=grad_input_s.dtype)
        grad_input[s * batch : (s + 1) * batch] = grad_input_s
    assert grad_input is not None
    return grad_input, grad_weights, grad_bias


def maxpool2d_forward(
    x: np.ndarray, pool: int, stride: int
) -> tuple[np.ndarray, np.ndarray]:
    """Max pooling.  Returns the output and the argmax mask needed for backward."""
    check_4d(x)
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, pool, stride, 0)
    out_w = conv_output_size(width, pool, stride, 0)
    windows = np.empty((batch, channels, out_h, out_w, pool * pool), dtype=x.dtype)
    for row in range(pool):
        for col in range(pool):
            windows[..., row * pool + col] = x[
                :, :, row : row + stride * out_h : stride, col : col + stride * out_w : stride
            ]
    argmax = windows.argmax(axis=-1)
    out = np.take_along_axis(windows, argmax[..., None], axis=-1)[..., 0]
    return out, argmax


def maxpool2d_backward(
    grad_out: np.ndarray,
    argmax: np.ndarray,
    x_shape: tuple[int, int, int, int],
    pool: int,
    stride: int,
) -> np.ndarray:
    """Scatter the output gradient back to the argmax positions."""
    batch, channels, height, width = x_shape
    grad_input = np.zeros(x_shape, dtype=grad_out.dtype)
    out_h, out_w = grad_out.shape[2], grad_out.shape[3]
    rows = argmax // pool
    cols = argmax % pool
    base_r = np.arange(out_h)[None, None, :, None] * stride
    base_c = np.arange(out_w)[None, None, None, :] * stride
    abs_r = base_r + rows
    abs_c = base_c + cols
    batch_idx = np.arange(batch)[:, None, None, None]
    chan_idx = np.arange(channels)[None, :, None, None]
    np.add.at(grad_input, (batch_idx, chan_idx, abs_r, abs_c), grad_out)
    return grad_input


def avgpool2d_forward(x: np.ndarray, pool: int, stride: int) -> np.ndarray:
    """Average pooling over non-overlapping (or strided) windows."""
    check_4d(x)
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, pool, stride, 0)
    out_w = conv_output_size(width, pool, stride, 0)
    out = np.zeros((batch, channels, out_h, out_w), dtype=x.dtype)
    for row in range(pool):
        for col in range(pool):
            out += x[
                :, :, row : row + stride * out_h : stride, col : col + stride * out_w : stride
            ]
    return out / (pool * pool)


def avgpool2d_backward(
    grad_out: np.ndarray, x_shape: tuple[int, int, int, int], pool: int, stride: int
) -> np.ndarray:
    """Spread the output gradient uniformly over each pooling window."""
    grad_input = np.zeros(x_shape, dtype=grad_out.dtype)
    out_h, out_w = grad_out.shape[2], grad_out.shape[3]
    share = grad_out / (pool * pool)
    for row in range(pool):
        for col in range(pool):
            grad_input[
                :, :, row : row + stride * out_h : stride, col : col + stride * out_w : stride
            ] += share
    return grad_input


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically-stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def softmax_into(logits: np.ndarray, out: np.ndarray) -> np.ndarray:
    """:func:`softmax` written into a caller-provided buffer.

    Performs the identical sequence of element-wise operations (subtract the
    row maximum, exponentiate, divide by the row sum), so the result is
    bit-identical to :func:`softmax`; the only difference is that every stage
    lands in ``out`` instead of a fresh temporary.  The serving tile executor
    uses this to reuse one scratch buffer across tiles instead of allocating
    three intermediates per request.
    """
    if out.shape != logits.shape:
        raise ValueError(
            f"out shape {out.shape} does not match logits shape {logits.shape}"
        )
    expected = (
        logits.dtype
        if np.issubdtype(logits.dtype, np.floating)
        else np.dtype(np.float64)
    )
    if out.dtype != expected:
        raise ValueError(
            f"out dtype {out.dtype} would not be bit-identical to the "
            f"softmax result dtype {expected}"
        )
    np.subtract(logits, logits.max(axis=-1, keepdims=True), out=out)
    np.exp(out, out=out)
    np.divide(out, out.sum(axis=-1, keepdims=True), out=out)
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    """Gradient of ReLU with respect to its input."""
    return grad_out * (x > 0.0)
