"""Deterministic (non-Bayesian) layers of the NumPy substrate.

These layers implement the classical DNN counterparts of the Bayesian layers
in :mod:`repro.bnn.bayes_layers`.  They are used for three purposes:

* as the non-Bayesian baselines that Fig. 2 of the paper normalises against;
* as building blocks inside Bayesian layers (the convolution arithmetic is
  identical once a weight sample has been drawn);
* for the substrate's own test suite (gradient checks, training sanity runs).

Every layer follows the same protocol: ``forward(x)`` caches what backward
needs, ``backward(grad)`` returns the gradient w.r.t. the input and fills
``grads`` for each entry of ``params``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import functional as F
from .initializers import HeNormal, Initializer, Zeros
from .tensor_utils import check_2d, check_4d, conv_output_size

__all__ = [
    "Parameter",
    "Layer",
    "Dense",
    "Conv2D",
    "ReLU",
    "Flatten",
    "MaxPool2D",
    "AvgPool2D",
    "Dropout",
]


@dataclass
class Parameter:
    """A named trainable array with its accumulated gradient."""

    name: str
    value: np.ndarray
    grad: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient in place."""
        self.grad.fill(0.0)

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return int(self.value.size)


class Layer:
    """Base class for all layers (deterministic and Bayesian)."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__
        self.training = True

    # -- protocol ------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """Trainable parameters of this layer (empty for stateless layers)."""
        return []

    # -- convenience ----------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> None:
        """Enable training-time behaviour (e.g. dropout)."""
        self.training = True

    def eval(self) -> None:
        """Enable inference-time behaviour."""
        self.training = False

    @property
    def parameter_count(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(param.size for param in self.parameters())

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class Dense(Layer):
    """Fully-connected layer ``y = x W + b`` with input shape ``(N, in)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight_init: Initializer | None = None,
        bias: bool = True,
        name: str | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        if in_features < 1 or out_features < 1:
            raise ValueError("feature counts must be positive")
        rng = rng or np.random.default_rng(0)
        weight_init = weight_init or HeNormal()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter("weight", weight_init((in_features, out_features), rng))
        self.bias = Parameter("bias", Zeros()((out_features,), rng)) if bias else None
        self._cache_input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        check_2d(x)
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} input features, got {x.shape[1]}"
            )
        self._cache_input = x
        out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        x = self._cache_input
        self.weight.grad += x.T @ grad_out
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.value.T

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params


class Conv2D(Layer):
    """2-D convolution over ``(N, C, H, W)`` inputs with square kernels."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        weight_init: Initializer | None = None,
        bias: bool = True,
        name: str | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ValueError("invalid convolution geometry")
        rng = rng or np.random.default_rng(0)
        weight_init = weight_init or HeNormal()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter("weight", weight_init(shape, rng))
        self.bias = Parameter("bias", Zeros()((out_channels,), rng)) if bias else None
        self._cache: tuple[np.ndarray, tuple[int, int, int, int]] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        check_4d(x)
        bias_value = self.bias.value if self.bias is not None else None
        out, cols = F.conv2d_forward(
            x, self.weight.value, bias_value, self.stride, self.padding
        )
        self._cache = (cols, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        cols, x_shape = self._cache
        grad_in, grad_w, grad_b = F.conv2d_backward(
            grad_out, cols, x_shape, self.weight.value, self.stride, self.padding
        )
        self.weight.grad += grad_w
        if self.bias is not None:
            self.bias.grad += grad_b
        return grad_in

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: tuple[int, int, int]) -> tuple[int, int, int]:
        """Spatial output shape ``(C, H, W)`` for a given input shape."""
        _, height, width = input_shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)


class ReLU(Layer):
    """Element-wise rectifier."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._cache_input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache_input = x
        return F.relu(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        return F.relu_grad(self._cache_input, grad_out)


class Flatten(Layer):
    """Reshape ``(N, C, H, W)`` activations to ``(N, C*H*W)``."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._cache_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_shape is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        return grad_out.reshape(self._cache_shape)


class MaxPool2D(Layer):
    """Max pooling with a square window."""

    def __init__(self, pool_size: int, stride: int | None = None, name: str | None = None) -> None:
        super().__init__(name)
        if pool_size < 1:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self.stride = stride or pool_size
        self._cache: tuple[np.ndarray, tuple[int, int, int, int]] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, argmax = F.maxpool2d_forward(x, self.pool_size, self.stride)
        self._cache = (argmax, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        argmax, x_shape = self._cache
        return F.maxpool2d_backward(grad_out, argmax, x_shape, self.pool_size, self.stride)


class AvgPool2D(Layer):
    """Average pooling with a square window."""

    def __init__(self, pool_size: int, stride: int | None = None, name: str | None = None) -> None:
        super().__init__(name)
        if pool_size < 1:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self.stride = stride or pool_size
        self._cache_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache_shape = x.shape
        return F.avgpool2d_forward(x, self.pool_size, self.stride)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_shape is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        return F.avgpool2d_backward(grad_out, self._cache_shape, self.pool_size, self.stride)


class Dropout(Layer):
    """Inverted dropout; a no-op in evaluation mode.

    Dropout randomness uses an internal seeded generator so results are
    reproducible and independent of the Bayesian sampling streams.
    """

    def __init__(self, rate: float, seed: int = 0, name: str | None = None) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._cache_mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._cache_mask = None
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep) / keep
        self._cache_mask = mask
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_mask is None:
            return grad_out
        return grad_out * self._cache_mask
