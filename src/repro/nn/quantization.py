"""Fixed-point quantisation used for the low-precision training study (Table 1).

The accelerators in the paper run a 16-bit fixed-point datapath; Table 1
compares validation accuracy when the whole training pipeline is run at 8, 16
and 32 bits.  This module provides a deterministic symmetric fixed-point
quantiser (``Qm.n`` style) and a :class:`QuantizationConfig` that the Bayesian
trainer applies to weights, activations and gradients.

The 8-bit configuration reproduces the paper's observation that deep models
"hardly converge" at that precision: with only a handful of fractional bits the
small variational gradients underflow to zero and the sampled weights collapse
onto a coarse grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedPointFormat", "QuantizationConfig", "quantize"]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed fixed-point format with ``integer_bits`` + ``fraction_bits`` + sign."""

    integer_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 0 or self.fraction_bits < 0:
            raise ValueError("bit counts must be non-negative")
        if self.total_bits < 2:
            raise ValueError("a fixed-point format needs at least 2 bits")

    @property
    def total_bits(self) -> int:
        """Word length including the sign bit."""
        return self.integer_bits + self.fraction_bits + 1

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0**-self.fraction_bits

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (2.0**self.integer_bits) - self.scale

    @property
    def min_value(self) -> float:
        """Most negative representable value."""
        return -(2.0**self.integer_bits)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round to the nearest representable value and saturate."""
        scaled = np.round(np.asarray(values, dtype=np.float64) / self.scale) * self.scale
        return np.clip(scaled, self.min_value, self.max_value)


#: Word-length presets matching Table 1 of the paper.  32-bit is treated as
#: full precision (no quantisation); 16-bit keeps enough fractional bits for
#: gradients; 8-bit leaves so few that deep-model training underflows.
_PRESETS: dict[int, FixedPointFormat | None] = {
    8: FixedPointFormat(integer_bits=2, fraction_bits=5),
    16: FixedPointFormat(integer_bits=5, fraction_bits=10),
    32: None,
}


def quantize(values: np.ndarray, fmt: FixedPointFormat | None) -> np.ndarray:
    """Quantise ``values`` to ``fmt``; pass-through when ``fmt`` is ``None``."""
    if fmt is None:
        return np.asarray(values, dtype=np.float64)
    return fmt.quantize(values)


@dataclass(frozen=True)
class QuantizationConfig:
    """What the trainer quantises and to which format.

    A configuration quantises the sampled weights (the values entering the
    MACs), the layer activations, and the parameter gradients before the
    optimiser step -- the three datapaths of the modelled accelerator.
    """

    weight_format: FixedPointFormat | None = None
    activation_format: FixedPointFormat | None = None
    gradient_format: FixedPointFormat | None = None

    @classmethod
    def full_precision(cls) -> "QuantizationConfig":
        """No quantisation anywhere (the 32-bit row of Table 1)."""
        return cls()

    @classmethod
    def from_word_length(cls, bits: int) -> "QuantizationConfig":
        """Build the preset configuration for an 8-, 16- or 32-bit datapath."""
        if bits not in _PRESETS:
            raise ValueError(f"unsupported word length {bits}; choose from {sorted(_PRESETS)}")
        fmt = _PRESETS[bits]
        return cls(weight_format=fmt, activation_format=fmt, gradient_format=fmt)

    @property
    def is_identity(self) -> bool:
        """True when no datapath is quantised."""
        return (
            self.weight_format is None
            and self.activation_format is None
            and self.gradient_format is None
        )

    def quantize_weights(self, values: np.ndarray) -> np.ndarray:
        """Quantise sampled weights (and the reconstructed weights in BW)."""
        return quantize(values, self.weight_format)

    def quantize_activations(self, values: np.ndarray) -> np.ndarray:
        """Quantise layer outputs before they feed the next layer."""
        return quantize(values, self.activation_format)

    def quantize_gradients(self, values: np.ndarray) -> np.ndarray:
        """Quantise parameter gradients before the optimiser consumes them."""
        return quantize(values, self.gradient_format)
