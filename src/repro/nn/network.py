"""Sequential container for the NumPy substrate."""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .layers import Layer, Parameter

__all__ = ["Sequential"]


class Sequential(Layer):
    """An ordered chain of layers executed front to back.

    The container behaves like a layer itself, so Bayesian models and plain
    DNNs can nest it freely.  ``backward`` walks the chain in reverse, which is
    exactly the layer-level reversal the paper exploits for pattern retrieval.
    """

    def __init__(self, layers: Iterable[Layer], name: str | None = None) -> None:
        super().__init__(name)
        self.layers = list(layers)
        if not self.layers:
            raise ValueError("a Sequential model needs at least one layer")

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def train(self) -> None:
        super().train()
        for layer in self.layers:
            layer.train()

    def eval(self) -> None:
        super().eval()
        for layer in self.layers:
            layer.eval()

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]

    def summary(self) -> str:
        """Human-readable per-layer parameter summary."""
        lines = [f"Sequential '{self.name}' ({self.parameter_count} parameters)"]
        for index, layer in enumerate(self.layers):
            lines.append(f"  [{index:2d}] {layer.name:<20s} params={layer.parameter_count}")
        return "\n".join(lines)
