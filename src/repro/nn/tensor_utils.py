"""Small tensor helpers shared across the NumPy neural-network substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["one_hot", "check_4d", "check_2d", "conv_output_size"]


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer class labels as one-hot rows.

    Parameters
    ----------
    labels:
        Integer array of shape ``(batch,)`` with values in ``[0, num_classes)``.
    num_classes:
        Width of the encoding.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def check_4d(x: np.ndarray, name: str = "input") -> None:
    """Require an ``(N, C, H, W)`` activation tensor."""
    if x.ndim != 4:
        raise ValueError(f"{name} must be 4-D (N, C, H, W), got shape {x.shape}")


def check_2d(x: np.ndarray, name: str = "input") -> None:
    """Require an ``(N, features)`` activation matrix."""
    if x.ndim != 2:
        raise ValueError(f"{name} must be 2-D (N, features), got shape {x.shape}")


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution / pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output collapses to {out} "
            f"(size={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out
