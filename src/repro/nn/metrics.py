"""Classification metrics, including the uncertainty metrics BNNs are used for."""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy",
    "negative_log_likelihood",
    "expected_calibration_error",
    "predictive_entropy",
]


def accuracy(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy from class probabilities (or logits) and integer labels."""
    if probabilities.ndim != 2:
        raise ValueError(f"probabilities must be 2-D, got shape {probabilities.shape}")
    predictions = probabilities.argmax(axis=1)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("probabilities and labels disagree on batch size")
    if labels.size == 0:
        return 0.0
    return float((predictions == labels).mean())


def negative_log_likelihood(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Average negative log-likelihood of the true classes."""
    labels = np.asarray(labels)
    picked = probabilities[np.arange(labels.shape[0]), labels]
    return float(-np.log(np.clip(picked, 1e-12, 1.0)).mean())


def predictive_entropy(probabilities: np.ndarray) -> np.ndarray:
    """Entropy of each predictive distribution (a standard uncertainty score).

    The class axis is the *last* one, so this works unchanged on ``(batch,
    classes)`` matrices and on stacked Monte-Carlo tensors such as
    ``(S, batch, classes)`` -- one vectorised call replaces a per-sample loop.
    """
    clipped = np.clip(probabilities, 1e-12, 1.0)
    return -(clipped * np.log(clipped)).sum(axis=-1)


def expected_calibration_error(
    probabilities: np.ndarray, labels: np.ndarray, n_bins: int = 10
) -> float:
    """Expected calibration error with equal-width confidence bins.

    BNNs are valued for calibrated uncertainty; this metric lets the examples
    compare the Bayesian predictive distribution against a point-estimate DNN.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be positive")
    labels = np.asarray(labels)
    confidences = probabilities.max(axis=1)
    predictions = probabilities.argmax(axis=1)
    correct = (predictions == labels).astype(np.float64)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    error = 0.0
    total = labels.shape[0]
    for low, high in zip(edges[:-1], edges[1:]):
        mask = (confidences > low) & (confidences <= high)
        if not mask.any():
            continue
        bin_confidence = confidences[mask].mean()
        bin_accuracy = correct[mask].mean()
        error += (mask.sum() / total) * abs(bin_confidence - bin_accuracy)
    return float(error)
