"""Table 2: per-SPU resource usage and average power of the Shift-BNN design.

The reproduction's analytic resource model estimates LUT / FF / DSP / BRAM and
average power for each SPU component and places them next to the published
post-synthesis numbers so the structural claims remain checkable: GRNGs
dominate flip-flops, the PE tile and function units own the DSPs, the neuron
buffers own the BRAM and most of the power after the PE tile.
"""

from __future__ import annotations

from ..accel import PUBLISHED_TABLE_2, estimate_spu_resources, shift_bnn_accelerator
from .base import ExperimentResult

__all__ = ["run_table2"]


def run_table2() -> ExperimentResult:
    """Regenerate Table 2 (per-SPU resources, estimated vs published)."""
    report = estimate_spu_resources(shift_bnn_accelerator())
    result = ExperimentResult(
        name="table2",
        title="Table 2: per-SPU resource usage and power (estimated vs published)",
        headers=[
            "component",
            "lut_est",
            "lut_paper",
            "ff_est",
            "ff_paper",
            "dsp_est",
            "dsp_paper",
            "bram_est",
            "bram_paper",
            "power_est_W",
            "power_paper_W",
        ],
    )
    for component in report.components:
        published = PUBLISHED_TABLE_2[component.name]
        result.rows.append(
            [
                component.name,
                component.lut,
                int(published["lut"]),
                component.ff,
                int(published["ff"]),
                component.dsp,
                int(published["dsp"]),
                component.bram,
                int(published["bram"]),
                component.average_power_watts,
                published["power"],
            ]
        )
    totals = report.totals
    result.notes.append(
        f"estimated SPU totals: {totals.lut} LUT, {totals.ff} FF, {totals.dsp} DSP, "
        f"{totals.bram} BRAM, {totals.average_power_watts:.3f} W average power"
    )
    result.notes.append(
        "structure to check: GRNGs dominate FF, PE tile + function units own the DSPs, "
        "NBin/NBout own the BRAM and most of the remaining power"
    )
    return result
