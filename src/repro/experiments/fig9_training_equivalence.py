"""Fig. 9: training-quality equivalence of Shift-BNN and the stored baseline.

The paper trains B-LeNet on CIFAR-10 twice -- once with the vanilla algorithm
(epsilons stored) and once with Shift-BNN (epsilons retrieved by LFSR
reversal) -- and shows the loss and validation-accuracy curves coincide.  The
reproduction goes further: with identical seeds the two trainers consume the
*same* epsilons, so their parameter trajectories are bit-identical, which this
experiment verifies explicitly.

The functional run uses the reduced B-LeNet and the synthetic CIFAR-10
substitute (see DESIGN.md); the equivalence property does not depend on model
size or data content.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bnn import BaselineBNNTrainer, ShiftBNNTrainer, TrainerConfig, TrainingHistory
from ..datasets import BatchLoader, synthetic_cifar10
from ..models import get_model
from .base import ExperimentResult

__all__ = ["Fig9Outcome", "run_fig9"]


@dataclass
class Fig9Outcome:
    """Curves of both trainers plus the equivalence summary."""

    result: ExperimentResult
    baseline_history: TrainingHistory
    shift_history: TrainingHistory
    max_loss_difference: float
    max_parameter_difference: float


def run_fig9(
    epochs: int = 6,
    n_train: int = 256,
    n_test: int = 128,
    n_samples: int = 2,
    batch_size: int = 32,
    seed: int = 7,
    grng_stride: int = 64,
) -> Fig9Outcome:
    """Regenerate Fig. 9 (training curves, baseline vs Shift-BNN)."""
    spec = get_model("B-LeNet", reduced=True)
    image_size = spec.input_shape[1]
    train, test = synthetic_cifar10(
        n_train=n_train, n_test=n_test, image_size=image_size, seed=seed
    )
    batches = BatchLoader(train, batch_size=batch_size).batches()
    config = TrainerConfig(
        n_samples=n_samples,
        learning_rate=5e-3,
        seed=seed,
        grng_stride=grng_stride,
    )
    baseline_model = spec.build_bayesian(seed=seed)
    shift_model = spec.build_bayesian(seed=seed)
    baseline = BaselineBNNTrainer(baseline_model, config)
    shift = ShiftBNNTrainer(shift_model, config)
    validation = (test.images, test.labels)
    baseline.fit(batches, epochs=epochs, validation=validation)
    shift.fit(batches, epochs=epochs, validation=validation)

    loss_diff = float(
        np.max(np.abs(np.array(baseline.history.losses) - np.array(shift.history.losses)))
    )
    param_diff = max(
        float(np.max(np.abs(a.value - b.value)))
        for a, b in zip(baseline_model.parameters(), shift_model.parameters())
    )
    result = ExperimentResult(
        name="fig9",
        title="Fig. 9: training loss / validation accuracy, baseline vs Shift-BNN (reduced B-LeNet)",
        headers=[
            "epoch",
            "baseline_loss",
            "shift_loss",
            "baseline_val_acc",
            "shift_val_acc",
        ],
    )
    for epoch in range(epochs):
        result.rows.append(
            [
                epoch + 1,
                baseline.history.epoch_losses[epoch],
                shift.history.epoch_losses[epoch],
                baseline.history.validation_accuracies[epoch],
                shift.history.validation_accuracies[epoch],
            ]
        )
    result.notes.append(
        f"max |loss difference| across all steps: {loss_diff:.3e} "
        "(paper: curves overlap; here they are bit-identical)"
    )
    result.notes.append(
        f"max |parameter difference| after training: {param_diff:.3e}"
    )
    return Fig9Outcome(
        result=result,
        baseline_history=baseline.history,
        shift_history=shift.history,
        max_loss_difference=loss_diff,
        max_parameter_difference=param_diff,
    )
