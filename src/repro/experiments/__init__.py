"""Experiment modules: one per table / figure of the paper's evaluation."""

from .ablations import (
    run_bandwidth_sensitivity_ablation,
    run_grng_quality_ablation,
    run_spu_scaling_ablation,
)
from .base import ExperimentResult
from .dse_mappings import run_dse
from .fig2_bnn_vs_dnn import run_fig2
from .fig3_traffic_breakdown import run_fig3
from .fig9_training_equivalence import Fig9Outcome, run_fig9
from .fig10_energy import run_fig10
from .fig11_speedup import run_fig11
from .fig12_efficiency import run_fig12
from .fig13_scalability import run_fig13
from .fig14_dram_footprint import run_fig14
from .runner import ANALYTIC_EXPERIMENTS, FUNCTIONAL_EXPERIMENTS, run_all
from .table1_precision import run_table1
from .table2_resources import run_table2

__all__ = [
    "ExperimentResult",
    "run_fig2",
    "run_fig3",
    "run_fig9",
    "Fig9Outcome",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_table1",
    "run_table2",
    "run_dse",
    "run_grng_quality_ablation",
    "run_spu_scaling_ablation",
    "run_bandwidth_sensitivity_ablation",
    "run_all",
    "ANALYTIC_EXPERIMENTS",
    "FUNCTIONAL_EXPERIMENTS",
]
