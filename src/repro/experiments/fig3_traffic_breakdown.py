"""Fig. 3: breakdown of off-chip traffic by tensor class on the baseline.

On the MN baseline accelerator the Gaussian random variables dominate the
off-chip traffic (71 % on average in the paper), followed by the weight
parameters ``(mu, sigma)`` (16 %) and the input/output feature maps (12 %).
"""

from __future__ import annotations

from typing import Sequence

from ..accel import compute_traffic, mn_accelerator
from ..models import paper_models
from .base import ExperimentResult

__all__ = ["run_fig3"]


def run_fig3(
    n_samples: int = 16, model_names: Sequence[str] | None = None
) -> ExperimentResult:
    """Regenerate Fig. 3 (traffic share per tensor class, baseline accelerator)."""
    accelerator = mn_accelerator()
    models = paper_models()
    if model_names is not None:
        models = {name: models[name] for name in model_names}
    result = ExperimentResult(
        name="fig3",
        title=f"Fig. 3: off-chip traffic breakdown on the MN baseline (S={n_samples})",
        headers=[
            "model",
            "epsilon_share",
            "weight_share",
            "io_share",
            "total_GB",
        ],
    )
    epsilon_shares = []
    for name, spec in models.items():
        _, breakdown = compute_traffic(spec, n_samples, accelerator.traffic_config())
        ratios = breakdown.ratios
        epsilon_shares.append(ratios["epsilon"])
        result.rows.append(
            [
                name,
                ratios["epsilon"],
                ratios["weight"],
                ratios["io"],
                breakdown.total_bytes / 1e9,
            ]
        )
    result.notes.append(
        f"average epsilon share: {sum(epsilon_shares) / len(epsilon_shares) * 100:.1f}% "
        "(paper: 71% average; weights 16%, I/O 12%)"
    )
    return result
