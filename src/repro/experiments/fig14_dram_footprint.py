"""Fig. 14: DRAM accesses and memory footprint of the four accelerators.

With 16 samples the LFSR-reversal designs cut DRAM accesses by ~5.8x on the
epsilon-dominated B-LeNet (and ~2.6x even on the wide/deep models) and shrink
the training memory footprint by ~76 % on average, because the epsilon
component of the footprint disappears entirely.
"""

from __future__ import annotations

from typing import Sequence

from ..accel import (
    simulate_memory_footprint,
    simulate_training_iteration,
    standard_comparison_set,
)
from ..models import paper_models
from .base import ExperimentResult

__all__ = ["run_fig14"]


def run_fig14(
    n_samples: int = 16, model_names: Sequence[str] | None = None
) -> ExperimentResult:
    """Regenerate Fig. 14 (normalised DRAM accesses and footprint breakdown)."""
    accelerators = standard_comparison_set()
    models = paper_models()
    if model_names is not None:
        models = {name: models[name] for name in model_names}
    result = ExperimentResult(
        name="fig14",
        title=f"Fig. 14: DRAM accesses and memory footprint (S={n_samples}, MN-Acc = 1.0)",
        headers=[
            "model",
            "accelerator",
            "dram_accesses_norm",
            "footprint_norm",
            "footprint_weight_share",
            "footprint_epsilon_share",
            "footprint_io_share",
        ],
    )
    access_reductions = []
    footprint_reductions = []
    for name, spec in models.items():
        baseline_sim = None
        baseline_footprint = None
        for accelerator in accelerators:
            sim = simulate_training_iteration(accelerator, spec, n_samples)
            footprint = simulate_memory_footprint(accelerator, spec, n_samples)
            if accelerator.name == "MN-Acc":
                baseline_sim = sim
                baseline_footprint = footprint
            assert baseline_sim is not None and baseline_footprint is not None
            total_fp = footprint.total_bytes
            result.rows.append(
                [
                    name,
                    accelerator.name,
                    sim.dram_accesses / baseline_sim.dram_accesses,
                    total_fp / baseline_footprint.total_bytes,
                    footprint.weight_bytes / total_fp,
                    footprint.epsilon_bytes / total_fp,
                    footprint.io_bytes / total_fp,
                ]
            )
            if accelerator.name == "Shift-BNN":
                access_reductions.append(baseline_sim.dram_accesses / sim.dram_accesses)
                footprint_reductions.append(
                    1.0 - total_fp / baseline_footprint.total_bytes
                )
    result.notes.append(
        f"average DRAM-access reduction of Shift-BNN vs MN-Acc: "
        f"{sum(access_reductions) / len(access_reductions):.1f}x "
        "(paper: 5.8x on B-LeNet, 2.6x on the wide/deep models)"
    )
    result.notes.append(
        f"average footprint reduction of Shift-BNN: "
        f"{sum(footprint_reductions) / len(footprint_reductions) * 100:.1f}% "
        "(paper: 76.1% average; the epsilon footprint is eliminated entirely)"
    )
    return result
