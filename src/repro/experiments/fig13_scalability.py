"""Fig. 13: scalability of the LFSR-reversal benefit with the sample count.

Training with more Monte-Carlo samples makes the epsilon traffic an even
larger share of the total, so both the energy reduction (Shift-BNN over
RC-Acc, MNShift over MN-Acc) and the absolute energy efficiency improve as
``S`` grows from 4 to 128 -- e.g. the paper reports the B-LeNet energy saving
rising from 55.5 % at S=4 to 78.8 % at S=128.
"""

from __future__ import annotations

from typing import Sequence

from ..accel import (
    mn_accelerator,
    mnshift_accelerator,
    rc_accelerator,
    shift_bnn_accelerator,
    simulate_training_iteration,
)
from ..analysis import energy_reduction_percent
from ..models import paper_models
from .base import ExperimentResult

__all__ = ["run_fig13", "DEFAULT_SCALABILITY_SAMPLES", "DEFAULT_SCALABILITY_MODELS"]

DEFAULT_SCALABILITY_SAMPLES: tuple[int, ...] = (4, 8, 16, 32, 64, 128)
DEFAULT_SCALABILITY_MODELS: tuple[str, ...] = ("B-MLP", "B-LeNet", "B-VGG")


def run_fig13(
    sample_counts: Sequence[int] = DEFAULT_SCALABILITY_SAMPLES,
    model_names: Sequence[str] = DEFAULT_SCALABILITY_MODELS,
) -> ExperimentResult:
    """Regenerate Fig. 13 (energy reduction and efficiency vs sample count)."""
    models = paper_models()
    accel_mn = mn_accelerator()
    accel_rc = rc_accelerator()
    accel_mnshift = mnshift_accelerator()
    accel_shift = shift_bnn_accelerator()
    result = ExperimentResult(
        name="fig13",
        title="Fig. 13: energy reduction and energy efficiency vs sample count",
        headers=[
            "model",
            "samples",
            "shift_vs_rc_reduction_%",
            "mnshift_vs_mn_reduction_%",
            "shift_efficiency_gops_per_watt",
            "mnshift_efficiency_gops_per_watt",
        ],
    )
    for name in model_names:
        spec = models[name]
        for samples in sample_counts:
            sim_mn = simulate_training_iteration(accel_mn, spec, samples)
            sim_rc = simulate_training_iteration(accel_rc, spec, samples)
            sim_mnshift = simulate_training_iteration(accel_mnshift, spec, samples)
            sim_shift = simulate_training_iteration(accel_shift, spec, samples)
            result.rows.append(
                [
                    name,
                    samples,
                    energy_reduction_percent(sim_rc.energy_joules, sim_shift.energy_joules),
                    energy_reduction_percent(sim_mn.energy_joules, sim_mnshift.energy_joules),
                    sim_shift.energy_efficiency_gops_per_watt,
                    sim_mnshift.energy_efficiency_gops_per_watt,
                ]
            )
    result.notes.append(
        "paper: B-LeNet energy saving grows from 55.5% (S=4) to 78.8% (S=128); "
        "the reduction and the efficiency should increase monotonically with S"
    )
    return result
