"""Fig. 11: speedup of the four accelerator designs over the MN baseline.

The latency gains come from removing the epsilon transfers of memory-bound FC
layers: the fully-connected B-MLP speeds up the most (2.6x on average in the
paper), while the convolution-dominated B-VGG / B-ResNet see ~1.2x.  Average
Shift-BNN speedup over RC-Acc is 1.6x (up to 2.8x).
"""

from __future__ import annotations

from typing import Sequence

from ..accel import simulate_training_iteration, standard_comparison_set
from ..analysis import speedup
from ..models import paper_models
from .base import ExperimentResult

__all__ = ["run_fig11"]


def run_fig11(
    n_samples: int = 16, model_names: Sequence[str] | None = None
) -> ExperimentResult:
    """Regenerate Fig. 11 (speedup per accelerator and model, MN-Acc = 1.0)."""
    accelerators = standard_comparison_set()
    models = paper_models()
    if model_names is not None:
        models = {name: models[name] for name in model_names}
    result = ExperimentResult(
        name="fig11",
        title=f"Fig. 11: speedup over MN-Acc (S={n_samples})",
        headers=["model"]
        + [accelerator.name for accelerator in accelerators]
        + ["shift_vs_rc_speedup"],
    )
    shift_vs_rc = []
    for name, spec in models.items():
        latencies = {
            accelerator.name: simulate_training_iteration(
                accelerator, spec, n_samples
            ).latency_seconds
            for accelerator in accelerators
        }
        baseline = latencies["MN-Acc"]
        row: list[object] = [name]
        row.extend(speedup(baseline, latencies[a.name]) for a in accelerators)
        ratio = speedup(latencies["RC-Acc"], latencies["Shift-BNN"])
        shift_vs_rc.append(ratio)
        row.append(ratio)
        result.rows.append(row)
    result.notes.append(
        f"average Shift-BNN speedup vs RC-Acc: {sum(shift_vs_rc) / len(shift_vs_rc):.2f}x "
        "(paper: 1.6x average, up to 2.8x; largest on the FC-dominated B-MLP)"
    )
    return result
