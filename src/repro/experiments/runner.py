"""Run every experiment and print its table (the repo's ``run-all`` entry point).

Usage::

    python -m repro.experiments.runner            # analytic experiments only
    python -m repro.experiments.runner --full     # include functional training runs

The analytic experiments (Figs. 2, 3, 10-14, Table 2, DSE) complete in seconds;
the functional ones (Fig. 9, Table 1) train reduced models and take a few
minutes, so they are opt-in both here and in the benchmark suite.
"""

from __future__ import annotations

import argparse
from typing import Callable

from .ablations import (
    run_bandwidth_sensitivity_ablation,
    run_grng_quality_ablation,
    run_spu_scaling_ablation,
)
from .base import ExperimentResult
from .dse_mappings import run_dse
from .fig2_bnn_vs_dnn import run_fig2
from .fig3_traffic_breakdown import run_fig3
from .fig9_training_equivalence import run_fig9
from .fig10_energy import run_fig10
from .fig11_speedup import run_fig11
from .fig12_efficiency import run_fig12
from .fig13_scalability import run_fig13
from .fig14_dram_footprint import run_fig14
from .table1_precision import run_table1
from .table2_resources import run_table2

__all__ = ["ANALYTIC_EXPERIMENTS", "FUNCTIONAL_EXPERIMENTS", "run_all", "main"]

#: Fast experiments driven entirely by the analytic simulator.
ANALYTIC_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "table2": run_table2,
    "dse": run_dse,
    "ablation_grng": run_grng_quality_ablation,
    "ablation_spu": run_spu_scaling_ablation,
    "ablation_bandwidth": run_bandwidth_sensitivity_ablation,
}

#: Experiments that train reduced models functionally (minutes, not seconds).
FUNCTIONAL_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig9": lambda: run_fig9().result,
    "table1": run_table1,
}


def run_all(include_functional: bool = False) -> dict[str, ExperimentResult]:
    """Run the selected experiments and return their results keyed by name."""
    experiments = dict(ANALYTIC_EXPERIMENTS)
    if include_functional:
        experiments.update(FUNCTIONAL_EXPERIMENTS)
    return {name: build() for name, build in experiments.items()}


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="also run the functional training experiments (Fig. 9, Table 1)",
    )
    parser.add_argument(
        "--only",
        choices=sorted({**ANALYTIC_EXPERIMENTS, **FUNCTIONAL_EXPERIMENTS}),
        help="run a single experiment by name",
    )
    args = parser.parse_args(argv)
    if args.only:
        registry = {**ANALYTIC_EXPERIMENTS, **FUNCTIONAL_EXPERIMENTS}
        results = {args.only: registry[args.only]()}
    else:
        results = run_all(include_functional=args.full)
    for name, result in results.items():
        print()
        print(f"===== {name} =====")
        print(result.to_table())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
