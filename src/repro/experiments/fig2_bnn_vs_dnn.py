"""Fig. 2: BNN training cost relative to the matching DNN, versus sample count.

The paper's characterisation trains each of the five BNN models and its DNN
counterpart on the MN-mapping (Diannao-like) baseline accelerator and reports
data transfer, energy and latency normalised to the DNN.  A BNN with 8 samples
already moves ~9x more data than its DNN; with 32 samples the factor grows to
~35x, and energy/latency grow similarly.
"""

from __future__ import annotations

from typing import Sequence

from ..accel import mn_accelerator, simulate_training_iteration
from ..models import paper_models
from .base import ExperimentResult

__all__ = ["run_fig2", "DEFAULT_SAMPLE_COUNTS"]

DEFAULT_SAMPLE_COUNTS: tuple[int, ...] = (1, 8, 16, 24, 32)


def run_fig2(
    sample_counts: Sequence[int] = DEFAULT_SAMPLE_COUNTS,
    model_names: Sequence[str] | None = None,
) -> ExperimentResult:
    """Regenerate Fig. 2 (normalised data transfer / energy / latency vs S)."""
    accelerator = mn_accelerator()
    models = paper_models()
    if model_names is not None:
        models = {name: models[name] for name in model_names}
    result = ExperimentResult(
        name="fig2",
        title="Fig. 2: BNN vs DNN training cost on the MN baseline (normalised to the DNN)",
        headers=[
            "model",
            "samples",
            "data_transfer_x",
            "energy_x",
            "latency_x",
        ],
    )
    ratios_at_8 = []
    ratios_at_32 = []
    for name, spec in models.items():
        dnn = simulate_training_iteration(accelerator, spec, n_samples=1, bayesian=False)
        for samples in sample_counts:
            bnn = simulate_training_iteration(accelerator, spec, n_samples=samples)
            transfer_ratio = bnn.dram_bytes / dnn.dram_bytes
            energy_ratio = bnn.energy_joules / dnn.energy_joules
            latency_ratio = bnn.latency_seconds / dnn.latency_seconds
            result.rows.append(
                [name, samples, transfer_ratio, energy_ratio, latency_ratio]
            )
            if samples == 8:
                ratios_at_8.append(transfer_ratio)
            if samples == 32:
                ratios_at_32.append(transfer_ratio)
    if ratios_at_8:
        result.notes.append(
            f"average data-transfer blow-up at S=8: {sum(ratios_at_8) / len(ratios_at_8):.1f}x "
            "(paper: 9.1x)"
        )
    if ratios_at_32:
        result.notes.append(
            f"average data-transfer blow-up at S=32: {sum(ratios_at_32) / len(ratios_at_32):.1f}x "
            "(paper: 35.3x)"
        )
    return result
