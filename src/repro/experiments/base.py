"""Common result container shared by every experiment module."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import format_csv, format_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Tabular outcome of one experiment (one paper table or figure).

    Attributes
    ----------
    name:
        Identifier such as ``"fig3"`` or ``"table1"``.
    title:
        Human-readable description (which paper artefact it regenerates).
    headers, rows:
        The table data.
    notes:
        Free-form remarks (e.g. paper-vs-measured summary lines) that the
        runner prints below the table and EXPERIMENTS.md quotes.
    """

    name: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def to_table(self, float_format: str = ".3f") -> str:
        """Render the result as an aligned ASCII table with notes."""
        table = format_table(self.headers, self.rows, title=self.title, float_format=float_format)
        if self.notes:
            table += "\n" + "\n".join(f"  note: {note}" for note in self.notes)
        return table

    def to_csv(self) -> str:
        """Render the result rows as CSV."""
        return format_csv(self.headers, self.rows)

    def column(self, header: str) -> list[object]:
        """Extract one column by header name."""
        if header not in self.headers:
            raise KeyError(f"unknown column {header!r}; available: {self.headers}")
        index = self.headers.index(header)
        return [row[index] for row in self.rows]
