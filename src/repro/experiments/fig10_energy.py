"""Fig. 10: normalised training energy of the four accelerator designs.

Shift-BNN reduces energy by 62 % on average (up to 76 %) versus RC-Acc, 70 %
versus MN-Acc and 39 % versus MNShift-Acc in the paper; the reproduction
reports the same normalised bars (MN-Acc = 1.0) plus the pairwise reductions.
"""

from __future__ import annotations

from typing import Sequence

from ..accel import simulate_training_iteration, standard_comparison_set
from ..analysis import energy_reduction_percent
from ..models import paper_models
from .base import ExperimentResult

__all__ = ["run_fig10"]


def run_fig10(
    n_samples: int = 16, model_names: Sequence[str] | None = None
) -> ExperimentResult:
    """Regenerate Fig. 10 (normalised energy per accelerator and model)."""
    accelerators = standard_comparison_set()
    models = paper_models()
    if model_names is not None:
        models = {name: models[name] for name in model_names}
    result = ExperimentResult(
        name="fig10",
        title=f"Fig. 10: normalised training energy (S={n_samples}, MN-Acc = 1.0)",
        headers=["model"]
        + [accelerator.name for accelerator in accelerators]
        + ["shift_vs_rc_reduction_%", "shift_vs_mn_reduction_%"],
    )
    reductions_rc = []
    reductions_mn = []
    for name, spec in models.items():
        energies = {
            accelerator.name: simulate_training_iteration(
                accelerator, spec, n_samples
            ).energy_joules
            for accelerator in accelerators
        }
        baseline = energies["MN-Acc"]
        row: list[object] = [name]
        row.extend(energies[a.name] / baseline for a in accelerators)
        reduction_rc = energy_reduction_percent(energies["RC-Acc"], energies["Shift-BNN"])
        reduction_mn = energy_reduction_percent(energies["MN-Acc"], energies["Shift-BNN"])
        reductions_rc.append(reduction_rc)
        reductions_mn.append(reduction_mn)
        row.extend([reduction_rc, reduction_mn])
        result.rows.append(row)
    result.notes.append(
        f"average Shift-BNN energy reduction vs RC-Acc: {sum(reductions_rc) / len(reductions_rc):.1f}% "
        "(paper: 62% average, up to 76%)"
    )
    result.notes.append(
        f"average Shift-BNN energy reduction vs MN-Acc: {sum(reductions_mn) / len(reductions_mn):.1f}% "
        "(paper: 70% average)"
    )
    return result
