"""Ablation studies beyond the paper's figures.

DESIGN.md calls out three design choices worth sweeping that the paper fixes
by construction.  Each ablation returns the usual :class:`ExperimentResult`
table so it can be exercised by the benchmark harness and the test suite like
any other experiment.

* **GRNG width / stride** -- how many LFSR bits (and how many shifts per
  variable) are needed for the CLT approximation to deliver well-behaved
  Gaussian statistics.  The paper uses 256-bit registers and one shift per
  weight; the sweep quantifies what that buys.
* **SPU count scaling** -- the paper claims the design "scales well to larger
  sample sizes"; the sweep varies the number of Sample Processing Units and
  reports latency and efficiency at a fixed large sample count.
* **DRAM bandwidth sensitivity** -- the benefit of eliminating the epsilon
  traffic depends on how scarce bandwidth is; the sweep varies the number of
  DDR3 channels for both RC-Acc and Shift-BNN.
"""

from __future__ import annotations

from typing import Sequence

from ..accel import (
    DramChannel,
    rc_accelerator,
    shift_bnn_accelerator,
    simulate_training_iteration,
)
from ..analysis import energy_reduction_percent
from ..core import LfsrGaussianRNG
from ..models import paper_models
from .base import ExperimentResult

__all__ = [
    "run_grng_quality_ablation",
    "run_spu_scaling_ablation",
    "run_bandwidth_sensitivity_ablation",
]


def run_grng_quality_ablation(
    widths: Sequence[int] = (32, 64, 128, 256),
    strides: Sequence[int] = (1, 16, 256),
    sample_count: int = 8192,
) -> ExperimentResult:
    """Distribution quality of the CLT-based GRNG across widths and strides."""
    result = ExperimentResult(
        name="ablation_grng",
        title="Ablation: GRNG width / stride vs Gaussian quality",
        headers=["lfsr_bits", "stride", "mean", "std", "skew", "resolution"],
    )
    for width in widths:
        for stride in strides:
            stride_effective = min(stride, width)
            grng = LfsrGaussianRNG(n_bits=width, seed_index=7, stride=stride_effective)
            summary = grng.distribution_summary(count=sample_count)
            result.rows.append(
                [
                    width,
                    stride_effective,
                    summary["mean"],
                    summary["std"],
                    summary["skew"],
                    grng.resolution,
                ]
            )
    result.notes.append(
        "wider registers shrink the quantisation step (resolution = 2/sqrt(n)); "
        "larger strides decorrelate consecutive variables so the sample std "
        "approaches 1.0"
    )
    return result


def run_spu_scaling_ablation(
    spu_counts: Sequence[int] = (4, 8, 16, 32, 64),
    model_name: str = "B-LeNet",
    n_samples: int = 64,
) -> ExperimentResult:
    """Latency / efficiency of Shift-BNN as the number of SPUs grows."""
    spec = paper_models()[model_name]
    result = ExperimentResult(
        name="ablation_spu",
        title=f"Ablation: SPU count scaling ({model_name}, S={n_samples})",
        headers=[
            "n_spus",
            "latency_ms",
            "speedup_vs_4_spus",
            "energy_J",
            "efficiency_gops_per_watt",
        ],
    )
    baseline_latency = None
    for n_spus in spu_counts:
        accel = shift_bnn_accelerator(name=f"Shift-BNN-{n_spus}SPU", n_spus=n_spus)
        sim = simulate_training_iteration(accel, spec, n_samples)
        if baseline_latency is None:
            baseline_latency = sim.latency_seconds
        result.rows.append(
            [
                n_spus,
                sim.latency_seconds * 1e3,
                baseline_latency / sim.latency_seconds,
                sim.energy_joules,
                sim.energy_efficiency_gops_per_watt,
            ]
        )
    result.notes.append(
        "sample-level parallelism scales nearly linearly until the SPU count "
        "approaches the sample count or DRAM bandwidth saturates"
    )
    return result


def run_bandwidth_sensitivity_ablation(
    channel_counts: Sequence[int] = (1, 2, 4, 8),
    model_name: str = "B-VGG",
    n_samples: int = 16,
) -> ExperimentResult:
    """How the Shift-BNN advantage depends on available DRAM bandwidth."""
    spec = paper_models()[model_name]
    result = ExperimentResult(
        name="ablation_bandwidth",
        title=f"Ablation: DRAM bandwidth sensitivity ({model_name}, S={n_samples})",
        headers=[
            "dram_channels",
            "rc_latency_ms",
            "shift_latency_ms",
            "speedup",
            "energy_reduction_%",
        ],
    )
    for channels in channel_counts:
        dram = DramChannel(channels=channels)
        rc = simulate_training_iteration(rc_accelerator(dram=dram), spec, n_samples)
        shift = simulate_training_iteration(
            shift_bnn_accelerator(dram=dram), spec, n_samples
        )
        result.rows.append(
            [
                channels,
                rc.latency_seconds * 1e3,
                shift.latency_seconds * 1e3,
                rc.latency_seconds / shift.latency_seconds,
                energy_reduction_percent(rc.energy_joules, shift.energy_joules),
            ]
        )
    result.notes.append(
        "the scarcer the bandwidth, the larger the latency benefit of removing "
        "the epsilon traffic; the energy saving is bandwidth-independent"
    )
    return result
