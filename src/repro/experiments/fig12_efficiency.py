"""Fig. 12: energy efficiency (GOPS/W) of the accelerators and the P100 GPU.

Shift-BNN improves energy efficiency by 4.9x over RC-Acc, 10.3x over MN-Acc,
2.5x over MNShift-Acc and 4.7x over the Tesla P100 in the paper.  The GPU
beats the MN baseline on the larger models thanks to raw bandwidth and
parallelism, but still pays the epsilon round trip and therefore loses to the
LFSR-reversal designs.
"""

from __future__ import annotations

from typing import Sequence

from ..accel import (
    simulate_gpu_training_iteration,
    simulate_training_iteration,
    standard_comparison_set,
    tesla_p100,
)
from ..models import paper_models
from .base import ExperimentResult

__all__ = ["run_fig12"]


def run_fig12(
    n_samples: int = 16, model_names: Sequence[str] | None = None
) -> ExperimentResult:
    """Regenerate Fig. 12 (normalised energy efficiency, MN-Acc = 1.0)."""
    accelerators = standard_comparison_set()
    gpu = tesla_p100()
    models = paper_models()
    if model_names is not None:
        models = {name: models[name] for name in model_names}
    result = ExperimentResult(
        name="fig12",
        title=f"Fig. 12: normalised energy efficiency (S={n_samples}, MN-Acc = 1.0)",
        headers=["model"]
        + [accelerator.name for accelerator in accelerators]
        + ["GPU", "shift_vs_rc_x", "shift_vs_gpu_x"],
    )
    ratios_rc = []
    ratios_gpu = []
    for name, spec in models.items():
        efficiencies = {
            accelerator.name: simulate_training_iteration(
                accelerator, spec, n_samples
            ).energy_efficiency_gops_per_watt
            for accelerator in accelerators
        }
        gpu_result = simulate_gpu_training_iteration(gpu, spec, n_samples)
        efficiencies["GPU"] = gpu_result.energy_efficiency_gops_per_watt
        baseline = efficiencies["MN-Acc"]
        row: list[object] = [name]
        row.extend(efficiencies[a.name] / baseline for a in accelerators)
        row.append(efficiencies["GPU"] / baseline)
        ratio_rc = efficiencies["Shift-BNN"] / efficiencies["RC-Acc"]
        ratio_gpu = efficiencies["Shift-BNN"] / efficiencies["GPU"]
        ratios_rc.append(ratio_rc)
        ratios_gpu.append(ratio_gpu)
        row.extend([ratio_rc, ratio_gpu])
        result.rows.append(row)
    result.notes.append(
        f"average Shift-BNN efficiency gain vs RC-Acc: {sum(ratios_rc) / len(ratios_rc):.2f}x "
        "(paper: 4.9x average, up to 10.8x)"
    )
    result.notes.append(
        f"average Shift-BNN efficiency gain vs the P100 model: {sum(ratios_gpu) / len(ratios_gpu):.2f}x "
        "(paper: 4.7x average)"
    )
    return result
