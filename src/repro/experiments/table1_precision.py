"""Table 1: validation accuracy versus training word length (8 / 16 / 32 bit).

The paper trains every model at three datapath precisions and observes that
16-bit fixed point loses only ~0.3 % accuracy versus single precision, while
8-bit training fails to converge on the deeper models (reported as NaN).  The
reproduction runs the reduced model variants on the synthetic datasets; the
observable is the same: 16-bit tracks 32-bit closely, 8-bit degrades or
collapses.
"""

from __future__ import annotations

from typing import Sequence

from ..bnn import ShiftBNNTrainer, TrainerConfig
from ..datasets import (
    BatchLoader,
    SyntheticDataset,
    synthetic_cifar10,
    synthetic_imagenet,
    synthetic_mnist,
)
from ..models import PAPER_MODEL_NAMES, get_model
from .base import ExperimentResult

__all__ = ["run_table1", "DEFAULT_BIT_WIDTHS"]

DEFAULT_BIT_WIDTHS: tuple[int, ...] = (8, 16, 32)


def _dataset_for(model_name: str, image_size: int, n_train: int, n_test: int, seed: int):
    if model_name == "B-MLP":
        return synthetic_mnist(n_train, n_test, image_size=image_size, seed=seed)
    if model_name == "B-LeNet":
        return synthetic_cifar10(n_train, n_test, image_size=image_size, seed=seed)
    return synthetic_imagenet(
        n_train, n_test, image_size=image_size, num_classes=10, seed=seed
    )


def _evaluate_input(dataset: SyntheticDataset, flatten: bool):
    return dataset.flatten_images() if flatten else dataset.images


def run_table1(
    model_names: Sequence[str] = PAPER_MODEL_NAMES,
    bit_widths: Sequence[int] = DEFAULT_BIT_WIDTHS,
    epochs: int = 8,
    n_train: int = 256,
    n_test: int = 128,
    n_samples: int = 2,
    seed: int = 5,
    grng_stride: int = 64,
) -> ExperimentResult:
    """Regenerate Table 1 (validation accuracy vs datapath word length)."""
    result = ExperimentResult(
        name="table1",
        title="Table 1: validation accuracy vs training precision (reduced models, synthetic data)",
        headers=["model"] + [f"val_acc_{bits}b" for bits in bit_widths],
    )
    for model_name in model_names:
        spec = get_model(model_name, reduced=True)
        flatten = spec.flatten_input
        image_size = spec.input_shape[1]
        train, test = _dataset_for(model_name, image_size, n_train, n_test, seed)
        batches = BatchLoader(train, batch_size=32, flatten=flatten).batches()
        row: list[object] = [model_name]
        for bits in bit_widths:
            config = TrainerConfig(
                n_samples=n_samples,
                learning_rate=5e-3,
                seed=seed,
                grng_stride=grng_stride,
                quantization_bits=None if bits == 32 else bits,
            )
            model = spec.build_bayesian(seed=seed)
            trainer = ShiftBNNTrainer(model, config)
            trainer.fit(batches, epochs=epochs)
            accuracy = trainer.evaluate(_evaluate_input(test, flatten), test.labels)
            row.append(accuracy)
        result.rows.append(row)
    result.notes.append(
        "paper: 16-bit training loses only 0.31% accuracy on average vs 32-bit; "
        "8-bit fails to converge on the deeper models"
    )
    return result
