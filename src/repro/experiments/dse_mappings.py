"""Design-space exploration over computation mappings (Section 5).

Not a numbered figure in the paper, but the argument that selects RC as the
base mapping for Shift-BNN.  The experiment scores each mapping's overhead for
integrating LFSR reversal (wiring for epsilon swapping, duplicated adder
trees, duplicated buffers, per-MAC energy and utilisation penalties) and also
simulates a representative model on an accelerator built from each mapping
with reversal enabled, so both the qualitative ranking and its quantitative
consequence are visible.
"""

from __future__ import annotations

from ..accel import (
    ALL_MAPPINGS,
    AcceleratorConfig,
    simulate_training_iteration,
)
from ..models import paper_models
from .base import ExperimentResult

__all__ = ["run_dse"]


def run_dse(model_name: str = "B-LeNet", n_samples: int = 16) -> ExperimentResult:
    """Rank the four mappings by LFSR-reversal integration overhead."""
    spec = paper_models()[model_name]
    result = ExperimentResult(
        name="dse",
        title=f"Design-space exploration: mapping overhead for LFSR reversal ({model_name}, S={n_samples})",
        headers=[
            "mapping",
            "overhead_score",
            "needs_epsilon_swap",
            "extra_adder_trees",
            "extra_buffer_copies",
            "energy_J_with_reversal",
            "latency_ms_with_reversal",
        ],
    )
    for mapping in ALL_MAPPINGS:
        accelerator = AcceleratorConfig(
            name=f"{mapping.name}-Shift", mapping=mapping, lfsr_reversal=True
        )
        sim = simulate_training_iteration(accelerator, spec, n_samples)
        result.rows.append(
            [
                mapping.name,
                mapping.dse_overhead_score(accelerator.pe_array_width),
                mapping.requires_epsilon_swap,
                mapping.extra_adder_trees,
                mapping.extra_buffer_copies,
                sim.energy_joules,
                sim.latency_seconds * 1e3,
            ]
        )
    best = min(result.rows, key=lambda row: row[1])
    result.notes.append(
        f"lowest-overhead mapping: {best[0]} (the paper selects RC for the same reason)"
    )
    return result
