"""Computation-mapping models (Section 5 design-space exploration).

The paper studies four ways of mapping the training loop nest onto a 2-D PE
array and asks, for each, what it costs to integrate the LFSR-reversal
strategy:

* **MN** (input/output channel, Diannao/NVDLA style) -- needs either an
  O(n^2) epsilon-swap network between PEs or duplicated adder trees to cope
  with the kernel reorganisation during BW;
* **RC** (output-feature-map, ShiDianNao style) -- only needs a second
  accumulation control mode; the cheapest fit and the one Shift-BNN adopts;
* **K** (kernel, systolic style) -- weights inside a kernel are sampled in
  parallel, so kernel flipping requires epsilon swapping between PEs;
* **BM** (batch/output channel) -- needs an extra adder tree per PE column and
  a second input-buffer organisation.

The mapping model captures those qualitative differences as a handful of
quantitative knobs the simulator consumes: PE utilisation per layer type and
stage, on-chip accesses per MAC, the per-MAC overhead added when LFSR reversal
is bolted on, and structural penalty flags (wiring, area) used by the
design-space-exploration experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from .layer_workload import TrainingStage

__all__ = [
    "MappingModel",
    "MN_MAPPING",
    "RC_MAPPING",
    "K_MAPPING",
    "BM_MAPPING",
    "ALL_MAPPINGS",
    "get_mapping",
]


@dataclass(frozen=True)
class MappingModel:
    """Quantitative summary of one computation-mapping scheme.

    Attributes
    ----------
    name, description:
        Identification.
    conv_utilization / dense_utilization:
        Fraction of PEs doing useful work on conv / FC layers.
    sram_accesses_per_mac:
        Average on-chip buffer accesses needed to feed one MAC (captures the
        data-reuse quality of the mapping: RC shifts inputs between PEs through
        registers, MN re-reads them from the buffer).
    reversal_extra_adds_per_bw_mac:
        Extra 16-bit additions per backward-stage MAC once LFSR reversal is
        integrated (duplicated adder trees in MN/BM, none in RC/K).
    reversal_extra_sram_per_bw_mac:
        Extra buffer accesses per backward-stage MAC once LFSR reversal is
        integrated (e.g. RC's intermittent partial-sum refetch from NBout).
    reversal_utilization_penalty:
        Multiplicative utilisation loss in the BW stage under LFSR reversal
        (control-mode switching, swap stalls).
    requires_epsilon_swap:
        True when the mapping needs an O(n^2) PE-to-PE epsilon swap network --
        the paper rules these out for scalability.
    extra_adder_trees / extra_buffer_copies:
        Structural overheads counted by the DSE scoring and the resource model.
    """

    name: str
    description: str
    conv_utilization: float
    dense_utilization: float
    sram_accesses_per_mac: float
    reversal_extra_adds_per_bw_mac: float
    reversal_extra_sram_per_bw_mac: float
    reversal_utilization_penalty: float
    requires_epsilon_swap: bool
    extra_adder_trees: int
    extra_buffer_copies: int

    def __post_init__(self) -> None:
        for name in ("conv_utilization", "dense_utilization"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if not 0.0 <= self.reversal_utilization_penalty < 1.0:
            raise ValueError("reversal_utilization_penalty must be in [0, 1)")

    # ------------------------------------------------------------------
    def utilization(
        self, kind: str, stage: TrainingStage, lfsr_reversal: bool
    ) -> float:
        """Effective PE utilisation for a layer kind in a given stage."""
        base = self.conv_utilization if kind == "conv" else self.dense_utilization
        if lfsr_reversal and stage is not TrainingStage.FORWARD:
            base *= 1.0 - self.reversal_utilization_penalty
        return base

    def extra_adds_per_mac(self, stage: TrainingStage, lfsr_reversal: bool) -> float:
        """Extra additions per MAC caused by reversal support (BW/GC only)."""
        if not lfsr_reversal or stage is TrainingStage.FORWARD:
            return 0.0
        return self.reversal_extra_adds_per_bw_mac

    def extra_sram_per_mac(self, stage: TrainingStage, lfsr_reversal: bool) -> float:
        """Extra buffer accesses per MAC caused by reversal support (BW/GC only)."""
        if not lfsr_reversal or stage is TrainingStage.FORWARD:
            return 0.0
        return self.reversal_extra_sram_per_bw_mac

    def dse_overhead_score(self, pe_array_width: int = 4) -> float:
        """Scalar overhead score used by the design-space exploration.

        Lower is better.  Wiring for epsilon swapping grows quadratically with
        the PE array width (Section 5's O(n^2) argument); adder trees and
        duplicated buffers add linear terms; the per-MAC energy overheads add
        their raw values.
        """
        score = 0.0
        if self.requires_epsilon_swap:
            score += pe_array_width**2
        score += 2.0 * self.extra_adder_trees
        score += 1.5 * self.extra_buffer_copies
        score += 4.0 * self.reversal_extra_adds_per_bw_mac
        score += 2.0 * self.reversal_extra_sram_per_bw_mac
        score += 10.0 * self.reversal_utilization_penalty
        return score


MN_MAPPING = MappingModel(
    name="MN",
    description="Input/output-channel mapping (Diannao, NVDLA).",
    conv_utilization=0.85,
    dense_utilization=0.90,
    sram_accesses_per_mac=1.1,
    reversal_extra_adds_per_bw_mac=0.80,
    reversal_extra_sram_per_bw_mac=0.50,
    reversal_utilization_penalty=0.05,
    requires_epsilon_swap=False,
    extra_adder_trees=4,
    extra_buffer_copies=0,
)

RC_MAPPING = MappingModel(
    name="RC",
    description="Output-feature-map mapping (ShiDianNao).",
    conv_utilization=0.95,
    dense_utilization=0.70,
    sram_accesses_per_mac=0.7,
    reversal_extra_adds_per_bw_mac=0.0,
    reversal_extra_sram_per_bw_mac=0.10,
    reversal_utilization_penalty=0.0,
    requires_epsilon_swap=False,
    extra_adder_trees=0,
    extra_buffer_copies=0,
)

K_MAPPING = MappingModel(
    name="K",
    description="Kernel mapping (systolic array).",
    conv_utilization=0.80,
    dense_utilization=0.55,
    sram_accesses_per_mac=0.9,
    reversal_extra_adds_per_bw_mac=0.10,
    reversal_extra_sram_per_bw_mac=0.30,
    reversal_utilization_penalty=0.15,
    requires_epsilon_swap=True,
    extra_adder_trees=0,
    extra_buffer_copies=0,
)

BM_MAPPING = MappingModel(
    name="BM",
    description="Batch/output-channel mapping (Procrustes-style training).",
    conv_utilization=0.85,
    dense_utilization=0.80,
    sram_accesses_per_mac=1.0,
    reversal_extra_adds_per_bw_mac=0.40,
    reversal_extra_sram_per_bw_mac=0.30,
    reversal_utilization_penalty=0.10,
    requires_epsilon_swap=False,
    extra_adder_trees=4,
    extra_buffer_copies=1,
)

ALL_MAPPINGS: tuple[MappingModel, ...] = (MN_MAPPING, RC_MAPPING, K_MAPPING, BM_MAPPING)


def get_mapping(name: str) -> MappingModel:
    """Look up a mapping model by name (``"MN"``, ``"RC"``, ``"K"``, ``"BM"``)."""
    for mapping in ALL_MAPPINGS:
        if mapping.name == name.upper():
            return mapping
    raise KeyError(f"unknown mapping {name!r}; choose from {[m.name for m in ALL_MAPPINGS]}")
