"""Off-chip traffic and memory-footprint model (Fig. 3 and Fig. 14).

For every weighted layer and every training stage the model counts the bytes
that must cross the DRAM interface, split into the three tensor classes the
paper tracks:

* ``weight`` -- the variational parameters ``(mu, sigma)``, shared by all
  Monte-Carlo samples (a plain DNN moves half as much: one value per weight);
* ``epsilon`` -- the Gaussian random variables, one per weight *per sample*,
  written out during FW and read back during BW and GC unless the accelerator
  retrieves them by LFSR reversal;
* ``io`` -- input/output feature maps and error maps, one copy per sample.

The counting rules follow the paper's description of the training flow
(Section 2.2) and its observation that epsilons are both the largest tensor
class and the one with the longest reuse distance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.specs import ModelSpec
from .layer_workload import LayerWorkload, TrainingStage, model_workloads

__all__ = [
    "TrafficConfig",
    "TrafficBreakdown",
    "LayerStageTraffic",
    "compute_traffic",
    "compute_memory_footprint",
    "FootprintBreakdown",
]


@dataclass(frozen=True)
class TrafficConfig:
    """What kind of network is being trained and how epsilons are handled.

    Attributes
    ----------
    bayesian:
        ``True`` for BNN training (two parameters and ``S`` epsilons per
        weight), ``False`` for the deterministic DNN counterpart.
    lfsr_reversal:
        ``True`` when the accelerator regenerates epsilons locally (Shift-BNN
        and MNShift); eliminates the epsilon traffic class entirely.
    bytes_per_value:
        Datapath width in bytes (2 for the 16-bit configuration).
    epsilon_write_passes / epsilon_read_passes:
        How often each epsilon crosses the DRAM interface in a baseline
        accelerator: written once during FW, read once for weight
        reconstruction (BW) and once for the sigma gradient (GC).
    """

    bayesian: bool = True
    lfsr_reversal: bool = False
    bytes_per_value: int = 2
    epsilon_write_passes: int = 1
    epsilon_read_passes: int = 2

    def __post_init__(self) -> None:
        if self.bytes_per_value < 1:
            raise ValueError("bytes_per_value must be positive")
        if self.epsilon_write_passes < 0 or self.epsilon_read_passes < 0:
            raise ValueError("epsilon pass counts must be non-negative")


@dataclass(frozen=True)
class LayerStageTraffic:
    """DRAM bytes moved by one layer in one stage, split by tensor class."""

    layer_name: str
    kind: str
    stage: TrainingStage
    weight_bytes: float
    epsilon_bytes: float
    io_bytes: float

    @property
    def total_bytes(self) -> float:
        """All DRAM bytes of this (layer, stage)."""
        return self.weight_bytes + self.epsilon_bytes + self.io_bytes


@dataclass(frozen=True)
class TrafficBreakdown:
    """Aggregate DRAM traffic of one training iteration, by tensor class."""

    weight_bytes: float
    epsilon_bytes: float
    io_bytes: float

    @property
    def total_bytes(self) -> float:
        """All DRAM bytes of the iteration."""
        return self.weight_bytes + self.epsilon_bytes + self.io_bytes

    @property
    def ratios(self) -> dict[str, float]:
        """Fractions per tensor class (the bars of Fig. 3)."""
        total = self.total_bytes
        if total == 0:
            return {"weight": 0.0, "epsilon": 0.0, "io": 0.0}
        return {
            "weight": self.weight_bytes / total,
            "epsilon": self.epsilon_bytes / total,
            "io": self.io_bytes / total,
        }

    def __add__(self, other: "TrafficBreakdown") -> "TrafficBreakdown":
        return TrafficBreakdown(
            weight_bytes=self.weight_bytes + other.weight_bytes,
            epsilon_bytes=self.epsilon_bytes + other.epsilon_bytes,
            io_bytes=self.io_bytes + other.io_bytes,
        )


def _weight_values_per_parameter(config: TrafficConfig) -> int:
    """Stored values per weight: (mu, sigma) for a BNN, a single value for a DNN."""
    return 2 if config.bayesian else 1


def _stage_weight_elements(workload: LayerWorkload, config: TrafficConfig) -> float:
    """Weight-parameter elements moved in one stage (shared across samples)."""
    per_weight = _weight_values_per_parameter(config)
    base = workload.weight_count * per_weight
    if workload.stage is TrainingStage.GRADIENT:
        # read for the update plus write-back of the updated parameters
        return 2.0 * base
    return float(base)


def _stage_epsilon_elements(
    workload: LayerWorkload, n_samples: int, config: TrafficConfig
) -> float:
    """Epsilon elements moved in one stage (per sample, unless eliminated)."""
    if not config.bayesian or config.lfsr_reversal:
        return 0.0
    per_sample = workload.weight_count
    if workload.stage is TrainingStage.FORWARD:
        return float(config.epsilon_write_passes * n_samples * per_sample)
    # Split the read passes between BW and GC (one each by default).
    reads_this_stage = config.epsilon_read_passes / 2.0
    return reads_this_stage * n_samples * per_sample


def _stage_io_elements(workload: LayerWorkload, n_samples: int, config: TrafficConfig) -> float:
    """Feature-map / error elements moved in one stage (per sample)."""
    samples = n_samples if config.bayesian else 1
    return float(samples * (workload.input_elements + workload.output_elements))


def layer_stage_traffic(
    workload: LayerWorkload, n_samples: int, config: TrafficConfig
) -> LayerStageTraffic:
    """DRAM traffic of one (layer, stage) under ``config``."""
    if n_samples < 1:
        raise ValueError("n_samples must be at least 1")
    bytes_per_value = config.bytes_per_value
    return LayerStageTraffic(
        layer_name=workload.layer_name,
        kind=workload.kind,
        stage=workload.stage,
        weight_bytes=_stage_weight_elements(workload, config) * bytes_per_value,
        epsilon_bytes=_stage_epsilon_elements(workload, n_samples, config) * bytes_per_value,
        io_bytes=_stage_io_elements(workload, n_samples, config) * bytes_per_value,
    )


def compute_traffic(
    spec: ModelSpec, n_samples: int, config: TrafficConfig | None = None
) -> tuple[list[LayerStageTraffic], TrafficBreakdown]:
    """Per-(layer, stage) traffic and its aggregate for one training iteration."""
    config = config or TrafficConfig()
    per_layer = [
        layer_stage_traffic(workload, n_samples, config)
        for workload in model_workloads(spec)
    ]
    total = TrafficBreakdown(
        weight_bytes=sum(item.weight_bytes for item in per_layer),
        epsilon_bytes=sum(item.epsilon_bytes for item in per_layer),
        io_bytes=sum(item.io_bytes for item in per_layer),
    )
    return per_layer, total


@dataclass(frozen=True)
class FootprintBreakdown:
    """Peak training memory footprint by tensor class (Fig. 14, right axis)."""

    weight_bytes: float
    epsilon_bytes: float
    io_bytes: float

    @property
    def total_bytes(self) -> float:
        """Total peak footprint."""
        return self.weight_bytes + self.epsilon_bytes + self.io_bytes


def compute_memory_footprint(
    spec: ModelSpec, n_samples: int, config: TrafficConfig | None = None
) -> FootprintBreakdown:
    """Peak memory footprint of one training iteration.

    Weights (and their gradients' working copy) are counted once; epsilons and
    the forward feature maps must persist from the FW stage until the layer's
    BW/GC processing, so they are counted per sample across all layers.
    """
    config = config or TrafficConfig()
    bytes_per_value = config.bytes_per_value
    weighted = spec.weighted_layers()
    weight_elements = sum(trace.weight_count for trace in weighted)
    weight_bytes = weight_elements * _weight_values_per_parameter(config) * bytes_per_value
    if config.bayesian and not config.lfsr_reversal:
        epsilon_bytes = float(n_samples * weight_elements * bytes_per_value)
    else:
        epsilon_bytes = 0.0
    samples = n_samples if config.bayesian else 1
    io_elements = sum(trace.input_size for trace in weighted) + weighted[-1].output_size
    io_bytes = float(samples * io_elements * bytes_per_value)
    return FootprintBreakdown(
        weight_bytes=float(weight_bytes),
        epsilon_bytes=epsilon_bytes,
        io_bytes=io_bytes,
    )
