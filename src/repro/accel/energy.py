"""Per-operation energy constants for the analytic accelerator model.

The original paper reports post-synthesis FPGA numbers from the Xilinx Power
Estimator; those tools are not available offline, so this module provides a
technology model in the style of the standard architecture-community numbers
(Horowitz, ISSCC'14; Eyeriss, ISCA'16): off-chip DRAM accesses cost two to
three orders of magnitude more energy per byte than a 16-bit MAC, and on-chip
SRAM sits in between.  Only *relative* energies matter for reproducing the
paper's comparisons, and those relations are preserved.

All values are in picojoules and refer to the 16-bit datapath the accelerators
use (Section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyModel"]


@dataclass(frozen=True)
class EnergyModel:
    """Energy per elementary operation, in picojoules.

    Attributes
    ----------
    dram_per_byte:
        Off-chip DRAM access energy per byte (DDR3, including I/O).
    sram_per_access:
        One 16-bit on-chip buffer (BRAM) access.
    register_per_access:
        One 16-bit register-file / FIFO access inside a PE.
    mac_16bit:
        One 16-bit multiply-accumulate.
    adder_16bit:
        One extra 16-bit addition (used by duplicated adder trees in the
        modified mappings of Fig. 7).
    grng_per_sample:
        Generating (or re-generating) one Gaussian variable: one LFSR shift
        plus the incremental sum update.
    static_power_watts:
        Leakage plus clock-tree power of the whole accelerator; multiplied by
        execution time to obtain static energy.
    """

    dram_per_byte: float = 480.0
    sram_per_access: float = 2.5
    register_per_access: float = 0.8
    mac_16bit: float = 0.8
    adder_16bit: float = 0.3
    grng_per_sample: float = 0.6
    static_power_watts: float = 0.15

    def __post_init__(self) -> None:
        for field_name in (
            "dram_per_byte",
            "sram_per_access",
            "register_per_access",
            "mac_16bit",
            "adder_16bit",
            "grng_per_sample",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        if self.static_power_watts < 0:
            raise ValueError("static_power_watts must be non-negative")
        if self.dram_per_byte < self.sram_per_access:
            raise ValueError(
                "a DRAM byte must cost at least as much as an SRAM access; "
                "the paper's argument rests on this ordering"
            )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def dram_energy(self, n_bytes: float) -> float:
        """Energy (pJ) of moving ``n_bytes`` to or from DRAM."""
        return n_bytes * self.dram_per_byte

    def sram_energy(self, n_accesses: float) -> float:
        """Energy (pJ) of ``n_accesses`` 16-bit buffer accesses."""
        return n_accesses * self.sram_per_access

    def mac_energy(self, n_macs: float) -> float:
        """Energy (pJ) of ``n_macs`` 16-bit multiply-accumulates."""
        return n_macs * self.mac_16bit

    def grng_energy(self, n_samples: float) -> float:
        """Energy (pJ) of generating ``n_samples`` Gaussian variables."""
        return n_samples * self.grng_per_sample

    def static_energy(self, seconds: float) -> float:
        """Static energy (pJ) burned over ``seconds`` of execution."""
        return self.static_power_watts * seconds * 1e12
