"""Roofline-style GPU reference model (the Tesla P100 column of Fig. 12).

The paper profiles BNN training on an Nvidia Tesla P100 with nvprof; offline
we model the GPU with a roofline: each (layer, stage) takes the larger of its
arithmetic time at a derated peak throughput and its memory time at the HBM2
bandwidth, and energy is average board power times execution time.  Crucially
-- and this is the paper's point -- the Gaussian random variables still have
to make the round trip to device memory between the forward and backward
stages, so the GPU pays the same epsilon traffic as the baseline accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.specs import ModelSpec
from .layer_workload import model_workloads
from .traffic import TrafficConfig, layer_stage_traffic

__all__ = ["GPUModel", "GPUSimulationResult", "tesla_p100", "simulate_gpu_training_iteration"]


@dataclass(frozen=True)
class GPUModel:
    """A GPU described by its roofline parameters."""

    name: str
    peak_flops: float
    memory_bandwidth: float
    average_power_watts: float
    achieved_compute_fraction: float = 0.35
    achieved_bandwidth_fraction: float = 0.60
    kernel_launch_overhead_s: float = 5e-6

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.memory_bandwidth <= 0:
            raise ValueError("peak throughput and bandwidth must be positive")
        if not 0 < self.achieved_compute_fraction <= 1:
            raise ValueError("achieved_compute_fraction must be in (0, 1]")
        if not 0 < self.achieved_bandwidth_fraction <= 1:
            raise ValueError("achieved_bandwidth_fraction must be in (0, 1]")

    @property
    def effective_flops(self) -> float:
        """Sustained arithmetic throughput for training kernels."""
        return self.peak_flops * self.achieved_compute_fraction

    @property
    def effective_bandwidth(self) -> float:
        """Sustained device-memory bandwidth."""
        return self.memory_bandwidth * self.achieved_bandwidth_fraction


def tesla_p100() -> GPUModel:
    """The Tesla P100 (16 GB) the paper compares against.

    The peak-throughput figure blends the card's FP32 and FP16 rates because
    BNN training kernels use mixed precision; the achieved fractions are
    typical of cuDNN training workloads.
    """
    return GPUModel(
        name="Tesla P100",
        peak_flops=18.0e12,
        memory_bandwidth=732e9,
        average_power_watts=200.0,
        achieved_compute_fraction=0.45,
        achieved_bandwidth_fraction=0.70,
    )


@dataclass(frozen=True)
class GPUSimulationResult:
    """Latency / energy / efficiency of one training iteration on the GPU."""

    gpu_name: str
    model_name: str
    n_samples: int
    latency_seconds: float
    total_operations: float
    dram_bytes: float
    energy_joules: float

    @property
    def throughput_gops(self) -> float:
        """Sustained throughput in GOPS."""
        if self.latency_seconds == 0:
            return 0.0
        return self.total_operations / self.latency_seconds / 1e9

    @property
    def energy_efficiency_gops_per_watt(self) -> float:
        """GOPS per watt, the metric of Fig. 12 (equals giga-ops per joule)."""
        if self.energy_joules == 0:
            return 0.0
        return self.total_operations / 1e9 / self.energy_joules


def simulate_gpu_training_iteration(
    gpu: GPUModel, spec: ModelSpec, n_samples: int
) -> GPUSimulationResult:
    """Roofline estimate of one BNN training iteration on ``gpu``.

    The GPU always stores the epsilons (no LFSR reversal is possible without
    changing the framework), uses 32-bit values, and batches all Monte-Carlo
    samples into its kernels.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be at least 1")
    config = TrafficConfig(bayesian=True, lfsr_reversal=False, bytes_per_value=4)
    latency = 0.0
    total_bytes = 0.0
    total_macs = 0.0
    for workload in model_workloads(spec):
        traffic = layer_stage_traffic(workload, n_samples, config)
        macs = float(workload.macs) * n_samples
        flops = 2.0 * macs
        compute_time = flops / gpu.effective_flops
        memory_time = traffic.total_bytes / gpu.effective_bandwidth
        latency += max(compute_time, memory_time) + gpu.kernel_launch_overhead_s
        total_bytes += traffic.total_bytes
        total_macs += macs
    energy = latency * gpu.average_power_watts
    return GPUSimulationResult(
        gpu_name=gpu.name,
        model_name=spec.name,
        n_samples=n_samples,
        latency_seconds=latency,
        total_operations=2.0 * total_macs,
        dram_bytes=total_bytes,
        energy_joules=energy,
    )
