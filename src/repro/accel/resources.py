"""FPGA resource and power model for one Sample Processing Unit (Table 2).

The original numbers come from post-synthesis reports on a Virtex-7 VC709; the
offline reproduction estimates them from the structural parameters of an SPU
(PE tile size, GRNG count and LFSR width, buffer capacity) with simple
per-element costs calibrated so the totals land close to the published table.
The shape of the table -- which component dominates which resource -- is the
reproducible content: GRNGs dominate flip-flops (256 registers each), the PE
tile and function units own the DSPs, the neuron buffers own the BRAM and most
of the average power after the PE tile.
"""

from __future__ import annotations

from dataclasses import dataclass

from .accelerator import AcceleratorConfig, shift_bnn_accelerator

__all__ = ["ComponentResources", "SPUResourceReport", "estimate_spu_resources"]


@dataclass(frozen=True)
class ComponentResources:
    """Resource usage and average power of one SPU component."""

    name: str
    lut: int
    ff: int
    dsp: int
    bram: int
    average_power_watts: float


@dataclass(frozen=True)
class SPUResourceReport:
    """Per-component resources of one SPU (the rows of Table 2)."""

    components: tuple[ComponentResources, ...]

    def component(self, name: str) -> ComponentResources:
        """Look up a component row by name."""
        for item in self.components:
            if item.name == name:
                return item
        raise KeyError(f"unknown component {name!r}")

    @property
    def totals(self) -> ComponentResources:
        """Column sums across all components."""
        return ComponentResources(
            name="total",
            lut=sum(c.lut for c in self.components),
            ff=sum(c.ff for c in self.components),
            dsp=sum(c.dsp for c in self.components),
            bram=sum(c.bram for c in self.components),
            average_power_watts=sum(c.average_power_watts for c in self.components),
        )


# Per-element cost coefficients, calibrated against the published Table 2.
_LUT_PER_PE = 60
_FF_PER_PE = 29
_DSP_PER_PE = 1
_LUT_PER_SHIFT_UNIT = 14
_FF_PER_SHIFT_UNIT = 29
_LUT_PER_FUNCTION_UNIT = 49
_FF_PER_FUNCTION_UNIT = 25
_DSP_PER_FUNCTION_UNIT = 2
_LUT_PER_GRNG_BIT = 0.56
_FF_PER_GRNG_BIT = 1.03
_BRAM_BYTES_PER_BLOCK = 2048

_POWER_PER_PE = 0.00475
_POWER_PER_SHIFT_UNIT = 0.001
_POWER_PER_FUNCTION_UNIT = 0.0005
_POWER_PER_GRNG = 0.0003
_POWER_PER_BRAM_BLOCK = 0.00233


def estimate_spu_resources(
    accelerator: AcceleratorConfig | None = None,
) -> SPUResourceReport:
    """Estimate the per-SPU resource table for an accelerator configuration.

    Defaults to the Shift-BNN configuration (4x4 PE tile, 16 GRNGs with
    256-bit LFSRs, 96 KiB of neuron buffer per SPU), which reproduces the
    structure of the paper's Table 2.
    """
    accelerator = accelerator or shift_bnn_accelerator()
    pes = accelerator.pes_per_spu
    grngs = accelerator.grngs_per_spu
    grng_bits = accelerator.lfsr_bits
    buffer_bytes = (
        accelerator.onchip.nbin.capacity_bytes + accelerator.onchip.nbout.capacity_bytes
    )
    bram_blocks = -(-buffer_bytes // _BRAM_BYTES_PER_BLOCK)

    pe_tile = ComponentResources(
        name="PE tile",
        lut=round(_LUT_PER_PE * pes),
        ff=round(_FF_PER_PE * pes),
        dsp=_DSP_PER_PE * pes,
        bram=0,
        average_power_watts=_POWER_PER_PE * pes,
    )
    shift_array = ComponentResources(
        name="Shift array",
        lut=round(_LUT_PER_SHIFT_UNIT * pes),
        ff=round(_FF_PER_SHIFT_UNIT * pes),
        dsp=0,
        bram=0,
        average_power_watts=_POWER_PER_SHIFT_UNIT * pes,
    )
    function_units = ComponentResources(
        name="Function units",
        lut=round(_LUT_PER_FUNCTION_UNIT * grngs),
        ff=round(_FF_PER_FUNCTION_UNIT * grngs),
        dsp=_DSP_PER_FUNCTION_UNIT * grngs,
        bram=0,
        average_power_watts=_POWER_PER_FUNCTION_UNIT * grngs,
    )
    grng_block = ComponentResources(
        name="GRNGs",
        lut=round(_LUT_PER_GRNG_BIT * grng_bits * grngs),
        ff=round(_FF_PER_GRNG_BIT * grng_bits * grngs),
        dsp=0,
        bram=0,
        average_power_watts=_POWER_PER_GRNG * grngs,
    )
    buffers = ComponentResources(
        name="NBin/NBout",
        lut=0,
        ff=0,
        dsp=0,
        bram=int(bram_blocks),
        average_power_watts=_POWER_PER_BRAM_BLOCK * bram_blocks,
    )
    return SPUResourceReport(
        components=(pe_tile, shift_array, function_units, grng_block, buffers)
    )


#: The published Table 2, kept for comparison in tests and the experiment output.
PUBLISHED_TABLE_2: dict[str, dict[str, float]] = {
    "PE tile": {"lut": 966, "ff": 469, "dsp": 16, "bram": 0, "power": 0.076},
    "Shift array": {"lut": 222, "ff": 464, "dsp": 0, "bram": 0, "power": 0.016},
    "Function units": {"lut": 785, "ff": 399, "dsp": 32, "bram": 0, "power": 0.008},
    "GRNGs": {"lut": 2277, "ff": 4224, "dsp": 0, "bram": 0, "power": 0.005},
    "NBin/NBout": {"lut": 0, "ff": 0, "dsp": 0, "bram": 48, "power": 0.112},
}
