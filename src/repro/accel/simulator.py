"""Analytic simulator: latency, energy and DRAM accesses per training iteration.

The simulator walks every (weighted layer, training stage) pair of a model,
computes its DRAM traffic with :mod:`repro.accel.traffic`, its compute cycles
from the MAC count and the mapping's PE utilisation, and combines them under
the double-buffering assumption the paper makes (computation and the epsilon /
weight transfers of a layer overlap, so a layer-stage costs
``max(compute_cycles, memory_cycles)``).  Energy adds the off-chip, on-chip,
arithmetic, GRNG and static components.

Absolute joules and seconds are functions of the technology constants in
:class:`~repro.accel.energy.EnergyModel`; all of the paper's evaluation
figures are ratios between accelerator variants, which is what the test suite
checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..models.specs import ModelSpec
from .accelerator import AcceleratorConfig
from .layer_workload import LayerWorkload, TrainingStage, model_workloads
from .traffic import (
    FootprintBreakdown,
    TrafficBreakdown,
    TrafficConfig,
    compute_memory_footprint,
    layer_stage_traffic,
)

__all__ = [
    "LayerStageResult",
    "EnergyBreakdown",
    "SimulationResult",
    "simulate_training_iteration",
    "simulate_dnn_training_iteration",
]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one training iteration, split by component (picojoules)."""

    dram: float = 0.0
    sram: float = 0.0
    mac: float = 0.0
    grng: float = 0.0
    mapping_overhead: float = 0.0
    static: float = 0.0

    @property
    def total(self) -> float:
        """Total energy in picojoules."""
        return (
            self.dram
            + self.sram
            + self.mac
            + self.grng
            + self.mapping_overhead
            + self.static
        )

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            dram=self.dram + other.dram,
            sram=self.sram + other.sram,
            mac=self.mac + other.mac,
            grng=self.grng + other.grng,
            mapping_overhead=self.mapping_overhead + other.mapping_overhead,
            static=self.static + other.static,
        )


@dataclass(frozen=True)
class LayerStageResult:
    """Simulation outcome of one (layer, stage)."""

    layer_name: str
    kind: str
    stage: TrainingStage
    macs: float
    compute_cycles: float
    memory_cycles: float
    dram_bytes: float
    epsilon_bytes: float
    weight_bytes: float
    io_bytes: float
    energy: EnergyBreakdown

    @property
    def cycles(self) -> float:
        """Latency of this (layer, stage) under double buffering."""
        return max(self.compute_cycles, self.memory_cycles)

    @property
    def memory_bound(self) -> bool:
        """True when the stage is limited by DRAM bandwidth, not compute."""
        return self.memory_cycles > self.compute_cycles


@dataclass
class SimulationResult:
    """Aggregate outcome of simulating one training iteration."""

    accelerator_name: str
    model_name: str
    n_samples: int
    bayesian: bool
    layer_results: list[LayerStageResult] = field(default_factory=list)
    frequency_hz: float = 200e6
    energy: EnergyBreakdown = EnergyBreakdown()

    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> float:
        """Total latency in clock cycles."""
        return sum(result.cycles for result in self.layer_results)

    @property
    def latency_seconds(self) -> float:
        """Total latency in seconds."""
        return self.total_cycles / self.frequency_hz

    @property
    def total_macs(self) -> float:
        """Total multiply-accumulates across stages and samples."""
        return sum(result.macs for result in self.layer_results)

    @property
    def total_operations(self) -> float:
        """Total arithmetic operations (2 per MAC), the paper's GOPS numerator."""
        return 2.0 * self.total_macs

    @property
    def dram_bytes(self) -> float:
        """Total off-chip traffic in bytes."""
        return sum(result.dram_bytes for result in self.layer_results)

    @property
    def dram_accesses(self) -> float:
        """Off-chip accesses counted in 16-bit (datapath-word) units."""
        words = sum(
            result.dram_bytes for result in self.layer_results
        )
        return words / 2.0

    @property
    def traffic(self) -> TrafficBreakdown:
        """Traffic breakdown by tensor class."""
        return TrafficBreakdown(
            weight_bytes=sum(r.weight_bytes for r in self.layer_results),
            epsilon_bytes=sum(r.epsilon_bytes for r in self.layer_results),
            io_bytes=sum(r.io_bytes for r in self.layer_results),
        )

    @property
    def energy_joules(self) -> float:
        """Total energy in joules."""
        return self.energy.total * 1e-12

    @property
    def average_power_watts(self) -> float:
        """Average power over the iteration."""
        seconds = self.latency_seconds
        if seconds == 0:
            return 0.0
        return self.energy_joules / seconds

    @property
    def throughput_gops(self) -> float:
        """Sustained throughput in giga-operations per second."""
        seconds = self.latency_seconds
        if seconds == 0:
            return 0.0
        return self.total_operations / seconds / 1e9

    @property
    def energy_efficiency_gops_per_watt(self) -> float:
        """The paper's energy-efficiency metric (GOPS / Watt)."""
        power = self.average_power_watts
        if power == 0:
            return 0.0
        return self.throughput_gops / power

    def stage_cycles(self, stage: TrainingStage) -> float:
        """Latency contribution of one training stage."""
        return sum(r.cycles for r in self.layer_results if r.stage is stage)


def _samples_processed(n_samples: int, bayesian: bool) -> int:
    return n_samples if bayesian else 1


def _simulate_layer_stage(
    accelerator: AcceleratorConfig,
    workload: LayerWorkload,
    n_samples: int,
    config: TrafficConfig,
) -> LayerStageResult:
    """Latency and energy of a single (layer, stage)."""
    energy_model = accelerator.energy
    mapping = accelerator.mapping
    samples = _samples_processed(n_samples, config.bayesian)

    traffic = layer_stage_traffic(workload, n_samples, config)

    # --- compute -------------------------------------------------------
    utilization = mapping.utilization(
        workload.kind, workload.stage, accelerator.lfsr_reversal
    )
    passes = -(-samples // accelerator.n_spus)
    macs_per_pass = workload.macs
    compute_cycles = passes * macs_per_pass / (accelerator.pes_per_spu * utilization)
    total_macs = float(workload.macs) * samples

    # --- memory --------------------------------------------------------
    memory_cycles = accelerator.dram.transfer_cycles(
        traffic.total_bytes, accelerator.frequency_hz
    )

    # --- energy --------------------------------------------------------
    sram_per_mac = mapping.sram_accesses_per_mac + mapping.extra_sram_per_mac(
        workload.stage, accelerator.lfsr_reversal
    )
    adds_per_mac = mapping.extra_adds_per_mac(workload.stage, accelerator.lfsr_reversal)
    grng_samples = 0.0
    if config.bayesian:
        if workload.stage is TrainingStage.FORWARD:
            grng_samples = float(workload.weight_count) * samples
        elif workload.stage is TrainingStage.BACKWARD and accelerator.lfsr_reversal:
            # Reversed shifting regenerates every epsilon locally during BW.
            grng_samples = float(workload.weight_count) * samples
    energy = EnergyBreakdown(
        dram=energy_model.dram_energy(traffic.total_bytes),
        sram=energy_model.sram_energy(total_macs * sram_per_mac),
        mac=energy_model.mac_energy(total_macs),
        grng=energy_model.grng_energy(grng_samples),
        mapping_overhead=total_macs * adds_per_mac * energy_model.adder_16bit,
    )
    return LayerStageResult(
        layer_name=workload.layer_name,
        kind=workload.kind,
        stage=workload.stage,
        macs=total_macs,
        compute_cycles=compute_cycles,
        memory_cycles=memory_cycles,
        dram_bytes=traffic.total_bytes,
        epsilon_bytes=traffic.epsilon_bytes,
        weight_bytes=traffic.weight_bytes,
        io_bytes=traffic.io_bytes,
        energy=energy,
    )


def simulate_training_iteration(
    accelerator: AcceleratorConfig,
    spec: ModelSpec,
    n_samples: int,
    bayesian: bool = True,
) -> SimulationResult:
    """Simulate one training iteration (one example through FW, BW and GC).

    Parameters
    ----------
    accelerator:
        The accelerator configuration to evaluate.
    spec:
        The model being trained.
    n_samples:
        Monte-Carlo sample count ``S`` (ignored for ``bayesian=False``).
    bayesian:
        ``False`` simulates the deterministic DNN counterpart used as the
        normalisation baseline in Fig. 2.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be at least 1")
    config = accelerator.traffic_config(bayesian=bayesian)
    result = SimulationResult(
        accelerator_name=accelerator.name,
        model_name=spec.name,
        n_samples=n_samples,
        bayesian=bayesian,
        frequency_hz=accelerator.frequency_hz,
    )
    for workload in model_workloads(spec):
        layer_result = _simulate_layer_stage(accelerator, workload, n_samples, config)
        result.layer_results.append(layer_result)
    dynamic = EnergyBreakdown()
    for layer_result in result.layer_results:
        dynamic = dynamic + layer_result.energy
    static = accelerator.energy.static_energy(
        sum(r.cycles for r in result.layer_results) / accelerator.frequency_hz
    )
    result.energy = dynamic + EnergyBreakdown(static=static)
    return result


def simulate_dnn_training_iteration(
    accelerator: AcceleratorConfig, spec: ModelSpec
) -> SimulationResult:
    """Simulate the non-Bayesian (DNN) counterpart of ``spec`` on ``accelerator``."""
    return simulate_training_iteration(accelerator, spec, n_samples=1, bayesian=False)


def simulate_memory_footprint(
    accelerator: AcceleratorConfig,
    spec: ModelSpec,
    n_samples: int,
    bayesian: bool = True,
) -> FootprintBreakdown:
    """Peak training memory footprint for ``spec`` on ``accelerator``."""
    return compute_memory_footprint(
        spec, n_samples, accelerator.traffic_config(bayesian=bayesian)
    )
