"""Per-layer, per-stage workload extraction from a model specification.

The simulator never executes arithmetic; it only needs to know, for every
weighted layer of a model and for each of the three training stages (FW, BW,
GC in Fig. 1(a)):

* how many MACs are performed,
* how many weights / Gaussian variables / activation elements are touched.

Everything is reported for a minibatch of one training example and a single
Monte-Carlo sample; the traffic and latency models scale by the sample count
``S`` where appropriate (weights are shared across samples, epsilons and
feature maps are not).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..models.specs import LayerTrace, ModelSpec

__all__ = ["TrainingStage", "LayerWorkload", "model_workloads"]


class TrainingStage(Enum):
    """The three stages of BNN training (Fig. 1(a))."""

    FORWARD = "FW"
    BACKWARD = "BW"
    GRADIENT = "GC"


#: Stages in execution order.
ALL_STAGES: tuple[TrainingStage, ...] = (
    TrainingStage.FORWARD,
    TrainingStage.BACKWARD,
    TrainingStage.GRADIENT,
)


@dataclass(frozen=True)
class LayerWorkload:
    """Workload of one weighted layer (conv or dense) for one training stage."""

    layer_name: str
    kind: str
    stage: TrainingStage
    macs: int
    weight_count: int
    input_elements: int
    output_elements: int
    kernel_size: int | None = None

    @property
    def is_conv(self) -> bool:
        """True for convolutional layers (RC-mapping's best case)."""
        return self.kind == "conv"

    @property
    def is_dense(self) -> bool:
        """True for fully-connected layers (the epsilon-dominated case)."""
        return self.kind == "dense"

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per weight -- high for conv layers, exactly 1 for dense layers."""
        return self.macs / max(self.weight_count, 1)


def _stage_macs(trace: LayerTrace, stage: TrainingStage) -> int:
    """MAC count of one stage for one example and one sample.

    FW convolves inputs with sampled weights; BW convolves errors with the
    rotated reconstructed kernels (same MAC count); GC convolves feature maps
    with errors to form weight gradients (again the same count for both conv
    and dense layers).
    """
    del stage  # all three stages perform the same number of MACs
    return trace.macs


def layer_workloads(trace: LayerTrace) -> list[LayerWorkload]:
    """Workloads of a single weighted layer for all three stages."""
    if not trace.is_weighted:
        raise ValueError(f"layer {trace.name!r} carries no weights")
    return [
        LayerWorkload(
            layer_name=trace.name,
            kind=trace.kind,
            stage=stage,
            macs=_stage_macs(trace, stage),
            weight_count=trace.weight_count,
            input_elements=trace.input_size,
            output_elements=trace.output_size,
            kernel_size=trace.kernel_size,
        )
        for stage in ALL_STAGES
    ]


def model_workloads(spec: ModelSpec) -> list[LayerWorkload]:
    """All (layer, stage) workloads of a model, in execution order.

    The forward stage walks the layers front to back; backward and gradient
    stages walk them back to front, which is the order the latency model sums
    them in.
    """
    weighted = spec.weighted_layers()
    forward = [
        workload
        for trace in weighted
        for workload in [layer_workloads(trace)[0]]
    ]
    backward = [
        layer_workloads(trace)[1] for trace in reversed(weighted)
    ]
    gradient = [
        layer_workloads(trace)[2] for trace in reversed(weighted)
    ]
    return forward + backward + gradient
