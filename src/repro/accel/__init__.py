"""Analytic accelerator simulator: mappings, traffic, energy, latency, resources."""

from .accelerator import (
    AcceleratorConfig,
    bm_shift_accelerator,
    k_shift_accelerator,
    mn_accelerator,
    mnshift_accelerator,
    rc_accelerator,
    shift_bnn_accelerator,
    standard_comparison_set,
)
from .energy import EnergyModel
from .gpu_model import (
    GPUModel,
    GPUSimulationResult,
    simulate_gpu_training_iteration,
    tesla_p100,
)
from .layer_workload import LayerWorkload, TrainingStage, model_workloads
from .mapping import (
    ALL_MAPPINGS,
    BM_MAPPING,
    K_MAPPING,
    MN_MAPPING,
    RC_MAPPING,
    MappingModel,
    get_mapping,
)
from .memory import BufferSpec, DramChannel, OnChipMemory
from .resources import (
    PUBLISHED_TABLE_2,
    ComponentResources,
    SPUResourceReport,
    estimate_spu_resources,
)
from .simulator import (
    EnergyBreakdown,
    LayerStageResult,
    SimulationResult,
    simulate_dnn_training_iteration,
    simulate_memory_footprint,
    simulate_training_iteration,
)
from .traffic import (
    FootprintBreakdown,
    LayerStageTraffic,
    TrafficBreakdown,
    TrafficConfig,
    compute_memory_footprint,
    compute_traffic,
)

__all__ = [
    "AcceleratorConfig",
    "mn_accelerator",
    "rc_accelerator",
    "mnshift_accelerator",
    "shift_bnn_accelerator",
    "k_shift_accelerator",
    "bm_shift_accelerator",
    "standard_comparison_set",
    "EnergyModel",
    "GPUModel",
    "GPUSimulationResult",
    "tesla_p100",
    "simulate_gpu_training_iteration",
    "LayerWorkload",
    "TrainingStage",
    "model_workloads",
    "MappingModel",
    "MN_MAPPING",
    "RC_MAPPING",
    "K_MAPPING",
    "BM_MAPPING",
    "ALL_MAPPINGS",
    "get_mapping",
    "DramChannel",
    "BufferSpec",
    "OnChipMemory",
    "ComponentResources",
    "SPUResourceReport",
    "estimate_spu_resources",
    "PUBLISHED_TABLE_2",
    "EnergyBreakdown",
    "LayerStageResult",
    "SimulationResult",
    "simulate_training_iteration",
    "simulate_dnn_training_iteration",
    "simulate_memory_footprint",
    "TrafficConfig",
    "TrafficBreakdown",
    "LayerStageTraffic",
    "FootprintBreakdown",
    "compute_traffic",
    "compute_memory_footprint",
]
