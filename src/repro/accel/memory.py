"""Memory-system models: off-chip DRAM channel and on-chip buffers.

The accelerators communicate with two DDR3 channels through a memory interface
generator (Section 7.1).  For the analytic model only two quantities matter:
sustained bandwidth (which converts traffic bytes into memory cycles for the
double-buffered latency model) and capacity of the on-chip buffers (which the
footprint analysis of Fig. 14 compares against).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DramChannel", "BufferSpec", "OnChipMemory"]


@dataclass(frozen=True)
class DramChannel:
    """A DDR3-style off-chip memory channel."""

    name: str = "DDR3-1600"
    bandwidth_bytes_per_second: float = 12.8e9
    channels: int = 2

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_second <= 0 or self.channels < 1:
            raise ValueError("DRAM channel needs positive bandwidth and >= 1 channel")

    @property
    def total_bandwidth(self) -> float:
        """Aggregate sustained bandwidth in bytes per second."""
        return self.bandwidth_bytes_per_second * self.channels

    def bytes_per_cycle(self, frequency_hz: float) -> float:
        """Bytes deliverable per accelerator clock cycle."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.total_bandwidth / frequency_hz

    def transfer_cycles(self, n_bytes: float, frequency_hz: float) -> float:
        """Cycles needed to move ``n_bytes`` at the accelerator clock."""
        return n_bytes / self.bytes_per_cycle(frequency_hz)


@dataclass(frozen=True)
class BufferSpec:
    """One on-chip SRAM buffer (NBin, NBout or a WPB sub-buffer)."""

    name: str
    capacity_bytes: int
    banks: int = 4

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.banks < 1:
            raise ValueError("buffer needs positive capacity and at least one bank")

    def fits(self, n_bytes: float) -> bool:
        """True when a tensor of ``n_bytes`` fits entirely in this buffer."""
        return n_bytes <= self.capacity_bytes


@dataclass(frozen=True)
class OnChipMemory:
    """The per-SPU buffer set plus the shared weight-parameter buffer."""

    nbin: BufferSpec
    nbout: BufferSpec
    weight_params: BufferSpec

    @classmethod
    def default(cls) -> "OnChipMemory":
        """Buffer sizing used by all modelled accelerators (same for fairness).

        The paper allocates the same on-chip buffer capacity to every design;
        48 BRAM blocks per SPU for NBin/NBout (Table 2) correspond to roughly
        96 KiB per SPU at 2 KiB per RAMB18.
        """
        return cls(
            nbin=BufferSpec("NBin", capacity_bytes=48 * 1024),
            nbout=BufferSpec("NBout", capacity_bytes=48 * 1024),
            weight_params=BufferSpec("WPB", capacity_bytes=256 * 1024, banks=8),
        )

    @property
    def total_bytes(self) -> int:
        """Total on-chip capacity per SPU (plus the shared WPB)."""
        return (
            self.nbin.capacity_bytes
            + self.nbout.capacity_bytes
            + self.weight_params.capacity_bytes
        )
