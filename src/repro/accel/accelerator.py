"""Accelerator configurations: the four designs the paper compares.

* **MN-Acc** -- the Diannao-like baseline with MN-dimension mapping and no
  LFSR reversal (the accelerator used for the Section 3 characterisation);
* **RC-Acc** -- the same storage policy on the ShiDianNao-like RC mapping;
* **MNShift-Acc** -- MN mapping with LFSR reversal bolted on through the
  duplicated-adder-tree workaround of Fig. 7(c);
* **Shift-BNN** -- the proposed design: RC mapping, LFSR reversal, 16 Sample
  Processing Units of 4x4 PEs each.

All four share PE count, clock frequency, buffer capacity and the DRAM
subsystem, exactly as the paper's "fair comparison" setup prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .energy import EnergyModel
from .mapping import BM_MAPPING, K_MAPPING, MN_MAPPING, RC_MAPPING, MappingModel
from .memory import DramChannel, OnChipMemory
from .traffic import TrafficConfig

__all__ = [
    "AcceleratorConfig",
    "mn_accelerator",
    "rc_accelerator",
    "mnshift_accelerator",
    "shift_bnn_accelerator",
    "k_shift_accelerator",
    "bm_shift_accelerator",
    "standard_comparison_set",
]


@dataclass(frozen=True)
class AcceleratorConfig:
    """A complete accelerator instance the simulator can evaluate."""

    name: str
    mapping: MappingModel
    lfsr_reversal: bool
    n_spus: int = 16
    pes_per_spu: int = 16
    frequency_hz: float = 200e6
    bytes_per_value: int = 2
    lfsr_bits: int = 256
    grngs_per_spu: int = 16
    energy: EnergyModel = EnergyModel()
    dram: DramChannel = DramChannel()
    onchip: OnChipMemory = OnChipMemory.default()

    def __post_init__(self) -> None:
        if self.n_spus < 1 or self.pes_per_spu < 1:
            raise ValueError("the PE organisation must have at least one unit")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.bytes_per_value not in (1, 2, 4):
            raise ValueError("bytes_per_value must be 1, 2 or 4")

    # ------------------------------------------------------------------
    @property
    def total_pes(self) -> int:
        """Total multiply-accumulate units across all SPUs."""
        return self.n_spus * self.pes_per_spu

    @property
    def pe_array_width(self) -> int:
        """Width of the square PE tile inside one SPU (4 for a 4x4 tile)."""
        width = int(round(self.pes_per_spu**0.5))
        return max(width, 1)

    def traffic_config(self, bayesian: bool = True) -> TrafficConfig:
        """Traffic-model configuration implied by this accelerator."""
        return TrafficConfig(
            bayesian=bayesian,
            lfsr_reversal=self.lfsr_reversal,
            bytes_per_value=self.bytes_per_value,
        )

    def with_samples_per_pass(self, n_samples: int) -> int:
        """Number of serial passes needed to process ``n_samples`` samples."""
        if n_samples < 1:
            raise ValueError("n_samples must be at least 1")
        return -(-n_samples // self.n_spus)

    def scaled(self, **overrides) -> "AcceleratorConfig":
        """A copy of this configuration with selected fields replaced."""
        return replace(self, **overrides)


def mn_accelerator(**overrides) -> AcceleratorConfig:
    """The MN-mapping baseline without LFSR reversal (Section 3's accelerator)."""
    return AcceleratorConfig(
        name="MN-Acc", mapping=MN_MAPPING, lfsr_reversal=False
    ).scaled(**overrides)


def rc_accelerator(**overrides) -> AcceleratorConfig:
    """The RC-mapping accelerator without LFSR reversal."""
    return AcceleratorConfig(
        name="RC-Acc", mapping=RC_MAPPING, lfsr_reversal=False
    ).scaled(**overrides)


def mnshift_accelerator(**overrides) -> AcceleratorConfig:
    """MN mapping plus LFSR reversal (Fig. 7(c) duplicated-adder-tree design)."""
    return AcceleratorConfig(
        name="MNShift-Acc", mapping=MN_MAPPING, lfsr_reversal=True
    ).scaled(**overrides)


def shift_bnn_accelerator(**overrides) -> AcceleratorConfig:
    """The proposed Shift-BNN accelerator: RC mapping plus LFSR reversal."""
    return AcceleratorConfig(
        name="Shift-BNN", mapping=RC_MAPPING, lfsr_reversal=True
    ).scaled(**overrides)


def k_shift_accelerator(**overrides) -> AcceleratorConfig:
    """K mapping plus LFSR reversal (needs epsilon swapping; DSE candidate only)."""
    return AcceleratorConfig(
        name="KShift-Acc", mapping=K_MAPPING, lfsr_reversal=True
    ).scaled(**overrides)


def bm_shift_accelerator(**overrides) -> AcceleratorConfig:
    """BM mapping plus LFSR reversal (extra adder trees and buffers; DSE candidate)."""
    return AcceleratorConfig(
        name="BMShift-Acc", mapping=BM_MAPPING, lfsr_reversal=True
    ).scaled(**overrides)


def standard_comparison_set() -> tuple[AcceleratorConfig, ...]:
    """The four accelerators of Figs. 10-14, in the paper's plotting order."""
    return (
        mn_accelerator(),
        rc_accelerator(),
        mnshift_accelerator(),
        shift_bnn_accelerator(),
    )
